"""The :class:`Platform` container tying cores, types and caches together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.amp.cache import LLCDomain
from repro.amp.core import Core, CoreType
from repro.errors import PlatformError


@dataclass(frozen=True)
class Platform:
    """A complete AMP description.

    Core types are ordered **slowest first**: ``core_types[0]`` is the
    baseline "small" type the paper measures speedup factors against
    (SF of a loop = completion-time ratio vs the slowest type). This
    mirrors the paper's NC-core-type generalization where type ``j = 1``
    is the slowest.

    Attributes:
        name: platform label used in reports ("Platform A", ...).
        core_types: all core types present, slowest first.
        cores: the physical cores, in CPU-number order.
        llc_domains: last-level-cache domains covering every core.
        dram_gb: main-memory capacity (descriptive).
        coherence_factor: relative cost of inter-core coherence traffic
            (1.0 = big.LITTLE-style cross-cluster interconnect; a server
            part with one inclusive LLC is far cheaper). Multiplies
            kernel coherence penalties in the performance model.
    """

    name: str
    core_types: tuple[CoreType, ...]
    cores: tuple[Core, ...]
    llc_domains: tuple[LLCDomain, ...]
    dram_gb: float = 0.0
    coherence_factor: float = 1.0
    _type_index: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.core_types:
            raise PlatformError("platform has no core types")
        if not self.cores:
            raise PlatformError("platform has no cores")
        names = [t.name for t in self.core_types]
        if len(set(names)) != len(names):
            raise PlatformError("duplicate core type names")
        cpu_ids = [c.cpu_id for c in self.cores]
        if sorted(cpu_ids) != list(range(len(self.cores))):
            raise PlatformError("cores must be numbered 0..N-1 exactly once")
        if list(cpu_ids) != sorted(cpu_ids):
            raise PlatformError("cores must be listed in CPU-number order")
        covered: set[int] = set()
        for dom in self.llc_domains:
            overlap = covered.intersection(dom.cpu_ids)
            if overlap:
                raise PlatformError(f"cores {sorted(overlap)} in two LLC domains")
            covered.update(dom.cpu_ids)
        if covered != set(cpu_ids):
            raise PlatformError("LLC domains do not cover every core exactly once")
        for core in self.cores:
            if core.core_type not in self.core_types:
                raise PlatformError(
                    f"core {core.cpu_id} has unknown type {core.core_type.name!r}"
                )
            if core.llc_domain < 0 or core.llc_domain >= len(self.llc_domains):
                raise PlatformError(f"core {core.cpu_id} has invalid llc_domain")
            if core.cpu_id not in self.llc_domains[core.llc_domain].cpu_ids:
                raise PlatformError(
                    f"core {core.cpu_id} not listed in its LLC domain"
                )
        object.__setattr__(
            self,
            "_type_index",
            {t.name: i for i, t in enumerate(self.core_types)},
        )

    # -- basic queries ----------------------------------------------------

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def n_core_types(self) -> int:
        return len(self.core_types)

    def core(self, cpu_id: int) -> Core:
        """The core with the given CPU number."""
        try:
            return self.cores[cpu_id]
        except IndexError:
            raise PlatformError(f"no CPU {cpu_id} on {self.name}") from None

    def type_index(self, core_type: CoreType | str) -> int:
        """Index of a core type (0 = slowest baseline type)."""
        name = core_type if isinstance(core_type, str) else core_type.name
        try:
            return self._type_index[name]
        except KeyError:
            raise PlatformError(f"unknown core type {name!r} on {self.name}") from None

    def cores_of_type(self, core_type: CoreType | str) -> tuple[Core, ...]:
        """All cores of a given type, in CPU-number order."""
        idx = self.type_index(core_type)
        want = self.core_types[idx]
        return tuple(c for c in self.cores if c.core_type == want)

    def type_counts(self) -> tuple[int, ...]:
        """Number of cores of each type, indexed like :attr:`core_types`."""
        counts = [0] * self.n_core_types
        for core in self.cores:
            counts[self.type_index(core.core_type)] += 1
        return tuple(counts)

    def llc_of(self, cpu_id: int) -> LLCDomain:
        """The LLC domain serving the given core."""
        return self.llc_domains[self.core(cpu_id).llc_domain]

    @property
    def is_symmetric(self) -> bool:
        """True when every core is of the same type."""
        return self.n_core_types == 1

    def describe(self) -> str:
        """Multi-line human-readable summary (mirrors the paper's Table 1)."""
        lines = [f"Platform: {self.name}"]
        for ct in self.core_types:
            n = self.type_counts()[self.type_index(ct)]
            lines.append(
                f"  {n}x {ct.name}: {ct.freq_ghz:.2f} GHz"
                + (f" @ {ct.duty_cycle:.1%} duty" if ct.duty_cycle < 1.0 else "")
                + f", uarch x{ct.uarch_speedup:.1f}"
            )
        for dom in self.llc_domains:
            lines.append(
                f"  LLC#{dom.index}: {dom.size_mb:g} MB/{dom.associativity}-way, "
                f"CPUs {list(dom.cpu_ids)}"
            )
        if self.dram_gb:
            lines.append(f"  DRAM: {self.dram_gb:g} GB")
        return "\n".join(lines)


def build_platform(
    name: str,
    clusters: Sequence[tuple[CoreType, int, float, int]],
    shared_llc: tuple[float, int] | None = None,
    dram_gb: float = 0.0,
    coherence_factor: float = 1.0,
) -> Platform:
    """Assemble a :class:`Platform` from per-type clusters.

    Args:
        name: platform label.
        clusters: sequence of ``(core_type, count, llc_mb, llc_ways)``
            entries ordered slowest type first. CPU numbers are assigned in
            cluster order (so the slowest cluster gets the lowest CPU
            numbers, matching the paper's "CPUs 0-3 are small" layout).
            Per-cluster LLC sizes are ignored when ``shared_llc`` is given.
        shared_llc: if not ``None``, a single ``(size_mb, ways)`` LLC shared
            by all cores (Platform B style) instead of per-cluster caches.
        dram_gb: main-memory capacity.
    """
    if not clusters:
        raise PlatformError("need at least one cluster")
    core_types = tuple(ct for ct, _, _, _ in clusters)
    cores: list[Core] = []
    domains: list[LLCDomain] = []
    cpu = 0
    for dom_idx, (ctype, count, llc_mb, llc_ways) in enumerate(clusters):
        if count <= 0:
            raise PlatformError(f"cluster {ctype.name!r} has no cores")
        ids = tuple(range(cpu, cpu + count))
        llc_index = 0 if shared_llc is not None else dom_idx
        for cid in ids:
            cores.append(Core(cpu_id=cid, core_type=ctype, llc_domain=llc_index))
        if shared_llc is None:
            domains.append(
                LLCDomain(
                    index=dom_idx,
                    size_mb=llc_mb,
                    associativity=llc_ways,
                    cpu_ids=ids,
                )
            )
        cpu += count
    if shared_llc is not None:
        size_mb, ways = shared_llc
        domains = [
            LLCDomain(
                index=0,
                size_mb=size_mb,
                associativity=ways,
                cpu_ids=tuple(range(cpu)),
            )
        ]
    return Platform(
        name=name,
        core_types=core_types,
        cores=tuple(cores),
        llc_domains=tuple(domains),
        dram_gb=dram_gb,
        coherence_factor=coherence_factor,
    )
