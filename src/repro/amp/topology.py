"""Thread-to-core affinity mappings.

The paper evaluates two pinning conventions for a team of NT threads on an
8-core AMP whose small cores are CPUs 0-3 and big cores CPUs 4-7:

* **SB** — cores are populated in ascending CPU order by thread ID, so the
  master thread (TID 0) lands on a *small* core.
* **BS** — cores are populated in descending order, reserving big cores
  for the lowest TIDs; the master thread runs on a *big* core, which
  accelerates serial program phases. All AID variants assume BS: the
  runtime's iteration-distribution math keys off "threads 0..N_B-1 are on
  big cores" (Sec. 4.3), enforced in the paper via GOMP_AMP_AFFINITY.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amp.platform import Platform
from repro.errors import PlatformError


@dataclass(frozen=True)
class AffinityMapping:
    """An explicit thread-to-core pinning.

    Attributes:
        name: label used in result tables ("SB", "BS", ...).
        cpu_of_tid: ``cpu_of_tid[t]`` is the CPU number thread ``t`` is
            pinned to.
    """

    name: str
    cpu_of_tid: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.cpu_of_tid:
            raise PlatformError("affinity mapping binds no threads")
        if len(set(self.cpu_of_tid)) != len(self.cpu_of_tid):
            raise PlatformError(
                "oversubscription: two threads pinned to the same core "
                "(AID assumes at most one thread per core)"
            )
        if any(c < 0 for c in self.cpu_of_tid):
            raise PlatformError("negative CPU number in affinity mapping")

    @property
    def n_threads(self) -> int:
        return len(self.cpu_of_tid)

    def validate_for(self, platform: Platform) -> None:
        """Raise :class:`~repro.errors.PlatformError` if any pinned CPU
        does not exist on ``platform``."""
        for cpu in self.cpu_of_tid:
            if cpu >= platform.n_cores:
                raise PlatformError(
                    f"mapping {self.name!r} pins a thread to CPU {cpu} but "
                    f"{platform.name} only has {platform.n_cores} cores"
                )


def sb_mapping(platform: Platform, n_threads: int | None = None) -> AffinityMapping:
    """Small-first mapping: thread t -> CPU t (ascending CPU numbers).

    With the conventional "small cores have low CPU numbers" layout the
    master thread ends up on a small core.
    """
    nt = platform.n_cores if n_threads is None else n_threads
    if nt <= 0 or nt > platform.n_cores:
        raise PlatformError(f"cannot map {nt} threads onto {platform.n_cores} cores")
    return AffinityMapping(name="SB", cpu_of_tid=tuple(range(nt)))


def bs_mapping(platform: Platform, n_threads: int | None = None) -> AffinityMapping:
    """Big-first mapping: thread t -> CPU (N-1-t) (descending CPU numbers).

    Reserves big cores for the lowest thread IDs; this is the convention
    every AID variant assumes (paper Sec. 4.3).
    """
    nt = platform.n_cores if n_threads is None else n_threads
    if nt <= 0 or nt > platform.n_cores:
        raise PlatformError(f"cannot map {nt} threads onto {platform.n_cores} cores")
    n = platform.n_cores
    return AffinityMapping(name="BS", cpu_of_tid=tuple(n - 1 - t for t in range(nt)))


def custom_mapping(name: str, cpus: list[int]) -> AffinityMapping:
    """Arbitrary explicit mapping (thread t -> ``cpus[t]``)."""
    return AffinityMapping(name=name, cpu_of_tid=tuple(cpus))
