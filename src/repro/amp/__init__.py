"""Asymmetric multicore platform (AMP) model.

An AMP couples several *core types* sharing one ISA but differing in clock
frequency, duty cycle, micro-architecture (in-order vs out-of-order) and
cache hierarchy. This package describes such platforms structurally; the
translation from platform + code characteristics to execution speed lives
in :mod:`repro.perfmodel`.

Two prebuilt platforms mirror the paper's testbeds:

* :func:`odroid_xu4` — Platform A: ARM big.LITTLE, 4x Cortex-A15
  (2.0 GHz, out-of-order, 2 MB shared L2) + 4x Cortex-A7 (1.5 GHz,
  in-order, 512 KB shared L2).
* :func:`xeon_emulated` — Platform B: 8-core Intel Xeon E5-2620 v4 with
  4 "slow" cores at 1.2 GHz and 87.5% duty cycle and 4 "fast" cores at
  2.1 GHz; a single 20 MB LLC shared by all cores.
"""

from repro.amp.core import Core, CoreType
from repro.amp.cache import LLCDomain
from repro.amp.platform import Platform
from repro.amp.presets import (
    dual_speed_platform,
    odroid_xu4,
    tri_type_platform,
    xeon_emulated,
)
from repro.amp.topology import AffinityMapping, bs_mapping, sb_mapping

__all__ = [
    "Core",
    "CoreType",
    "LLCDomain",
    "Platform",
    "AffinityMapping",
    "bs_mapping",
    "sb_mapping",
    "odroid_xu4",
    "xeon_emulated",
    "dual_speed_platform",
    "tri_type_platform",
]
