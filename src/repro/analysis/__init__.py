"""Post-processing and validation utilities over execution results.

* :mod:`repro.analysis.breakdown` — where did the time go? Per-loop and
  whole-program decompositions (compute vs runtime overhead vs barrier
  wait), dispatch accounting and imbalance summaries.
* :mod:`repro.analysis.predict` — closed-form makespan predictions for
  the simple schedules (static's critical path, the perfectly balanced
  bound, dynamic's greedy bound). Used by the test suite to validate the
  simulator against arithmetic, and handy for quick what-if estimates
  without running it.
"""

from repro.analysis.breakdown import LoopBreakdown, ProgramBreakdown, breakdown
from repro.analysis.predict import (
    balanced_makespan,
    greedy_list_bounds,
    static_makespan,
)

__all__ = [
    "breakdown",
    "LoopBreakdown",
    "ProgramBreakdown",
    "static_makespan",
    "balanced_makespan",
    "greedy_list_bounds",
]
