"""Closed-form makespan predictions for simple scheduling policies.

These are the textbook bounds the simulator must agree with in the
noise-free, zero-overhead regime — the test suite checks exactly that —
and they make back-of-envelope what-ifs possible without simulating:

* :func:`static_makespan` — the even split's critical path: the slowest
  (block, rate) pair.
* :func:`balanced_makespan` — the work-conserving lower bound
  ``sum(costs) / sum(rates)`` every asymmetry-aware policy chases.
* :func:`greedy_list_bounds` — the classic list-scheduling sandwich for
  dynamic self-scheduling with chunk c: the makespan lies between the
  balanced bound and ``balanced + max_chunk_time`` (Graham-style bound
  adapted to uniform-speed machines).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.sched.static import static_block


def _check(costs: Sequence[float], rates: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    costs_arr = np.asarray(costs, dtype=float)
    rates_arr = np.asarray(rates, dtype=float)
    if costs_arr.ndim != 1 or rates_arr.ndim != 1 or len(rates_arr) == 0:
        raise ExperimentError("need 1-D costs and a non-empty rates vector")
    if np.any(costs_arr < 0) or np.any(rates_arr <= 0):
        raise ExperimentError("costs must be >= 0 and rates > 0")
    return costs_arr, rates_arr


def static_makespan(costs: Sequence[float], rates: Sequence[float]) -> float:
    """Completion time of the block-static schedule.

    Thread t executes its libgomp block at its own rate; the loop ends
    when the slowest thread finishes. On an AMP this is dominated by a
    small-core thread — the Fig. 1 pathology, as arithmetic.
    """
    costs_arr, rates_arr = _check(costs, rates)
    nt = len(rates_arr)
    prefix = np.concatenate(([0.0], np.cumsum(costs_arr)))
    worst = 0.0
    for tid in range(nt):
        lo, hi = static_block(len(costs_arr), nt, tid)
        worst = max(worst, float(prefix[hi] - prefix[lo]) / rates_arr[tid])
    return worst


def balanced_makespan(costs: Sequence[float], rates: Sequence[float]) -> float:
    """The work-conserving lower bound: all cores busy until the end.

    ``sum(costs) / sum(rates)`` — what AID-static achieves exactly on
    uniform loops when its sampled SF is exact, and what every schedule
    is ultimately measured against.
    """
    costs_arr, rates_arr = _check(costs, rates)
    return float(costs_arr.sum()) / float(rates_arr.sum())


def greedy_list_bounds(
    costs: Sequence[float], rates: Sequence[float], chunk: int = 1
) -> tuple[float, float]:
    """Lower/upper bounds on dynamic(chunk)'s zero-overhead makespan.

    Dynamic self-scheduling is greedy list scheduling of ``ceil(n/c)``
    chunk-jobs on related machines: it can never beat the balanced bound,
    and it can never lose more than one maximal chunk on the slowest
    machine past it (no machine idles while work remains).
    """
    costs_arr, rates_arr = _check(costs, rates)
    if chunk <= 0:
        raise ExperimentError("chunk must be positive")
    lower = balanced_makespan(costs_arr, rates_arr)
    n = len(costs_arr)
    if n == 0:
        return (0.0, 0.0)
    chunk_sums = [
        float(costs_arr[i : i + chunk].sum()) for i in range(0, n, chunk)
    ]
    max_chunk_time = max(chunk_sums) / float(rates_arr.min())
    return (lower, lower + max_chunk_time)
