"""Where-did-the-time-go decompositions of execution results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.runtime.program_runner import ProgramResult
from repro.tracing.trace import ThreadState


@dataclass
class LoopBreakdown:
    """Aggregated statistics for all invocations of one loop."""

    loop_name: str
    invocations: int = 0
    total_time: float = 0.0
    dispatches: int = 0
    scheduler_calls: int = 0
    mean_imbalance: float = 0.0
    iterations: int = 0

    @property
    def dispatches_per_invocation(self) -> float:
        return self.dispatches / self.invocations if self.invocations else 0.0


@dataclass
class ProgramBreakdown:
    """Whole-run decomposition.

    Trace-based fields (compute/runtime/barrier/idle seconds, summed over
    threads) are zero when the run was executed without tracing.
    """

    program_name: str
    schedule_name: str
    completion_time: float
    serial_time: float
    loops: dict[str, LoopBreakdown] = field(default_factory=dict)
    compute_s: float = 0.0
    runtime_s: float = 0.0
    barrier_s: float = 0.0
    idle_s: float = 0.0

    @property
    def total_dispatches(self) -> int:
        return sum(lb.dispatches for lb in self.loops.values())

    @property
    def runtime_overhead_fraction(self) -> float:
        """Share of all thread-seconds spent inside the runtime system
        (requires a trace)."""
        busy = self.compute_s + self.runtime_s + self.barrier_s + self.idle_s
        return self.runtime_s / busy if busy > 0 else 0.0

    def hottest_loop(self) -> LoopBreakdown:
        if not self.loops:
            raise ExperimentError("program executed no loops")
        return max(self.loops.values(), key=lambda lb: lb.total_time)

    def to_table(self) -> str:
        lines = [
            f"{self.program_name} under {self.schedule_name}: "
            f"{self.completion_time * 1e3:.2f} ms "
            f"(serial {self.serial_time * 1e3:.2f} ms)",
            f"{'loop':<20s} {'invocations':>11s} {'time':>10s} {'share':>7s}"
            f" {'disp/inv':>9s} {'imbalance':>10s}",
        ]
        for lb in sorted(self.loops.values(), key=lambda x: -x.total_time):
            lines.append(
                f"{lb.loop_name:<20s} {lb.invocations:>11d}"
                f" {lb.total_time * 1e3:>8.2f}ms"
                f" {lb.total_time / self.completion_time:>7.1%}"
                f" {lb.dispatches_per_invocation:>9.1f}"
                f" {lb.mean_imbalance:>10.3f}"
            )
        if self.compute_s > 0:
            lines.append(
                f"thread-seconds: compute {self.compute_s:.4f}, runtime "
                f"{self.runtime_s:.4f} ({self.runtime_overhead_fraction:.1%}),"
                f" barrier {self.barrier_s:.4f}, idle {self.idle_s:.4f}"
            )
        return "\n".join(lines)


def breakdown(result: ProgramResult) -> ProgramBreakdown:
    """Decompose a program run into per-loop and per-state statistics."""
    out = ProgramBreakdown(
        program_name=result.program_name,
        schedule_name=result.schedule_name,
        completion_time=result.completion_time,
        serial_time=result.serial_time,
    )
    for lr in result.loop_results:
        lb = out.loops.setdefault(lr.loop_name, LoopBreakdown(lr.loop_name))
        lb.invocations += 1
        lb.total_time += lr.duration
        lb.dispatches += lr.dispatches
        lb.scheduler_calls += lr.scheduler_calls
        lb.iterations += sum(lr.iterations)
        # Running mean of imbalance.
        lb.mean_imbalance += (lr.imbalance - lb.mean_imbalance) / lb.invocations
    if result.trace is not None:
        for tid in result.trace.thread_ids():
            out.compute_s += result.trace.time_in_state(tid, ThreadState.COMPUTE)
            out.runtime_s += result.trace.time_in_state(tid, ThreadState.RUNTIME)
            out.barrier_s += result.trace.time_in_state(tid, ThreadState.BARRIER)
            out.idle_s += result.trace.time_in_state(tid, ThreadState.IDLE)
    return out
