"""AID: Asymmetric Iteration Distribution for OpenMP loops on AMPs.

A reproduction of Saez, Castro & Prieto-Matias, *"Enabling performance
portability of data-parallel OpenMP applications on asymmetric multicore
processors"* (ICPP 2020), as a self-contained Python library: a
parametric AMP platform model, a libgomp-like runtime executed on a
deterministic discrete-event simulator, the conventional OpenMP loop
schedules plus the paper's three AID methods, synthetic models of the 21
evaluated benchmarks, and harnesses regenerating every figure and table.

Quickstart::

    from repro import odroid_xu4, OmpEnv, ProgramRunner, get_program

    env = OmpEnv(schedule="aid_hybrid,80", affinity="BS")
    runner = ProgramRunner(odroid_xu4(), env)
    result = runner.run(get_program("EP"))
    print(result.completion_time)
"""

from repro._version import __version__
from repro.amp import (
    AffinityMapping,
    Core,
    CoreType,
    LLCDomain,
    Platform,
    bs_mapping,
    dual_speed_platform,
    odroid_xu4,
    sb_mapping,
    tri_type_platform,
    xeon_emulated,
)
from repro.errors import (
    CompilerError,
    ConfigError,
    ExperimentError,
    PlatformError,
    ReproError,
    SchedulerError,
    SimulationError,
    WorkloadError,
    WorkShareError,
)
from repro.perfmodel import ContentionModel, KernelProfile, OverheadModel, PerfModel
from repro.runtime import (
    LoopExecutor,
    LoopResult,
    OmpEnv,
    ProgramResult,
    ProgramRunner,
    Team,
    WorkShare,
)
from repro.sched import (
    AidDynamicSpec,
    AidHybridSpec,
    AidStaticSpec,
    DynamicSpec,
    GuidedSpec,
    ScheduleSpec,
    StaticSpec,
    parse_schedule,
)
from repro.tracing import TraceRecorder, render_timeline
from repro.workloads import (
    LoopSpec,
    Program,
    SerialPhase,
    all_programs,
    get_program,
    program_names,
)

__all__ = [
    "__version__",
    # platform
    "CoreType",
    "Core",
    "LLCDomain",
    "Platform",
    "AffinityMapping",
    "bs_mapping",
    "sb_mapping",
    "odroid_xu4",
    "xeon_emulated",
    "dual_speed_platform",
    "tri_type_platform",
    # perf model
    "KernelProfile",
    "PerfModel",
    "ContentionModel",
    "OverheadModel",
    # runtime
    "Team",
    "WorkShare",
    "LoopExecutor",
    "LoopResult",
    "ProgramRunner",
    "ProgramResult",
    "OmpEnv",
    # schedules
    "ScheduleSpec",
    "StaticSpec",
    "DynamicSpec",
    "GuidedSpec",
    "AidStaticSpec",
    "AidHybridSpec",
    "AidDynamicSpec",
    "parse_schedule",
    # workloads
    "LoopSpec",
    "SerialPhase",
    "Program",
    "get_program",
    "all_programs",
    "program_names",
    # tracing
    "TraceRecorder",
    "render_timeline",
    # errors
    "ReproError",
    "ConfigError",
    "PlatformError",
    "SchedulerError",
    "WorkShareError",
    "SimulationError",
    "WorkloadError",
    "CompilerError",
    "ExperimentError",
]
