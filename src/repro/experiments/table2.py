"""Table 2 — mean/gmean gains of each AID variant over its conventional
counterpart, on both platforms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig67 import Fig67Result
from repro.experiments.fig67 import run as run_fig67
from repro.experiments.harness import GridResult
from repro.metrics.stats import summarize_gains

#: The three comparisons of the paper's Table 2.
COMPARISONS = (
    ("AID-static", "static(BS)"),
    ("AID-hybrid", "static(BS)"),
    ("AID-dynamic", "dynamic(BS)"),
)

#: What the paper measured, for side-by-side reporting (fractions).
PAPER_TABLE2 = {
    "Platform A": {
        ("AID-static", "static(BS)"): {"mean": 0.1498, "gmean": 0.1354},
        ("AID-hybrid", "static(BS)"): {"mean": 0.2755, "gmean": 0.2267},
        ("AID-dynamic", "dynamic(BS)"): {"mean": 0.0312, "gmean": 0.0281},
    },
    "Platform B": {
        ("AID-static", "static(BS)"): {"mean": 0.1593, "gmean": 0.1464},
        ("AID-hybrid", "static(BS)"): {"mean": 0.2008, "gmean": 0.1606},
        ("AID-dynamic", "dynamic(BS)"): {"mean": 0.2234, "gmean": 0.1600},
    },
}


@dataclass
class Table2Result:
    """gains[platform_key][(scheme, reference)] = {"mean": ..., "gmean": ...}"""

    gains: dict[str, dict[tuple[str, str], dict[str, float]]]


def summarize_grid(grid: GridResult) -> dict[tuple[str, str], dict[str, float]]:
    """The three Table 2 rows for one platform's grid."""
    return {
        (scheme, ref): summarize_gains(grid.column(scheme), grid.column(ref))
        for scheme, ref in COMPARISONS
    }


def run(
    seed: int = 0,
    fig67: Fig67Result | None = None,
    *,
    jobs: int = 1,
    cache=None,
    timeout=None,
    progress=None,
    checkpoint=None,
    dispatcher=None,
) -> Table2Result:
    """Aggregate Table 2 from the Fig. 6/7 grids (re-running if needed).

    The fleet knobs are forwarded to the Fig. 6/7 grids, so a Table 2
    regeneration right after a fleet-cached Fig. 6/7 run costs nothing.
    """
    fig67 = fig67 if fig67 is not None else run_fig67(
        seed=seed, jobs=jobs, cache=cache, timeout=timeout,
        progress=progress, checkpoint=checkpoint, dispatcher=dispatcher,
    )
    return Table2Result(
        gains={
            "Platform A": summarize_grid(fig67.platform_a),
            "Platform B": summarize_grid(fig67.platform_b),
        }
    )


def format_report(result: Table2Result) -> str:
    lines = [
        "Table 2 — relative performance gains of the AID variants",
        f"{'comparison':<30s} {'platform':<12s} {'mean':>8s} {'gmean':>8s}"
        f" {'paper mean':>11s} {'paper gmean':>12s}",
    ]
    for platform_key, rows in result.gains.items():
        for (scheme, ref), stats in rows.items():
            paper = PAPER_TABLE2[platform_key][(scheme, ref)]
            lines.append(
                f"{scheme + ' vs ' + ref:<30s} {platform_key:<12s}"
                f" {stats['mean'] * 100:7.2f}% {stats['gmean'] * 100:7.2f}%"
                f" {paper['mean'] * 100:10.2f}% {paper['gmean'] * 100:11.2f}%"
            )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
