"""Extension experiment — energy and EDP per scheduling policy.

Not a paper figure: the paper motivates AMPs with energy efficiency but
evaluates only performance. This experiment closes the loop with the
power model of :mod:`repro.power`: for each program and schedule we
report energy and energy-delay product normalized to static(SB).

Expected shape: the AID methods finish sooner at near-identical average
power (the same cores are busy, just with useful work instead of barrier
spinning), so they cut both energy and — quadratically — EDP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4
from repro.experiments.harness import ScheduleConfig, default_configs
from repro.power.metrics import energy_delay_product
from repro.power.model import EnergyBreakdown, PowerModel
from repro.runtime.program_runner import ProgramRunner
from repro.workloads.registry import all_programs

DEFAULT_PROGRAMS = ("EP", "CG", "IS", "streamcluster", "hotspot3D", "FT")


@dataclass
class EnergyResult:
    platform_name: str
    # per program: label -> (time_s, energy)
    cells: dict[str, dict[str, tuple[float, EnergyBreakdown]]] = field(
        default_factory=dict
    )

    def normalized_energy(self, program: str, label: str, baseline: str) -> float:
        return (
            self.cells[program][label][1].total_j
            / self.cells[program][baseline][1].total_j
        )

    def normalized_edp(self, program: str, label: str, baseline: str) -> float:
        return energy_delay_product(
            self.cells[program][label][1]
        ) / energy_delay_product(self.cells[program][baseline][1])


def run(
    platform: Platform | None = None,
    programs: tuple[str, ...] = DEFAULT_PROGRAMS,
    seed: int = 0,
) -> EnergyResult:
    platform = platform if platform is not None else odroid_xu4()
    power = PowerModel(platform)
    result = EnergyResult(platform_name=platform.name)
    wanted = {p.name for p in all_programs()} & set(programs)
    for program in all_programs():
        if program.name not in wanted:
            continue
        row: dict[str, tuple[float, EnergyBreakdown]] = {}
        for config in default_configs():
            runner = ProgramRunner(
                platform, config.env, root_seed=seed, trace=True
            )
            run_result = runner.run(program)
            energy = power.energy_of(
                run_result, list(runner.team.mapping.cpu_of_tid)
            )
            row[config.label] = (run_result.completion_time, energy)
        result.cells[program.name] = row
    return result


def format_report(result: EnergyResult, baseline: str = "static(SB)") -> str:
    labels = list(next(iter(result.cells.values())).keys())
    lines = [
        f"Energy extension — [{result.platform_name}]",
        "normalized energy (top) and EDP (bottom) vs "
        f"{baseline}; lower is better",
        "program".ljust(16) + "".join(f"{label:>14s}" for label in labels),
    ]
    for program, row in result.cells.items():
        e_cells = "".join(
            f"{result.normalized_energy(program, label, baseline):>14.3f}"
            for label in labels
        )
        d_cells = "".join(
            f"{result.normalized_edp(program, label, baseline):>14.3f}"
            for label in labels
        )
        lines.append(f"{program:<16s}{e_cells}")
        lines.append(f"{'  (EDP)':<16s}{d_cells}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
