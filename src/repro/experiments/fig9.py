"""Fig. 9 — impact of SF-estimation inaccuracies.

Compares AID-static against AID-static(offline-SF), which skips the
sampling phase and distributes using per-loop SFs gathered offline from
single-threaded runs (the Sec. 2 protocol). Two findings reproduce:

* (a, b) for most static-friendly applications the sampled SF is good
  enough — AID-static lands within a few percent of the offline-SF
  variant on both platforms;
* (c) blackscholes on Platform A inverts: offline SFs are measured
  without cache contention, but with four threads per cluster the
  per-thread LLC share shrinks below the working set, the real SF
  collapses, and distributing by the (too large) offline SF overloads
  the big-core threads. AID-static's online sampling sees the contended
  reality and wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.experiments.harness import ScheduleConfig, offline_sf_tables, run_one
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

#: Applications where AID-static/AID-hybrid are competitive with
#: AID-dynamic (the paper's Fig. 9a/9b selection criterion).
STATIC_FRIENDLY = (
    "EP",
    "CG",
    "IS",
    "MG",
    "SP",
    "blackscholes",
    "streamcluster",
    "bfs",
    "hotspot3D",
    "kmeans",
    "backprop",
    "sradv2",
)


@dataclass
class Fig9Result:
    # per platform: program -> (t_online, t_offline)
    times: dict[str, dict[str, tuple[float, float]]] = field(default_factory=dict)
    # Fig. 9c: blackscholes per-invocation estimated SF vs offline SF (A)
    estimated_sf_series: list[float] = field(default_factory=list)
    offline_sf_value: float = 0.0

    def gain_of_online(self, platform_name: str, program: str) -> float:
        """AID-static's gain over the offline-SF variant (positive means
        online sampling wins)."""
        t_on, t_off = self.times[platform_name][program]
        return t_off / t_on - 1.0


def run(
    platforms: tuple[Platform, ...] | None = None,
    programs: tuple[str, ...] = STATIC_FRIENDLY,
    seed: int = 0,
) -> Fig9Result:
    if platforms is None:
        platforms = (odroid_xu4(), xeon_emulated())
    result = Fig9Result()
    online_cfg = ScheduleConfig(
        "AID-static", OmpEnv(schedule="aid_static", affinity="BS")
    )
    for platform in platforms:
        rows: dict[str, tuple[float, float]] = {}
        for name in programs:
            program = get_program(name)
            r_online = run_one(platform, program, online_cfg, root_seed=seed)
            runner_off = _offline_runner(platform, program, seed)
            r_offline = runner_off.run(program)
            rows[name] = (r_online.completion_time, r_offline.completion_time)
            if name == "blackscholes" and platform.n_core_types == 2:
                series = r_online.estimated_sf_series("bs.price")
                if series and not result.estimated_sf_series:
                    result.estimated_sf_series = [sf[1] for sf in series]
                    result.offline_sf_value = offline_sf_tables(
                        platform, program
                    )["bs.price"][1]
        result.times[platform.name] = rows
    return result


def _offline_runner(platform: Platform, program, seed: int):
    """A runner applying the AID-static(offline-SF) variant: sampling
    omitted, distribution driven by the per-loop offline tables."""
    from repro.runtime.program_runner import ProgramRunner
    from repro.sched.aid_static import AidStaticSpec

    return ProgramRunner(
        platform,
        OmpEnv(schedule="aid_static", affinity="BS"),
        root_seed=seed,
        offline_sf_tables=offline_sf_tables(platform, program),
        schedule_override=AidStaticSpec(use_offline_sf=True),
    )


def format_report(result: Fig9Result) -> str:
    lines = ["Fig. 9 — AID-static vs AID-static(offline-SF)"]
    for platform_name, rows in result.times.items():
        lines.append(f"\n[{platform_name}] (positive = online sampling wins)")
        for program, (t_on, t_off) in rows.items():
            gain = t_off / t_on - 1.0
            lines.append(
                f"  {program:<16s} online {t_on:.4f} s,"
                f" offline-SF {t_off:.4f} s, online gain {gain:+.1%}"
            )
    if result.estimated_sf_series:
        lines += [
            "",
            "Fig. 9c — blackscholes on Platform A:",
            f"  offline-gathered SF: {result.offline_sf_value:.2f}",
            "  estimated SF per invocation: "
            + ", ".join(f"{sf:.2f}" for sf in result.estimated_sf_series),
        ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
