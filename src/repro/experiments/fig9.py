"""Fig. 9 — impact of SF-estimation inaccuracies.

Compares AID-static against AID-static(offline-SF), which skips the
sampling phase and distributes using per-loop SFs gathered offline from
single-threaded runs (the Sec. 2 protocol). Two findings reproduce:

* (a, b) for most static-friendly applications the sampled SF is good
  enough — AID-static lands within a few percent of the offline-SF
  variant on both platforms;
* (c) blackscholes on Platform A inverts: offline SFs are measured
  without cache contention, but with four threads per cluster the
  per-thread LLC share shrinks below the working set, the real SF
  collapses, and distributing by the (too large) offline SF overloads
  the big-core threads. AID-static's online sampling sees the contended
  reality and wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.experiments.harness import offline_sf_tables
from repro.fleet import FleetConfig, JobSpec, require_ok, run_jobs
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

#: Applications where AID-static/AID-hybrid are competitive with
#: AID-dynamic (the paper's Fig. 9a/9b selection criterion).
STATIC_FRIENDLY = (
    "EP",
    "CG",
    "IS",
    "MG",
    "SP",
    "blackscholes",
    "streamcluster",
    "bfs",
    "hotspot3D",
    "kmeans",
    "backprop",
    "sradv2",
)


@dataclass
class Fig9Result:
    # per platform: program -> (t_online, t_offline)
    times: dict[str, dict[str, tuple[float, float]]] = field(default_factory=dict)
    # Fig. 9c: blackscholes per-invocation estimated SF vs offline SF (A)
    estimated_sf_series: list[float] = field(default_factory=list)
    offline_sf_value: float = 0.0

    def gain_of_online(self, platform_name: str, program: str) -> float:
        """AID-static's gain over the offline-SF variant (positive means
        online sampling wins)."""
        t_on, t_off = self.times[platform_name][program]
        return t_off / t_on - 1.0


def run(
    platforms: tuple[Platform, ...] | None = None,
    programs: tuple[str, ...] = STATIC_FRIENDLY,
    seed: int = 0,
    *,
    jobs: int = 1,
    cache=None,
    timeout=None,
    progress=None,
    checkpoint=None,
    dispatcher=None,
) -> Fig9Result:
    if platforms is None:
        platforms = (odroid_xu4(), xeon_emulated())
    result = Fig9Result()
    online_env = OmpEnv(schedule="aid_static", affinity="BS")
    specs: list[JobSpec] = []
    for platform in platforms:
        for name in programs:
            program = get_program(name)
            # Fig. 9c wants blackscholes' per-invocation SF estimates on
            # the first (big.LITTLE) platform; the capture request is
            # part of the job's identity.
            capture = (
                "bs.price"
                if name == "blackscholes" and platform.n_core_types == 2
                else None
            )
            specs.append(
                JobSpec(
                    program=program,
                    platform=platform,
                    env=online_env,
                    root_seed=seed,
                    capture_sf_loop=capture,
                    label="AID-static",
                )
            )
            specs.append(
                JobSpec(
                    program=program,
                    platform=platform,
                    env=online_env,
                    root_seed=seed,
                    use_offline_sf=True,
                    label="AID-static(offline-SF)",
                )
            )
    outcomes = require_ok(
        run_jobs(
            specs,
            FleetConfig(jobs=jobs, timeout=timeout, dispatcher=dispatcher),
            cache=cache,
            progress=progress,
            checkpoint=checkpoint,
        )
    )
    it = iter(outcomes)
    for platform in platforms:
        rows: dict[str, tuple[float, float]] = {}
        for name in programs:
            r_online = next(it).result
            r_offline = next(it).result
            rows[name] = (
                r_online.completion_time,
                r_offline.completion_time,
            )
            series = r_online.sf_series_dicts()
            if series and not result.estimated_sf_series:
                result.estimated_sf_series = [sf[1] for sf in series]
                result.offline_sf_value = offline_sf_tables(
                    platform, get_program(name)
                )["bs.price"][1]
        result.times[platform.name] = rows
    return result


def format_report(result: Fig9Result) -> str:
    lines = ["Fig. 9 — AID-static vs AID-static(offline-SF)"]
    for platform_name, rows in result.times.items():
        lines.append(f"\n[{platform_name}] (positive = online sampling wins)")
        for program, (t_on, t_off) in rows.items():
            gain = t_off / t_on - 1.0
            lines.append(
                f"  {program:<16s} online {t_on:.4f} s,"
                f" offline-SF {t_off:.4f} s, online gain {gain:+.1%}"
            )
    if result.estimated_sf_series:
        lines += [
            "",
            "Fig. 9c — blackscholes on Platform A:",
            f"  offline-gathered SF: {result.offline_sf_value:.2f}",
            "  estimated SF per invocation: "
            + ", ".join(f"{sf:.2f}" for sf in result.estimated_sf_series),
        ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
