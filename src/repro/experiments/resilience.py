"""Resilience sweep: fault intensity x AID variant degradation.

The paper's evaluation assumes *static* asymmetry; this experiment
perturbs it. For each (variant, intensity) cell a set of seeded random
fault plans (:func:`repro.faults.model.random_plan`) is scaled onto the
variant's fault-free makespan and replayed through the simulator; the
cell reports

* **degradation** — geometric mean of ``faulted / fault-free`` makespan
  (1.0 = unaffected; the lower-is-better analogue of Fig. 6's
  normalized performance, under perturbation instead of across
  platforms), and
* **recovery** — mean time from the last fault firing to loop
  completion, i.e. how long the schedule needs to absorb the final
  perturbation.

The adaptive A/B (:func:`throttle_ab`) runs the acceptance scenario:
a mid-loop throttle of every big core while ``aid_auto`` holds a
one-shot distribution sized for full-speed bigs. With
``adapt_on_faults`` the scheduler resamples and redistributes; without
it the stale distribution must be repaired one drain chunk at a time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.check.generators import (
    DEFAULT_VARIANTS,
    preset_platform,
    run_loop,
)
from repro.errors import ExperimentError
from repro.faults.model import FaultPlan, ThrottleEvent, random_plan
from repro.perfmodel.overhead import OverheadModel
from repro.sched.aid_auto import AidAutoSpec
from repro.sched.registry import parse_schedule
from repro.sim.rng import stable_seed

#: Default fault-intensity levels swept (see ``random_plan``).
DEFAULT_INTENSITIES = (0.3, 0.6, 1.0)


def _last_fault_time(plan: FaultPlan) -> float:
    """The latest firing in a plan (window ends count)."""
    latest = 0.0
    for ev in plan.events:
        for name in ("t", "t1"):
            if hasattr(ev, name):
                latest = max(latest, getattr(ev, name))
    return latest


@dataclass(frozen=True)
class ResilienceCell:
    """One (variant, intensity) cell of the sweep."""

    variant: str
    intensity: float
    degradation: float  # geomean faulted/fault-free makespan
    recovery: float  # mean seconds from last fault firing to completion
    n_runs: int


@dataclass
class ResilienceReport:
    """Degradation-vs-intensity table for a platform."""

    platform_name: str
    variants: tuple[str, ...]
    intensities: tuple[float, ...]
    n_iterations: int
    seeds: int
    cells: list[ResilienceCell] = field(default_factory=list)

    def cell(self, variant: str, intensity: float) -> ResilienceCell:
        for c in self.cells:
            if c.variant == variant and c.intensity == intensity:
                return c
        raise ExperimentError(
            f"no resilience cell for ({variant!r}, {intensity!r})"
        )

    def to_payload(self) -> dict:
        return {
            "schema": "repro.experiments.resilience/v1",
            "platform": self.platform_name,
            "n_iterations": self.n_iterations,
            "seeds": self.seeds,
            "intensities": list(self.intensities),
            "variants": list(self.variants),
            "cells": [
                {
                    "variant": c.variant,
                    "intensity": c.intensity,
                    "degradation": c.degradation,
                    "recovery": c.recovery,
                    "n_runs": c.n_runs,
                }
                for c in self.cells
            ],
        }

    def to_table(self, digits: int = 3) -> str:
        """Human-readable degradation table (recovery in parentheses)."""
        width = max(len(v) for v in self.variants) + 2
        head = "variant".ljust(width) + "".join(
            f"{f'intensity {i:g}':>22s}" for i in self.intensities
        )
        lines = [
            f"[{self.platform_name}] makespan degradation vs fault-free "
            f"(ni={self.n_iterations}, {self.seeds} plans/cell; "
            f"recovery seconds in parentheses)",
            head,
        ]
        for variant in self.variants:
            row = variant.ljust(width)
            for intensity in self.intensities:
                c = self.cell(variant, intensity)
                row += f"{c.degradation:>13.{digits}f} ({c.recovery:.1e})"
            lines.append(row)
        return "\n".join(lines)


def sweep(
    platform_name: str = "odroid_xu4",
    variants: tuple[str, ...] | None = None,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    seeds: int = 5,
    n_iterations: int = 2048,
    work: float = 1e-4,
    root_seed: int = 0,
    overhead_scale: float = 1.0,
) -> ResilienceReport:
    """Run the fault-intensity x variant sweep on one platform.

    Deterministic in ``root_seed``: plan ``s`` of a cell is
    ``random_plan(stable_seed(...), ...)`` scaled onto that variant's
    own fault-free makespan, so a fault at fractional time 0.5 lands
    mid-loop for every variant regardless of their absolute speeds.
    """
    variants = tuple(variants) if variants else DEFAULT_VARIANTS
    if seeds <= 0:
        raise ExperimentError(f"sweep needs seeds > 0, got {seeds}")
    platform = preset_platform(platform_name)
    overhead = (
        OverheadModel().scaled(overhead_scale) if overhead_scale > 0 else None
    )
    report = ResilienceReport(
        platform_name=platform.name,
        variants=variants,
        intensities=tuple(intensities),
        n_iterations=n_iterations,
        seeds=seeds,
    )
    for variant in variants:
        spec = parse_schedule(variant)
        baseline = run_loop(
            platform, spec, n_iterations=n_iterations, work=work,
            overhead=overhead,
        )
        horizon = max(baseline.duration, 1e-9)
        for intensity in intensities:
            log_ratios: list[float] = []
            recoveries: list[float] = []
            for s in range(seeds):
                plan_seed = stable_seed(
                    "resilience", root_seed, variant, f"{intensity:g}", s
                )
                plan = random_plan(
                    plan_seed, platform.n_cores, intensity=intensity
                ).scaled(horizon)
                faulted = run_loop(
                    platform, spec, n_iterations=n_iterations, work=work,
                    overhead=overhead, faults=plan,
                )
                log_ratios.append(
                    math.log(max(faulted.duration, 1e-12) / horizon)
                )
                recoveries.append(
                    max(0.0, faulted.duration - _last_fault_time(plan))
                )
            report.cells.append(
                ResilienceCell(
                    variant=variant,
                    intensity=intensity,
                    degradation=math.exp(sum(log_ratios) / len(log_ratios)),
                    recovery=sum(recoveries) / len(recoveries),
                    n_runs=seeds,
                )
            )
    return report


# -- the adaptive A/B ---------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveComparison:
    """``aid_auto`` with vs without fault adaptation, same throttle."""

    platform_name: str
    n_iterations: int
    throttle_factor: float
    fault_free: float
    adaptive: float
    non_adaptive: float

    @property
    def speedup(self) -> float:
        """Non-adaptive over adaptive makespan (> 1.0 = adaptation won)."""
        return self.non_adaptive / self.adaptive

    def render(self) -> str:
        return (
            f"[{self.platform_name}] aid_auto under a mid-loop throttle "
            f"(big cores x{self.throttle_factor:g}, ni={self.n_iterations}):\n"
            f"  fault-free:    {self.fault_free:.6f}s\n"
            f"  adaptive:      {self.adaptive:.6f}s "
            f"(degradation {self.adaptive / self.fault_free:.3f})\n"
            f"  non-adaptive:  {self.non_adaptive:.6f}s "
            f"(degradation {self.non_adaptive / self.fault_free:.3f})\n"
            f"  adaptation speedup: {self.speedup:.3f}x"
        )


def throttle_ab(
    platform_name: str = "odroid_xu4",
    n_iterations: int = 4096,
    work: float = 1e-5,
    throttle_factor: float = 0.2,
    throttle_at: float = 0.3,
    overhead_scale: float = 5.0,
) -> AdaptiveComparison:
    """The acceptance scenario: throttle every big core mid-loop.

    At ``throttle_at`` (a fraction of the fault-free makespan) every
    core of the platform's fastest type drops to ``throttle_factor`` of
    its speed for the rest of the run — after ``aid_auto`` committed its
    one-shot distribution, before the distributed allotments complete.
    The default work/overhead ratio sits where dispatches are expensive
    relative to iterations — the regime where one-shot distribution
    beats per-chunk dynamic repair (the paper's premise), so a scheduler
    that *re-distributes* after the throttle visibly beats one that
    repairs the stale distribution chunk by chunk.
    """
    platform = preset_platform(platform_name)
    if platform.is_symmetric:
        raise ExperimentError(
            f"throttle_ab needs an asymmetric platform, got {platform.name}"
        )
    overhead = (
        OverheadModel().scaled(overhead_scale) if overhead_scale > 0 else None
    )
    adaptive_spec = AidAutoSpec(adapt_on_faults=True)
    frozen_spec = AidAutoSpec(adapt_on_faults=False)
    baseline = run_loop(
        platform, adaptive_spec, n_iterations=n_iterations, work=work,
        overhead=overhead,
    )
    horizon = max(baseline.duration, 1e-9)
    big = platform.cores_of_type(platform.core_types[-1])
    plan = FaultPlan(
        tuple(
            ThrottleEvent(
                cpu=core.cpu_id,
                t0=throttle_at * horizon,
                t1=100.0 * horizon,  # rest of the run
                factor=throttle_factor,
            )
            for core in big
        )
    )
    adaptive = run_loop(
        platform, adaptive_spec, n_iterations=n_iterations, work=work,
        overhead=overhead, faults=plan,
    )
    frozen = run_loop(
        platform, frozen_spec, n_iterations=n_iterations, work=work,
        overhead=overhead, faults=plan,
    )
    return AdaptiveComparison(
        platform_name=platform.name,
        n_iterations=n_iterations,
        throttle_factor=throttle_factor,
        fault_free=baseline.duration,
        adaptive=adaptive.duration,
        non_adaptive=frozen.duration,
    )


def throttle_ab_snapshots(
    platform_name: str = "odroid_xu4",
    n_iterations: int = 4096,
    work: float = 1e-5,
    throttle_factor: float = 0.2,
    throttle_at: float = 0.3,
    overhead_scale: float = 5.0,
) -> tuple[dict, dict]:
    """Span-bearing snapshots of the A/B scenario: (unthrottled, throttled).

    Both runs use the *non-adaptive* ``aid_auto`` (identical schedules;
    fault adaptation never fires in the fault-free run anyway), record
    causal span traces, and come back as full snapshot documents — the
    pair ``python -m repro.obs.report explain`` consumes. The throttled
    trace carries the throttle windows as fault spans, so the explainer
    can name the window as a makespan contributor.
    """
    from repro.obs import Observability, SpanRecorder
    from repro.obs.snapshot import build_snapshot

    platform = preset_platform(platform_name)
    if platform.is_symmetric:
        raise ExperimentError(
            f"throttle_ab_snapshots needs an asymmetric platform, "
            f"got {platform.name}"
        )
    overhead = (
        OverheadModel().scaled(overhead_scale) if overhead_scale > 0 else None
    )
    spec = AidAutoSpec(adapt_on_faults=False)
    obs_a = Observability(spans=SpanRecorder(context="ab:unthrottled"))
    baseline = run_loop(
        platform, spec, n_iterations=n_iterations, work=work,
        overhead=overhead, obs=obs_a,
    )
    horizon = max(baseline.duration, 1e-9)
    big = platform.cores_of_type(platform.core_types[-1])
    plan = FaultPlan(
        tuple(
            ThrottleEvent(
                cpu=core.cpu_id,
                t0=throttle_at * horizon,
                t1=100.0 * horizon,
                factor=throttle_factor,
            )
            for core in big
        )
    )
    obs_b = Observability(spans=SpanRecorder(context="ab:throttled"))
    run_loop(
        platform, spec, n_iterations=n_iterations, work=work,
        overhead=overhead, faults=plan, obs=obs_b,
    )
    meta = {
        "scenario": "throttle_ab",
        "platform": platform.name,
        "n_iterations": n_iterations,
        "throttle_factor": throttle_factor,
        "throttle_at": throttle_at,
    }
    return (
        build_snapshot(obs_a, meta={**meta, "variant": "unthrottled"}),
        build_snapshot(obs_b, meta={**meta, "variant": "throttled"}),
    )
