"""Fig. 4 — EP traces under AID-static and AID-hybrid (80%).

AID-static's one-shot distribution relies on the sampled SF staying
representative; EP's slight cost drift makes small-core threads finish
their allotment early (Fig. 4a). AID-hybrid keeps 20% of the iterations
in the pool for a dynamic tail, so the early finishers keep stealing
while the big-core threads complete their share (Fig. 4b) — about 10.5%
faster than AID-static in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.tracing.ascii_art import render_timeline
from repro.tracing.trace import TraceRecorder
from repro.workloads.registry import get_program


@dataclass
class Fig4Result:
    time_aid_static: float
    time_aid_hybrid: float
    trace_aid_static: TraceRecorder
    trace_aid_hybrid: TraceRecorder

    @property
    def hybrid_gain(self) -> float:
        """AID-hybrid's relative improvement over AID-static (paper: 10.5%)."""
        return self.time_aid_static / self.time_aid_hybrid - 1.0


def run(platform: Platform | None = None, seed: int = 0) -> Fig4Result:
    platform = platform if platform is not None else odroid_xu4()
    program = get_program("EP")
    results = {}
    for schedule in ("aid_static", "aid_hybrid,80"):
        runner = ProgramRunner(
            platform,
            OmpEnv(schedule=schedule, affinity="BS"),
            root_seed=seed,
            trace=True,
        )
        results[schedule] = runner.run(program)
    return Fig4Result(
        time_aid_static=results["aid_static"].completion_time,
        time_aid_hybrid=results["aid_hybrid,80"].completion_time,
        trace_aid_static=results["aid_static"].trace,
        trace_aid_hybrid=results["aid_hybrid,80"].trace,
    )


def format_report(result: Fig4Result, width: int = 90) -> str:
    t_end = max(result.trace_aid_static.t_end, result.trace_aid_hybrid.t_end)
    tail_start = 0.8 * t_end
    lines = [
        "Fig. 4 — EP with 8 threads on Platform A",
        "",
        "(a) AID-static:",
        render_timeline(result.trace_aid_static, width=width, t1=t_end,
                        show_legend=False),
        "",
        "(b) AID-hybrid (80%):",
        render_timeline(result.trace_aid_hybrid, width=width, t1=t_end,
                        show_legend=False),
        "",
        "(c) AID-hybrid, final stretch of the loop:",
        render_timeline(result.trace_aid_hybrid, width=width, t0=tail_start),
        "",
        f"completion AID-static: {result.time_aid_static:.4f} s",
        f"completion AID-hybrid: {result.time_aid_hybrid:.4f} s"
        f"  (gain {result.hybrid_gain:+.1%}; paper: +10.5%)",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
