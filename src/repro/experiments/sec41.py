"""Sec. 4.1 — the compiler change demonstrated via undefined symbols.

Vanilla GCC inlines the static distribution for clause-less loops, so the
binary references no ``GOMP_loop_*`` symbols and the runtime cannot
intervene; the paper's modified compiler defaults those loops to
``schedule(runtime)``, re-introducing ``GOMP_loop_runtime_*``. We also
verify the paper's "no noticeable overhead" claim: the same program built
both ways and run with ``OMP_SCHEDULE=static`` completes in (nearly) the
same time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4
from repro.compiler.lowering import compile_program
from repro.compiler.symbols import nm_output, undefined_symbols
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.workloads.registry import get_program


@dataclass
class Sec41Result:
    program_name: str
    vanilla_symbols: list[str]
    modified_symbols: list[str]
    vanilla_controllable: float
    modified_controllable: float
    time_vanilla_static: float
    time_modified_static: float

    @property
    def static_overhead(self) -> float:
        """Relative slowdown of the modified build under OMP_SCHEDULE=static
        (paper: not noticeable)."""
        return self.time_modified_static / self.time_vanilla_static - 1.0


def run(
    platform: Platform | None = None, program_name: str = "BT", seed: int = 0
) -> Sec41Result:
    """Compile one program both ways, inspect symbols, time static runs."""
    platform = platform if platform is not None else odroid_xu4()
    program = get_program(program_name)
    vanilla = compile_program(program, modified=False)
    modified = compile_program(program, modified=True)
    env = OmpEnv(schedule="static", affinity="BS")
    t_vanilla = (
        ProgramRunner(platform, env, root_seed=seed).run(vanilla).completion_time
    )
    t_modified = (
        ProgramRunner(platform, env, root_seed=seed).run(modified).completion_time
    )
    return Sec41Result(
        program_name=program.name,
        vanilla_symbols=undefined_symbols(vanilla),
        modified_symbols=undefined_symbols(modified),
        vanilla_controllable=vanilla.runtime_controllable_fraction,
        modified_controllable=modified.runtime_controllable_fraction,
        time_vanilla_static=t_vanilla,
        time_modified_static=t_modified,
    )


def format_report(result: Sec41Result) -> str:
    lines = [
        f"Sec. 4.1 — compiler change, program {result.program_name}",
        "",
        "$ nm -u bt.B | grep -i GOMP_   (vanilla gcc)",
    ]
    lines += [f"                 U {s}" for s in result.vanilla_symbols]
    lines += ["", "$ nm -u bt.B_modified | grep -i GOMP_   (modified gcc)"]
    lines += [f"                 U {s}" for s in result.modified_symbols]
    lines += [
        "",
        f"runtime-controllable loops: vanilla {result.vanilla_controllable:.0%}"
        f" -> modified {result.modified_controllable:.0%}",
        f"OMP_SCHEDULE=static completion: vanilla {result.time_vanilla_static:.4f} s,"
        f" modified {result.time_modified_static:.4f} s"
        f" (overhead {result.static_overhead:+.2%}; paper: not noticeable)",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
