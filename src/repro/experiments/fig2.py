"""Fig. 2 — per-loop big-to-small speedup factors of BT and CG.

Reproduces the paper's offline SF measurement protocol: each parallel
loop is run single-threaded on a big core and on a small core, and the
SF is the ratio of the completion times. The figure's message — SFs vary
greatly across loops of one application, and the profile of Platform A
looks nothing like Platform B's — is what rules out one application-wide
speedup factor and motivates per-loop online estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.perfmodel.speed import PerfModel
from repro.sim.rng import RngStreams
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program
from repro.workloads.registry import get_program


@dataclass
class LoopSfPoint:
    """One point of the Fig. 2 series."""

    index: int          # loop-invocation number in program order (x axis)
    loop_name: str
    sf: float           # measured big/small completion-time ratio (y axis)


@dataclass
class Fig2Result:
    """Per-platform, per-program SF series."""

    series: dict[str, dict[str, list[LoopSfPoint]]] = field(default_factory=dict)
    # series[platform_name][program_name] -> points

    def max_sf(self, platform_name: str) -> float:
        return max(
            p.sf
            for prog in self.series[platform_name].values()
            for p in prog
        )


def measure_loop_sf(
    platform: Platform, program: Program, loop: LoopSpec, invocation: int, seed: int
) -> float:
    """Single-thread completion-time ratio small/big for one invocation.

    Simulates the paper's protocol exactly: the same iteration costs are
    executed solo on one big and one small core; SF = t_small / t_big.
    """
    perf = PerfModel(platform)
    costs = loop.costs(RngStreams(seed), program.name, invocation)
    total = float(costs.sum())
    slow_cpu = platform.cores_of_type(platform.core_types[0])[0].cpu_id
    fast_cpu = platform.cores_of_type(platform.core_types[-1])[0].cpu_id
    t_small = total / perf.solo_rate(slow_cpu, loop.kernel)
    t_big = total / perf.solo_rate(fast_cpu, loop.kernel)
    # Real offline measurements carry run-to-run noise (OS jitter, DVFS
    # transients); model it as a few percent, deterministically seeded.
    noise = RngStreams(seed).get(
        "sf-measure", platform.name, program.name, loop.name, invocation
    ).normal(1.0, 0.025, size=2)
    return (t_small * max(0.9, noise[0])) / (t_big * max(0.9, noise[1]))


def run(
    platforms: tuple[Platform, ...] | None = None,
    programs: tuple[str, ...] = ("BT", "CG"),
    n_loops: int = 30,
    seed: int = 0,
) -> Fig2Result:
    """SF of the first ``n_loops`` loop invocations of each program."""
    if platforms is None:
        platforms = (odroid_xu4(), xeon_emulated())
    result = Fig2Result()
    for platform in platforms:
        per_prog: dict[str, list[LoopSfPoint]] = {}
        for name in programs:
            program = get_program(name)
            points: list[LoopSfPoint] = []
            for phase, invocation in program.schedule():
                if not isinstance(phase, LoopSpec):
                    continue
                if len(points) >= n_loops:
                    break
                sf = measure_loop_sf(platform, program, phase, invocation, seed)
                points.append(LoopSfPoint(len(points) + 1, phase.name, sf))
            per_prog[name] = points
        result.series[platform.name] = per_prog
    return result


def format_report(result: Fig2Result) -> str:
    """Fig. 2 as text: one bar row per loop invocation."""
    lines = ["Fig. 2 — big-to-small relative performance, first 30 loops"]
    for platform_name, progs in result.series.items():
        lines.append(f"\n[{platform_name}] (max SF {result.max_sf(platform_name):.1f})")
        for prog_name, points in progs.items():
            lines.append(f"  {prog_name}:")
            for p in points:
                bar = "#" * max(1, round(p.sf * 8))
                lines.append(
                    f"    {p.index:2d} {p.loop_name:<18s} {p.sf:5.2f} {bar}"
                )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
