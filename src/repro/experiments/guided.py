"""Sec. 5 (intro) — why guided is not a contender on AMPs.

The paper evaluated OpenMP's guided schedule and found it increases mean
completion time by 44% vs static and 65% vs dynamic, never beating both
for any program; hence Figs. 6/7 omit it. This harness regenerates those
aggregate numbers and the never-beats-both check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.experiments.harness import ScheduleConfig, run_grid
from repro.runtime.env import OmpEnv


@dataclass
class GuidedResult:
    """Aggregates per platform."""

    mean_increase_vs_static: dict[str, float]
    mean_increase_vs_dynamic: dict[str, float]
    beats_both: dict[str, list[str]]  # programs where guided wins both


CONFIGS = (
    ScheduleConfig("static(BS)", OmpEnv(schedule="static", affinity="BS")),
    ScheduleConfig("dynamic(BS)", OmpEnv(schedule="dynamic,1", affinity="BS")),
    ScheduleConfig("guided(BS)", OmpEnv(schedule="guided,1", affinity="BS")),
)


def run(
    platforms: tuple[Platform, ...] | None = None, seed: int = 0, programs=None
) -> GuidedResult:
    if platforms is None:
        platforms = (odroid_xu4(), xeon_emulated())
    inc_static: dict[str, float] = {}
    inc_dynamic: dict[str, float] = {}
    beats: dict[str, list[str]] = {}
    for platform in platforms:
        grid = run_grid(platform, programs=programs, configs=CONFIGS, root_seed=seed)
        g = grid.column("guided(BS)")
        s = grid.column("static(BS)")
        d = grid.column("dynamic(BS)")
        inc_static[platform.name] = sum(
            g[p] / s[p] - 1.0 for p in g
        ) / len(g)
        inc_dynamic[platform.name] = sum(
            g[p] / d[p] - 1.0 for p in g
        ) / len(g)
        beats[platform.name] = [
            p for p in g if g[p] < s[p] and g[p] < d[p]
        ]
    return GuidedResult(
        mean_increase_vs_static=inc_static,
        mean_increase_vs_dynamic=inc_dynamic,
        beats_both=beats,
    )


def format_report(result: GuidedResult) -> str:
    lines = ["Sec. 5 — guided schedule aggregates (paper: +44% / +65%)"]
    for plat in result.mean_increase_vs_static:
        lines.append(
            f"  [{plat}] guided completion time vs static:"
            f" {result.mean_increase_vs_static[plat]:+.1%},"
            f" vs dynamic: {result.mean_increase_vs_dynamic[plat]:+.1%},"
            f" beats both for: {result.beats_both[plat] or 'no program'}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
