"""Experiment harnesses regenerating every table and figure of the paper.

One module per artifact (see DESIGN.md's experiment index):

* :mod:`repro.experiments.fig1` — EP traces under static, 2B-2S vs 4S.
* :mod:`repro.experiments.fig2` — per-loop SF profiles of BT and CG.
* :mod:`repro.experiments.sec41` — the nm-symbol compiler demonstration.
* :mod:`repro.experiments.fig4` — EP traces under AID-static/AID-hybrid.
* :mod:`repro.experiments.fig67` — the full normalized-performance grids
  (Fig. 6: Platform A, Fig. 7: Platform B).
* :mod:`repro.experiments.table2` — mean/gmean AID gains.
* :mod:`repro.experiments.guided` — the Sec. 5 guided-schedule numbers.
* :mod:`repro.experiments.fig8` — chunk-sensitivity study.
* :mod:`repro.experiments.sec5b` — AID-hybrid percentage sensitivity.
* :mod:`repro.experiments.fig9` — offline-SF accuracy study incl. the
  blackscholes contention case.

Extensions beyond the paper's evaluation:

* :mod:`repro.experiments.energy` — energy/EDP per schedule (the
  paper's motivating metric, closed with the power model).
* :mod:`repro.experiments.multiapp` — co-located applications under OS
  partitioning with the Sec. 4.3 shared-page coordination.

All build on :mod:`repro.experiments.harness`, the shared grid runner.
"""

from repro.experiments.harness import (
    ScheduleConfig,
    GridResult,
    default_configs,
    offline_sf_tables,
    run_grid,
    run_one,
)

__all__ = [
    "ScheduleConfig",
    "GridResult",
    "default_configs",
    "run_grid",
    "run_one",
    "offline_sf_tables",
    "fig1",
    "fig2",
    "sec41",
    "fig4",
    "fig67",
    "table2",
    "guided",
    "fig8",
    "sec5b",
    "fig9",
    "energy",
    "multiapp",
]
