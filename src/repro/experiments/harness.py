"""Shared experiment harness: schedule grids over programs and platforms.

The paper's evaluation protocol: run every program under every
loop-scheduling configuration with 8 threads (one per core), report
completion time normalized to static(SB). Runs in the simulator are
deterministic, so no warm-up/repetition protocol is needed — one run per
cell *is* the geometric mean of the paper's four timed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.amp.platform import Platform
from repro.errors import ExperimentError
from repro.fleet import (
    FleetConfig,
    FleetProgress,
    JobSpec,
    ResultCache,
    require_ok,
    run_jobs,
)
from repro.metrics.stats import normalized_performance
from repro.perfmodel.contention import ContentionModel
from repro.perfmodel.overhead import OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramResult, ProgramRunner
from repro.workloads.program import Program
from repro.workloads.registry import all_programs


@dataclass(frozen=True)
class ScheduleConfig:
    """One column of a Fig. 6/7-style grid.

    Attributes:
        label: display label, e.g. ``"static(SB)"`` or ``"AID-hybrid"``.
        env: runtime environment realizing it.
    """

    label: str
    env: OmpEnv


def default_configs() -> tuple[ScheduleConfig, ...]:
    """The seven configurations of the paper's Figs. 6 and 7.

    Default chunks throughout, as in the paper's Sec. 5A: dynamic uses
    chunk 1, AID methods sample with (minor) chunk 1, AID-hybrid uses
    80%, AID-dynamic uses Major chunk 5.
    """
    return (
        ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB")),
        ScheduleConfig("static(BS)", OmpEnv(schedule="static", affinity="BS")),
        ScheduleConfig("dynamic(SB)", OmpEnv(schedule="dynamic,1", affinity="SB")),
        ScheduleConfig("dynamic(BS)", OmpEnv(schedule="dynamic,1", affinity="BS")),
        ScheduleConfig("AID-static", OmpEnv(schedule="aid_static", affinity="BS")),
        ScheduleConfig(
            "AID-hybrid", OmpEnv(schedule="aid_hybrid,80", affinity="BS")
        ),
        ScheduleConfig(
            "AID-dynamic", OmpEnv(schedule="aid_dynamic,1,5", affinity="BS")
        ),
    )


#: Baseline column used for normalization, as in the paper.
BASELINE_LABEL = "static(SB)"


def offline_sf_tables(
    platform: Platform, program: Program
) -> dict[str, dict[int, float]]:
    """Per-loop offline SF tables for a program on a platform.

    Reproduces the paper's offline measurement protocol (Sec. 2): run the
    loop single-threaded on each core type and take completion-time
    ratios against the slowest type — i.e. solo rates without co-runner
    contention. Used by the AID-static(offline-SF) variant of Fig. 9.
    """
    perf = PerfModel(platform)
    tables: dict[str, dict[int, float]] = {}
    for loop in program.loops():
        tables[loop.name] = {
            j: perf.speedup_factor(loop.kernel, platform.core_types[j])
            for j in range(platform.n_core_types)
        }
    return tables


def run_one(
    platform: Platform,
    program: Program,
    config: ScheduleConfig,
    root_seed: int = 0,
    overhead: OverheadModel | None = None,
    contention: ContentionModel | None = None,
    trace: bool = False,
    backend: str | None = None,
) -> ProgramResult:
    """Run one (program, configuration) cell."""
    needs_offline = config.env.schedule_spec().needs_offline_sf
    runner = ProgramRunner(
        platform,
        config.env,
        overhead=overhead,
        contention=contention,
        root_seed=root_seed,
        trace=trace,
        offline_sf_tables=(
            offline_sf_tables(platform, program) if needs_offline else None
        ),
        backend=backend,
    )
    return runner.run(program)


@dataclass
class GridResult:
    """Completion times for programs x configurations on one platform."""

    platform_name: str
    config_labels: tuple[str, ...]
    times: dict[str, dict[str, float]] = field(default_factory=dict)

    def time(self, program: str, label: str) -> float:
        try:
            return self.times[program][label]
        except KeyError:
            raise ExperimentError(
                f"no result for ({program!r}, {label!r}) on {self.platform_name}"
            ) from None

    def normalized(
        self, baseline: str = BASELINE_LABEL
    ) -> dict[str, dict[str, float]]:
        """Per-program normalized performance vs a baseline column
        (higher is better; baseline = 1.0) — the y-axis of Figs. 6/7."""
        out: dict[str, dict[str, float]] = {}
        for program, row in self.times.items():
            base = row[baseline]
            out[program] = {
                label: normalized_performance(base, t) for label, t in row.items()
            }
        return out

    def column(self, label: str) -> dict[str, float]:
        """One configuration's completion time per program."""
        return {program: row[label] for program, row in self.times.items()}

    @classmethod
    def from_payload(cls, payload: Mapping) -> "GridResult":
        """Rehydrate a grid from :func:`repro.obs.snapshot.grid_payload`.

        Exact inverse of the payload (including row and column order, via
        its ``program_order``/``schemes`` lists), so a cached fleet
        result renders the very same tables as the run that produced it.
        """
        try:
            labels = tuple(str(s) for s in payload["schemes"])
            programs = payload["programs"]
            order = payload.get("program_order")
            names = [str(n) for n in order] if order is not None else sorted(
                programs
            )
            grid = cls(
                platform_name=str(payload["platform"]), config_labels=labels
            )
            for name in names:
                by_label = {
                    row["scheme"]: float(row["completion_time"])
                    for row in programs[name]
                }
                grid.times[name] = {label: by_label[label] for label in labels}
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"malformed grid payload: {exc!r}"
            ) from exc
        return grid

    def to_table(self, baseline: str = BASELINE_LABEL, digits: int = 3) -> str:
        """Human-readable normalized-performance table."""
        norm = self.normalized(baseline)
        width = max(len(p) for p in norm) + 2
        head = "program".ljust(width) + "".join(
            f"{label:>14s}" for label in self.config_labels
        )
        lines = [f"[{self.platform_name}] normalized performance vs {baseline}", head]
        for program in norm:
            row = norm[program]
            lines.append(
                program.ljust(width)
                + "".join(
                    f"{row[label]:>14.{digits}f}" for label in self.config_labels
                )
            )
        return "\n".join(lines)


def grid_specs(
    platform: Platform,
    programs: Sequence[Program],
    configs: Sequence[ScheduleConfig],
    root_seed: int = 0,
    overhead: OverheadModel | None = None,
    contention: ContentionModel | None = None,
    backend: str | None = None,
    trace_context: str | None = None,
) -> list[JobSpec]:
    """The grid's cells as fleet jobs, row-major (program, then config)."""
    return [
        JobSpec(
            program=program,
            platform=platform,
            env=config.env,
            root_seed=root_seed,
            overhead=overhead,
            contention=contention,
            backend=backend,
            trace_context=trace_context,
            label=config.label,
        )
        for program in programs
        for config in configs
    ]


def run_grid(
    platform: Platform,
    programs: Iterable[Program] | None = None,
    configs: Sequence[ScheduleConfig] | None = None,
    root_seed: int = 0,
    overhead: OverheadModel | None = None,
    contention: ContentionModel | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | str | Path | None = None,
    timeout: float | None = None,
    retries: int = 2,
    progress: FleetProgress | None = None,
    obs_snapshot_path: str | Path | None = None,
    backend: str | None = None,
    trace_context: str | None = None,
    checkpoint=None,
    dispatcher: str | None = None,
    supervisor=None,
) -> GridResult:
    """Run a full programs x configurations grid on one platform.

    With the defaults this runs every cell serially in-process, exactly
    as it always has. ``jobs > 1`` fans the cells out over the
    :mod:`repro.fleet` process pool, and ``cache`` (a
    :class:`~repro.fleet.cache.ResultCache` or a directory path) makes
    unchanged cells instant hits across reruns; either way the simulator
    is deterministic, so the resulting grid is cell-for-cell identical
    to a serial run. ``timeout``/``retries`` set the fleet's per-job
    failure policy and ``progress`` collects fleet counters, events and
    the merged per-job observability capture. ``obs_snapshot_path``
    writes that merged fleet-level snapshot after the run (forcing the
    fleet path, and a fresh :class:`FleetProgress` when none was given)
    — serial and parallel runs of the same grid write byte-identical
    snapshots modulo wall-clock fields. ``backend`` names the execution
    backend every cell runs under (``None`` = environment override, then
    ``reference``); it becomes part of each job's digest, so grids run
    under different backends occupy disjoint cache entries.
    ``trace_context`` turns on causal span tracing for every cell (see
    :class:`~repro.fleet.jobs.JobSpec`); the merged snapshot then folds
    one labeled span tree per cell, byte-identically across worker
    counts and cache states. ``checkpoint`` (a
    :class:`~repro.fleet.checkpoint.SweepCheckpoint`) journals the
    grid's digest plan and every terminal cell state so a killed sweep
    resumes from acknowledged work, and ``dispatcher`` picks the fleet
    dispatcher by name (``inline`` / ``process`` / ``local``).
    ``supervisor`` (a :class:`~repro.fleet.supervisor.Supervisor`)
    shares hang-detection, poison-quarantine and circuit-breaker state
    across grids — the CLI passes one per invocation so a breaker
    tripped in one grid keeps the next grid off the broken tier.
    """
    programs = tuple(programs) if programs is not None else all_programs()
    configs = tuple(configs) if configs is not None else default_configs()
    if not programs or not configs:
        raise ExperimentError("empty grid")
    if obs_snapshot_path is not None and progress is None:
        progress = FleetProgress()
    grid = GridResult(
        platform_name=platform.name,
        config_labels=tuple(c.label for c in configs),
    )
    if (
        jobs <= 1 and cache is None and progress is None
        and trace_context is None and checkpoint is None
        and dispatcher is None and supervisor is None
    ):
        # The historical serial path: no pool, no cache I/O, no events.
        for program in programs:
            row: dict[str, float] = {}
            for config in configs:
                result = run_one(
                    platform,
                    program,
                    config,
                    root_seed=root_seed,
                    overhead=overhead,
                    contention=contention,
                    backend=backend,
                )
                row[config.label] = result.completion_time
            grid.times[program.name] = row
        return grid
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    specs = grid_specs(
        platform, programs, configs, root_seed, overhead, contention,
        backend=backend, trace_context=trace_context,
    )
    outcomes = require_ok(
        run_jobs(
            specs,
            FleetConfig(
                jobs=jobs, timeout=timeout, retries=retries,
                dispatcher=dispatcher,
            ),
            cache=cache,
            progress=progress,
            checkpoint=checkpoint,
            supervisor=supervisor,
        )
    )
    it = iter(outcomes)
    for program in programs:
        grid.times[program.name] = {
            config.label: next(it).result.completion_time
            for config in configs
        }
    if obs_snapshot_path is not None:
        from repro.obs.snapshot import to_json

        Path(obs_snapshot_path).write_text(
            to_json(progress.obs_snapshot(meta={"platform": platform.name})),
            encoding="utf-8",
        )
    return grid
