"""Figs. 6 and 7 — full normalized-performance grids on both platforms.

All 21 programs x the seven scheduling configurations of the paper's
Sec. 5A (static/dynamic under both pinning conventions, plus the three
AID variants with default parameters), normalized to static(SB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.experiments.harness import GridResult, run_grid


@dataclass
class Fig67Result:
    platform_a: GridResult
    platform_b: GridResult


def run(
    seed: int = 0,
    programs=None,
    *,
    jobs: int = 1,
    cache=None,
    timeout=None,
    progress=None,
    checkpoint=None,
    dispatcher=None,
) -> Fig67Result:
    """Run both grids (Fig. 6: Platform A, Fig. 7: Platform B).

    ``jobs``/``cache``/``timeout``/``progress`` route the cells through
    the :mod:`repro.fleet` pool; results are identical to serial runs.
    ``checkpoint`` journals cell completion for resumable sweeps and
    ``dispatcher`` names the fleet dispatcher.
    """
    fleet = dict(
        jobs=jobs, cache=cache, timeout=timeout, progress=progress,
        checkpoint=checkpoint, dispatcher=dispatcher,
    )
    return Fig67Result(
        platform_a=run_grid(
            odroid_xu4(), programs=programs, root_seed=seed, **fleet
        ),
        platform_b=run_grid(
            xeon_emulated(), programs=programs, root_seed=seed, **fleet
        ),
    )


def format_report(result: Fig67Result) -> str:
    return (
        "Fig. 6 — "
        + result.platform_a.to_table()
        + "\n\nFig. 7 — "
        + result.platform_b.to_table()
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
