"""Sec. 5B — sensitivity of AID-hybrid to the percentage parameter.

The paper could not fit this figure but summarizes it: applications that
love dynamic scheduling (FT, lavamd, leukocyte, particlefilter) peak
around 60%, AID-static-friendly programs (blackscholes) peak at 90% and
above, and 80% is a safe platform-wide default — which is why Figs. 6/7
use it. This harness regenerates the sweep and the per-group preferred
percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4
from repro.experiments.harness import ScheduleConfig, run_grid
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

PERCENTAGES = (50, 60, 70, 80, 90, 95, 100)

#: Program groups named in the paper's summary.
DYNAMIC_FRIENDLY = ("FT", "lavamd", "leukocyte", "particlefilter")
STATIC_FRIENDLY = ("blackscholes", "streamcluster", "IS", "CG")


@dataclass
class Sec5bResult:
    times: dict[str, dict[int, float]]  # program -> pct -> completion time

    def best_percentage(self, program: str) -> int:
        row = self.times[program]
        return min(row, key=row.get)

    def normalized(self, program: str) -> dict[int, float]:
        """Performance vs the 80% setting (1.0 = same as 80%)."""
        row = self.times[program]
        base = row[80]
        return {pct: base / t for pct, t in row.items()}


def run(
    platform: Platform | None = None,
    programs: tuple[str, ...] = DYNAMIC_FRIENDLY + STATIC_FRIENDLY,
    percentages: tuple[int, ...] = PERCENTAGES,
    seed: int = 0,
) -> Sec5bResult:
    platform = platform if platform is not None else odroid_xu4()
    configs = tuple(
        ScheduleConfig(
            f"hybrid,{pct}", OmpEnv(schedule=f"aid_hybrid,{pct}", affinity="BS")
        )
        for pct in percentages
    )
    grid = run_grid(
        platform,
        programs=[get_program(p) for p in programs],
        configs=configs,
        root_seed=seed,
    )
    times = {
        program: {pct: grid.time(program, f"hybrid,{pct}") for pct in percentages}
        for program in grid.times
    }
    return Sec5bResult(times=times)


def format_report(result: Sec5bResult) -> str:
    pcts = sorted(next(iter(result.times.values())).keys())
    width = max(len(p) for p in result.times) + 2
    lines = [
        "Sec. 5B — AID-hybrid percentage sweep on Platform A",
        "(performance normalized to the 80% setting; higher is better)",
        "program".ljust(width)
        + "".join(f"{pct:>9d}%" for pct in pcts)
        + "      best",
    ]
    for program in result.times:
        norm = result.normalized(program)
        lines.append(
            program.ljust(width)
            + "".join(f"{norm[pct]:>10.3f}" for pct in pcts)
            + f"{result.best_percentage(program):>9d}%"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
