"""Command-line entry point: regenerate any or all paper artifacts.

Usage::

    aid-experiments list
    aid-experiments fig1 fig4
    aid-experiments all
    aid-experiments fig67 --backend vectorized
    python -m repro.experiments.cli table2
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import (
    energy,
    fig1,
    fig2,
    fig4,
    fig67,
    fig8,
    fig9,
    guided,
    multiapp,
    sec41,
    sec5b,
    table2,
)

#: name -> (module with run()/format_report(), description)
EXPERIMENTS = {
    "fig1": (fig1, "EP traces under static, 2B-2S vs 4S"),
    "fig2": (fig2, "per-loop SF profiles of BT and CG"),
    "sec41": (sec41, "compiler change: nm symbols + static overhead"),
    "fig4": (fig4, "EP traces under AID-static / AID-hybrid"),
    "fig67": (fig67, "normalized-performance grids (Platforms A and B)"),
    "table2": (table2, "mean/gmean AID gains"),
    "guided": (guided, "guided-schedule aggregate numbers"),
    "fig8": (fig8, "chunk-sensitivity study"),
    "sec5b": (sec5b, "AID-hybrid percentage sensitivity"),
    "fig9": (fig9, "offline-SF accuracy study (incl. blackscholes)"),
    # Extensions beyond the paper's evaluation:
    "energy": (energy, "extension: energy/EDP per schedule"),
    "multiapp": (multiapp, "extension: co-located applications (Sec. 4.3)"),
}

#: Experiments whose run() accepts the fleet's ``jobs`` fan-out knob.
SUPPORTS_JOBS = frozenset({"fig67", "table2", "fig8", "fig9"})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="aid-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        default=["all"],
        help="experiment names (see 'list'), or 'all'",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fleet worker processes for the grid experiments "
        f"({', '.join(sorted(SUPPORTS_JOBS))}); default 1 runs serially "
        "in-process, exactly as before",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="execution backend for every simulated loop (reference, "
        "vectorized, real; default: $REPRO_BACKEND, then reference)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal sweep progress to this JSONL file (fleet grid "
        "experiments only); a killed run resumes from acknowledged work "
        "when pointed at the same journal and cache",
    )
    parser.add_argument(
        "--dispatcher", default=None, metavar="NAME",
        help="fleet dispatcher for the grid experiments (inline, "
        "process, local; default: chosen from --jobs)",
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        from repro.backends import ENV_VAR, resolve_backend_name
        from repro.errors import BackendError

        try:
            # Experiments thread no explicit backend parameter — they
            # select through the (validated) environment override, which
            # every LoopExecutor and JobSpec resolves. Fleet workers
            # inherit the variable, and job digests pin the concrete
            # name either way.
            os.environ[ENV_VAR] = resolve_backend_name(args.backend)
        except BackendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    names = args.names or ["all"]
    if names == ["list"]:
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:<8s} {desc}")
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    # Fleet kwargs are passed only when explicitly requested, keeping the
    # historical run(seed=...) call shape for defaults and for the serial
    # experiments.
    fleet_kwargs: dict = {}
    if args.jobs != 1:
        fleet_kwargs["jobs"] = args.jobs
    if args.dispatcher is not None:
        fleet_kwargs["dispatcher"] = args.dispatcher
    checkpoint = None
    if args.checkpoint is not None:
        from repro.fleet.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint(args.checkpoint)
        checkpoint.begin(
            {"tool": "experiments", "names": names, "seed": args.seed}
        )
        fleet_kwargs["checkpoint"] = checkpoint
    for name in names:
        module, desc = EXPERIMENTS[name]
        t0 = time.perf_counter()
        if name in SUPPORTS_JOBS and fleet_kwargs:
            result = module.run(seed=args.seed, **fleet_kwargs)
        else:
            result = module.run(seed=args.seed)
        elapsed = time.perf_counter() - t0
        print(f"{'=' * 72}\n{name}: {desc}  [{elapsed:.1f}s]\n{'=' * 72}")
        print(module.format_report(result))
        print()
    if checkpoint is not None:
        checkpoint.finish()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
