"""Extension experiment — co-located applications (paper Sec. 4.3).

The paper defers multi-application scenarios to future work but spells
out the design: the OS partitions cores, favors low TIDs on big cores,
and exposes the allocation to each runtime via shared memory so AID
distributions always use the current N_B/N_S. This experiment runs that
design: two applications space-share Platform A under three partitioning
policies and two schedules, plus a mid-run reallocation.

Expected shape: the cluster split maximizes throughput for the lucky
big-cluster app but is grossly unfair; the asymmetry-aware fair mix
gives every app a miniature AMP where AID keeps beating static; and a
mid-run big-core reallocation is absorbed at the next loop boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4
from repro.osched.allocation import AllocationTimeline
from repro.osched.multiapp import ColocationResult, run_colocated
from repro.osched.policies import cluster_split, fair_mixed, priority_weighted
from repro.workloads.registry import get_program

DEFAULT_PAIR = ("streamcluster", "FT")


@dataclass
class MultiAppResult:
    cells: dict[tuple[str, str], ColocationResult] = field(default_factory=dict)
    # (policy, schedule) -> result
    realloc: ColocationResult | None = None


def run(
    platform: Platform | None = None,
    programs: tuple[str, str] = DEFAULT_PAIR,
    seed: int = 0,
) -> MultiAppResult:
    platform = platform if platform is not None else odroid_xu4()
    progs = [get_program(p) for p in programs]
    result = MultiAppResult()
    policies = {
        "cluster-split": cluster_split(platform),
        "fair-mixed": fair_mixed(platform),
        "priority(3,1)": priority_weighted(platform, (3, 1)),
    }
    for policy_name, alloc in policies.items():
        for schedule in ("static", "aid_static", "aid_dynamic,1,5"):
            result.cells[(policy_name, schedule)] = run_colocated(
                platform, progs, alloc, schedule=schedule, seed=seed
            )
    # Mid-run reallocation: the OS moves a big core from app 1 to app 0
    # shortly into the run; both runtimes pick it up at their next loop.
    timeline = AllocationTimeline(
        breakpoints=[
            (0.0, fair_mixed(platform)),
            (0.02, priority_weighted(platform, (3, 1))),
        ]
    )
    result.realloc = run_colocated(
        platform, progs, timeline, schedule="aid_static", seed=seed
    )
    return result


def format_report(result: MultiAppResult) -> str:
    lines = ["Multi-application extension (Sec. 4.3) — Platform A"]
    for (policy, schedule), r in result.cells.items():
        lines.append(f"  {policy:<14s} {r.summary()}")
    if result.realloc is not None:
        lines.append("  with a big core reallocated to app 0 at t=20ms:")
        lines.append(f"  {'realloc':<14s} {result.realloc.summary()}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
