"""Fig. 8 — chunk sensitivity of dynamic vs AID-dynamic on Platform A.

The paper sweeps the dynamic chunk and AID-dynamic's Major chunk over
the dynamic-friendly applications. Bigger dynamic chunks cut overhead
but cause end-of-loop imbalance (one thread suddenly drains the pool);
AID-dynamic's endgame switch to dynamic(m) removes that failure mode,
making it far less chunk-sensitive. Comparing best-explored-chunk
settings per application, the paper finds AID-dynamic ahead by up to
21.9% and 5.5% on average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4
from repro.experiments.harness import ScheduleConfig, run_grid
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

#: The paper's Fig. 8 focuses on applications that benefit from dynamic
#: iteration distribution (as observed in Fig. 6).
DYNAMIC_FRIENDLY = (
    "BT",
    "FT",
    "bodytrack",
    "streamcluster",
    "hotspot3D",
    "lavamd",
    "leukocyte",
    "particlefilter",
)

#: Chunk sweep: dynamic/c and AID-dynamic/(m,M), as in the figure legend.
DYNAMIC_CHUNKS = (1, 5, 10, 20)
AID_DYNAMIC_CHUNKS = ((1, 5), (1, 10), (2, 20))


def _configs() -> tuple[ScheduleConfig, ...]:
    configs = [
        ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB"))
    ]
    for c in DYNAMIC_CHUNKS:
        configs.append(
            ScheduleConfig(
                f"dynamic/{c}", OmpEnv(schedule=f"dynamic,{c}", affinity="BS")
            )
        )
    for m, M in AID_DYNAMIC_CHUNKS:
        configs.append(
            ScheduleConfig(
                f"AID-dynamic/({m},{M})",
                OmpEnv(schedule=f"aid_dynamic,{m},{M}", affinity="BS"),
            )
        )
    return tuple(configs)


@dataclass
class Fig8Result:
    normalized: dict[str, dict[str, float]]  # program -> config -> perf
    best_gain_per_program: dict[str, float] = field(default_factory=dict)

    @property
    def max_best_gain(self) -> float:
        """AID-dynamic's best-chunk gain over dynamic's best chunk, max
        across programs (paper: up to 21.9%)."""
        return max(self.best_gain_per_program.values())

    @property
    def mean_best_gain(self) -> float:
        """Average best-chunk gain (paper: 5.5%)."""
        gains = list(self.best_gain_per_program.values())
        return sum(gains) / len(gains)


def run(
    platform: Platform | None = None,
    programs: tuple[str, ...] = DYNAMIC_FRIENDLY,
    seed: int = 0,
    *,
    jobs: int = 1,
    cache=None,
    timeout=None,
    progress=None,
    checkpoint=None,
    dispatcher=None,
) -> Fig8Result:
    platform = platform if platform is not None else odroid_xu4()
    grid = run_grid(
        platform,
        programs=[get_program(p) for p in programs],
        configs=_configs(),
        root_seed=seed,
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        progress=progress,
        checkpoint=checkpoint,
        dispatcher=dispatcher,
    )
    norm = grid.normalized("static(SB)")
    best_gain = {}
    for program, row in norm.items():
        best_dyn = max(row[f"dynamic/{c}"] for c in DYNAMIC_CHUNKS)
        best_aid = max(
            row[f"AID-dynamic/({m},{M})"] for m, M in AID_DYNAMIC_CHUNKS
        )
        best_gain[program] = best_aid / best_dyn - 1.0
    return Fig8Result(normalized=norm, best_gain_per_program=best_gain)


def format_report(result: Fig8Result) -> str:
    configs = next(iter(result.normalized.values())).keys()
    width = max(len(p) for p in result.normalized) + 2
    lines = [
        "Fig. 8 — chunk sensitivity on Platform A (normalized to static(SB))",
        "program".ljust(width) + "".join(f"{c:>18s}" for c in configs),
    ]
    for program, row in result.normalized.items():
        lines.append(
            program.ljust(width) + "".join(f"{row[c]:>18.3f}" for c in configs)
        )
    lines += [
        "",
        "best-chunk AID-dynamic vs best-chunk dynamic:",
    ]
    for program, gain in result.best_gain_per_program.items():
        lines.append(f"  {program:<16s} {gain:+.1%}")
    lines.append(
        f"  max {result.max_best_gain:+.1%} (paper: up to +21.9%),"
        f" mean {result.mean_best_gain:+.1%} (paper: +5.5%)"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
