"""Fig. 1 — EP execution traces under static scheduling.

The paper's motivating observation: running EP with 4 threads and the
static schedule on a 2-big + 2-small AMP configuration leaves the big
cores idle at the barrier for most of the loop (Fig. 1a), so completion
time is nearly identical to running on four small cores (Fig. 1b). We
reproduce both traces and the near-equality of the completion times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amp.platform import Platform
from repro.amp.presets import odroid_xu4
from repro.amp.topology import custom_mapping
from repro.perfmodel.speed import PerfModel
from repro.runtime.env import OmpEnv
from repro.runtime.executor import LoopExecutor
from repro.runtime.program_runner import ProgramRunner
from repro.runtime.team import Team
from repro.sched.static import StaticSpec
from repro.sim.rng import RngStreams
from repro.tracing.ascii_art import render_timeline
from repro.tracing.trace import ThreadState, TraceRecorder
from repro.workloads.registry import get_program


@dataclass
class Fig1Result:
    """Completion times and traces of the two 4-thread configurations."""

    time_2b2s: float
    time_4s: float
    trace_2b2s: TraceRecorder
    trace_4s: TraceRecorder
    big_idle_fraction: float  # barrier-wait share of big-core threads (2B-2S)


def _run_ep_static(platform: Platform, cpus: list[int], seed: int) -> tuple[float, TraceRecorder]:
    """EP's single loop with 4 threads pinned to explicit CPUs, static."""
    program = get_program("EP")
    loop = program.loops()[0]
    team = Team(platform, custom_mapping(f"cpus{cpus}", cpus))
    recorder = TraceRecorder()
    executor = LoopExecutor(team, PerfModel(platform), recorder=recorder)
    costs = loop.costs(RngStreams(seed), program.name, 0)
    result = executor.run(loop, costs, StaticSpec())
    # Make barrier waiting visible in the trace, as Paraver does.
    for tid, t in enumerate(result.finish_times):
        recorder.record(tid, ThreadState.BARRIER, t, result.end_time, loop.name)
    return result.end_time, recorder


def run(platform: Platform | None = None, seed: int = 0) -> Fig1Result:
    """Reproduce Fig. 1 on the given platform (default: Platform A).

    The 2B-2S configuration pins threads 0-1 to big cores and 2-3 to
    small cores; the 4S configuration uses four small cores.
    """
    platform = platform if platform is not None else odroid_xu4()
    n_small = len(platform.cores_of_type(platform.core_types[0]))
    big0 = n_small  # big cores follow the small ones in CPU numbering
    t_mixed, trace_mixed = _run_ep_static(platform, [big0, big0 + 1, 0, 1], seed)
    t_small, trace_small = _run_ep_static(platform, [0, 1, 2, 3], seed)
    big_busy = [
        trace_mixed.time_in_state(tid, ThreadState.BARRIER) for tid in (0, 1)
    ]
    span = trace_mixed.t_end - trace_mixed.t_begin
    idle_frac = sum(big_busy) / (2 * span) if span > 0 else 0.0
    return Fig1Result(
        time_2b2s=t_mixed,
        time_4s=t_small,
        trace_2b2s=trace_mixed,
        trace_4s=trace_small,
        big_idle_fraction=idle_frac,
    )


def format_report(result: Fig1Result, width: int = 90) -> str:
    """Fig. 1 as text: both timelines plus the headline comparison."""
    ratio = result.time_4s / result.time_2b2s
    lines = [
        "Fig. 1 — EP with static schedule, 4 threads",
        "",
        "(a) 2 big + 2 small cores (threads 1-2 big, 3-4 small):",
        render_timeline(result.trace_2b2s, width=width, show_legend=False),
        "",
        "(b) 4 small cores:",
        render_timeline(result.trace_4s, width=width),
        "",
        f"completion 2B-2S: {result.time_2b2s:.4f} s",
        f"completion 4S:    {result.time_4s:.4f} s"
        f"  (4S/2B-2S = {ratio:.3f}; paper: nearly identical)",
        f"big-core barrier-wait fraction (2B-2S): {result.big_idle_fraction:.1%}",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
