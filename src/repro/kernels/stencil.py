"""Stencil sweeps (hotspot3D / MG style)."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def jacobi_step(grid: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """One 5-point Jacobi relaxation over rows [lo, hi) of a 2-D grid.

    Returns the updated rows (the caller stitches them into the output
    grid — chunk-parallel, as the OpenMP loop would).
    """
    if grid.ndim != 2:
        raise WorkloadError("grid must be 2-D")
    n = grid.shape[0]
    lo_c, hi_c = max(lo, 1), min(hi, n - 1)
    if hi_c <= lo_c:
        return grid[lo:hi].copy()
    center = grid[lo_c:hi_c, 1:-1]
    north = grid[lo_c - 1 : hi_c - 1, 1:-1]
    south = grid[lo_c + 1 : hi_c + 1, 1:-1]
    west = grid[lo_c:hi_c, :-2]
    east = grid[lo_c:hi_c, 2:]
    out = grid[lo:hi].copy()
    out[lo_c - lo : hi_c - lo, 1:-1] = 0.2 * (center + north + south + west + east)
    return out


def hotspot_step(
    temp: np.ndarray, power: np.ndarray, lo: int, hi: int, cap: float = 0.5
) -> np.ndarray:
    """One hotspot thermal-update over rows [lo, hi).

    Simplified 2-D version of Rodinia's hotspot: diffusion plus a power
    term, per grid cell.
    """
    if temp.shape != power.shape:
        raise WorkloadError("temp and power must have the same shape")
    diffused = jacobi_step(temp, lo, hi)
    return diffused + cap * power[lo:hi]
