"""NAS CG: sparse matrix-vector kernels."""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import WorkloadError


def make_sparse_system(
    n: int, density: float = 0.02, seed: int = 0
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """A random symmetric positive-definite CSR matrix and RHS vector.

    CG's loops iterate over the rows of such a matrix; row lengths vary,
    which is exactly the mild cost unevenness the CG workload model uses.
    """
    if n <= 0:
        raise WorkloadError("n must be positive")
    if not 0.0 < density <= 1.0:
        raise WorkloadError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    a = sparse.random(n, n, density=density, random_state=rng, format="csr")
    a = (a + a.T) * 0.5
    a = a + sparse.identity(n, format="csr") * (n * density)
    b = rng.standard_normal(n)
    return a.tocsr(), b


def spmv_rows(
    matrix: sparse.csr_matrix, x: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Multiply rows [lo, hi) of a CSR matrix with x — one loop chunk."""
    if not 0 <= lo <= hi <= matrix.shape[0]:
        raise WorkloadError(f"row range [{lo}, {hi}) out of bounds")
    return matrix[lo:hi] @ x
