"""Real numerical kernels for the real-thread executor and examples.

The discrete-event simulator models *timing*; these are actual numpy
implementations of representative loop bodies from the benchmark suites
(Black-Scholes pricing, EP Gaussian pairs, CG sparse mat-vec, stencil
sweeps, SRAD, BFS, k-means), used to:

* drive the real-`threading` executor (:mod:`repro.exec_real`) with
  genuine work, validating scheduler functional correctness under real
  concurrency, and
* give the examples something real to compute.

They are **not** used by the performance experiments: Python's GIL makes
thread-level timing unrepresentative (documented in DESIGN.md).
"""

from repro.kernels.blackscholes import black_scholes_price
from repro.kernels.ep import ep_gaussian_pairs
from repro.kernels.cg import make_sparse_system, spmv_rows
from repro.kernels.stencil import hotspot_step, jacobi_step
from repro.kernels.srad import srad_coefficients
from repro.kernels.graph import bfs_levels, make_random_graph
from repro.kernels.kmeans import assign_clusters, kmeans_step

__all__ = [
    "black_scholes_price",
    "ep_gaussian_pairs",
    "make_sparse_system",
    "spmv_rows",
    "hotspot_step",
    "jacobi_step",
    "srad_coefficients",
    "make_random_graph",
    "bfs_levels",
    "assign_clusters",
    "kmeans_step",
]
