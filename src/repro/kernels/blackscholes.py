"""Black-Scholes European option pricing (the PARSEC kernel)."""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from repro.errors import WorkloadError


def black_scholes_price(
    spot: np.ndarray,
    strike: np.ndarray,
    rate: float,
    volatility: np.ndarray,
    maturity: np.ndarray,
    call: bool = True,
) -> np.ndarray:
    """Price European options under Black-Scholes.

    Vectorized over option arrays; the real-thread examples slice the
    arrays per loop iteration to mimic PARSEC's per-option loop.

    Args:
        spot: spot prices S.
        strike: strike prices K.
        rate: risk-free rate r.
        volatility: implied volatilities sigma (> 0).
        maturity: times to maturity T in years (> 0).
        call: price calls (True) or puts (False).
    """
    spot = np.asarray(spot, dtype=np.float64)
    strike = np.asarray(strike, dtype=np.float64)
    volatility = np.asarray(volatility, dtype=np.float64)
    maturity = np.asarray(maturity, dtype=np.float64)
    if np.any(volatility <= 0) or np.any(maturity <= 0):
        raise WorkloadError("volatility and maturity must be positive")
    sqrt_t = np.sqrt(maturity)
    d1 = (
        np.log(spot / strike) + (rate + 0.5 * volatility**2) * maturity
    ) / (volatility * sqrt_t)
    d2 = d1 - volatility * sqrt_t
    discount = np.exp(-rate * maturity)
    if call:
        return spot * ndtr(d1) - strike * discount * ndtr(d2)
    return strike * discount * ndtr(-d2) - spot * ndtr(-d1)
