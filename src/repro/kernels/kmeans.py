"""k-means assignment and update steps (Rodinia kmeans style)."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def assign_clusters(
    points: np.ndarray, centers: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Nearest-center assignment for points [lo, hi) — one loop chunk."""
    if points.ndim != 2 or centers.ndim != 2:
        raise WorkloadError("points and centers must be 2-D")
    if points.shape[1] != centers.shape[1]:
        raise WorkloadError("dimension mismatch between points and centers")
    chunk = points[lo:hi]
    d = ((chunk[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return np.argmin(d, axis=1)


def kmeans_step(
    points: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One full k-means iteration (assignment + center update).

    The serial reduction between parallel assignment loops in the kmeans
    workload model corresponds to the center update here.
    """
    labels = assign_clusters(points, centers, 0, len(points))
    new_centers = centers.copy()
    for k in range(len(centers)):
        members = points[labels == k]
        if len(members):
            new_centers[k] = members.mean(axis=0)
    return labels, new_centers
