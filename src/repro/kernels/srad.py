"""SRAD (speckle-reducing anisotropic diffusion) coefficient kernel."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def srad_coefficients(
    image: np.ndarray, lo: int, hi: int, q0_squared: float = 0.05
) -> np.ndarray:
    """Diffusion coefficients for rows [lo, hi) of an image (SRAD v1/v2).

    Implements the classic instantaneous-coefficient-of-variation form:
    directional gradients -> normalized q statistic -> clamped diffusion
    coefficient in [0, 1].
    """
    if image.ndim != 2:
        raise WorkloadError("image must be 2-D")
    if np.any(image <= 0):
        raise WorkloadError("SRAD expects a strictly positive image")
    n = image.shape[0]
    lo = max(0, lo)
    hi = min(n, hi)
    rows = image[lo:hi]
    up = image[np.maximum(np.arange(lo, hi) - 1, 0)]
    down = image[np.minimum(np.arange(lo, hi) + 1, n - 1)]
    left = np.roll(rows, 1, axis=1)
    right = np.roll(rows, -1, axis=1)
    grad2 = (
        (up - rows) ** 2 + (down - rows) ** 2
        + (left - rows) ** 2 + (right - rows) ** 2
    ) / rows**2
    laplacian = (up + down + left + right - 4 * rows) / rows
    num = 0.5 * grad2 - 0.0625 * laplacian**2
    den = (1.0 + 0.25 * laplacian) ** 2
    q_squared = num / np.maximum(den, 1e-12)
    coeff = 1.0 / (1.0 + (q_squared - q0_squared) / (q0_squared * (1 + q0_squared)))
    return np.clip(coeff, 0.0, 1.0)
