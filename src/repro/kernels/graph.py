"""Graph kernels (Rodinia bfs style), built on networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import WorkloadError


def make_random_graph(n_nodes: int, avg_degree: float = 4.0, seed: int = 0):
    """A connected random graph, the bfs workload's input."""
    if n_nodes <= 1:
        raise WorkloadError("need at least two nodes")
    p = min(1.0, avg_degree / max(1, n_nodes - 1))
    g = nx.gnp_random_graph(n_nodes, p, seed=seed)
    # Stitch components together so BFS reaches everything.
    components = [list(c) for c in nx.connected_components(g)]
    rng = np.random.default_rng(seed)
    for a, b in zip(components, components[1:]):
        g.add_edge(int(rng.choice(a)), int(rng.choice(b)))
    return g


def bfs_levels(graph, source: int = 0) -> dict[int, int]:
    """BFS level of every node — the quantity Rodinia's bfs computes.

    The frontier expansion (processing the nodes of one level) is the
    parallel loop; this reference implementation is used to validate the
    chunk-parallel version in the examples.
    """
    if source not in graph:
        raise WorkloadError(f"source {source} not in graph")
    return dict(nx.single_source_shortest_path_length(graph, source))


def expand_frontier(graph, frontier: list[int], visited: set[int]) -> list[int]:
    """One parallelizable frontier expansion: neighbours of ``frontier``
    not yet visited (duplicates removed, deterministic order)."""
    seen: set[int] = set()
    out: list[int] = []
    for node in frontier:
        for nb in graph.neighbors(node):
            if nb not in visited and nb not in seen:
                seen.add(nb)
                out.append(nb)
    return out
