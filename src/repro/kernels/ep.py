"""NAS EP: Gaussian pairs by the Marsaglia polar / Box-Muller method."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def ep_gaussian_pairs(
    n_pairs: int, seed: int
) -> tuple[int, np.ndarray]:
    """Generate Gaussian deviates and tally them into annuli, NAS-EP style.

    Draws uniform pairs, accepts those inside the unit circle, transforms
    them to independent Gaussians, and counts how many pairs land in each
    integer annulus ``max(|x|, |y|) in [k, k+1)`` — the quantity EP sums
    across the whole iteration space.

    Returns:
        ``(accepted_count, counts)`` with ``counts`` of length 10.
    """
    if n_pairs <= 0:
        raise WorkloadError("n_pairs must be positive")
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.0, 1.0, n_pairs)
    y = rng.uniform(-1.0, 1.0, n_pairs)
    t = x * x + y * y
    ok = (t > 0.0) & (t <= 1.0)
    x, y, t = x[ok], y[ok], t[ok]
    factor = np.sqrt(-2.0 * np.log(t) / t)
    gx, gy = x * factor, y * factor
    radius = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
    counts = np.bincount(np.clip(radius, 0, 9), minlength=10)
    return int(ok.sum()), counts
