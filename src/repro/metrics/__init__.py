"""Result metrics and aggregation used by the experiment harnesses."""

from repro.metrics.stats import (
    geometric_mean,
    normalized_performance,
    relative_gain,
    summarize_gains,
)
from repro.metrics.imbalance import load_imbalance, thread_utilization

__all__ = [
    "geometric_mean",
    "normalized_performance",
    "relative_gain",
    "summarize_gains",
    "load_imbalance",
    "thread_utilization",
]
