"""Performance statistics, following the paper's reporting conventions.

The paper reports *normalized performance* — baseline completion time
divided by a scheme's completion time, so higher is better and the
baseline (static(SB) in Figs. 6/7) sits at 1.0 — and summarizes each AID
variant against the method it replaces with the arithmetic mean and the
geometric mean of per-program relative gains (Table 2).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ExperimentError


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ExperimentError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ExperimentError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized_performance(baseline_time: float, time: float) -> float:
    """Performance relative to a baseline (1.0 = baseline, 2.0 = twice as
    fast)."""
    if baseline_time <= 0 or time <= 0:
        raise ExperimentError("completion times must be positive")
    return baseline_time / time


def relative_gain(reference_time: float, time: float) -> float:
    """Relative performance improvement over a reference, as a fraction.

    +0.15 means the scheme is 15% faster than the reference (i.e. the
    paper's "AID-static vs static(BS): 14.98%" style numbers); negative
    means slower.
    """
    if reference_time <= 0 or time <= 0:
        raise ExperimentError("completion times must be positive")
    return reference_time / time - 1.0


def summarize_gains(
    times: Mapping[str, float], reference: Mapping[str, float]
) -> dict[str, float]:
    """Mean and geometric-mean relative gain across programs (Table 2).

    Args:
        times: per-program completion times of the evaluated scheme.
        reference: per-program completion times of the reference scheme;
            must cover the same programs.

    Returns:
        ``{"mean": ..., "gmean": ...}`` as fractions (0.15 = +15%).
        The gmean is computed over the per-program speedup ratios then
        converted back to a gain, matching the paper's Table 2.
    """
    if set(times) != set(reference):
        raise ExperimentError(
            "evaluated and reference schemes cover different program sets"
        )
    if not times:
        raise ExperimentError("no programs to summarize")
    ratios = [reference[name] / times[name] for name in times]
    mean_gain = sum(r - 1.0 for r in ratios) / len(ratios)
    gmean_gain = geometric_mean(ratios) - 1.0
    return {"mean": mean_gain, "gmean": gmean_gain}
