"""Load-imbalance metrics over loop executions."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExperimentError
from repro.obs.timeseries import utilization
from repro.runtime.executor import LoopResult


def load_imbalance(result: LoopResult) -> float:
    """Relative imbalance of one loop execution: (max - min)/max of
    per-thread busy time; 0 is perfectly balanced."""
    return result.imbalance


def thread_utilization(result: LoopResult) -> list[float]:
    """Per-thread busy fraction of the loop's wall time.

    1.0 for the thread that finished last; lower values expose barrier
    wait (the idle big cores of the paper's Fig. 1a). Uses the same
    busy/span definition as the ``core_utilization`` sampler in
    :mod:`repro.obs.timeseries`, so the scalar metric and the
    time-resolved lanes can be cross-checked against each other."""
    span = result.duration
    if span <= 0:
        raise ExperimentError("loop has zero duration")
    return [
        utilization(t - result.start_time, span) for t in result.finish_times
    ]


def mean_imbalance(results: Sequence[LoopResult]) -> float:
    """Average imbalance across many loop executions."""
    if not results:
        raise ExperimentError("no loop results")
    return sum(r.imbalance for r in results) / len(results)
