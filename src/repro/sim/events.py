"""Event queue with deterministic tie-breaking.

Events that fire at the same virtual time are delivered in insertion order
(FIFO). This matters for reproducibility: the AID schedulers' behaviour
depends on which thread reaches the shared iteration pool first, so ties
must be broken identically on every run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class Event:
    """A scheduled simulator event.

    Attributes:
        time: absolute virtual time at which the event fires.
        seq: insertion sequence number, used to break time ties.
        action: zero-argument callable executed when the event fires.
        tag: optional label used for debugging and trace correlation.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    tag: str = field(default="", compare=False)

    def sort_key(self) -> tuple[float, int]:
        return (self.time, self.seq)


class EventQueue:
    """Priority queue of :class:`Event` ordered by ``(time, seq)``.

    Cancellation is supported by marking entries dead rather than removing
    them from the heap (the standard heapq idiom).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._dead: set[int] = set()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < 0.0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        seq = next(self._counter)
        ev = Event(time=time, seq=seq, action=action, tag=tag)
        heapq.heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def cancel(self, event: Event) -> None:
        """Mark a previously pushed event as cancelled.

        Cancelling an event twice, or cancelling an already-fired event,
        raises :class:`~repro.errors.SimulationError`.
        """
        if event.seq in self._dead:
            raise SimulationError(f"event {event!r} already cancelled")
        self._dead.add(event.seq)
        self._live -= 1
        if self._live < 0:
            raise SimulationError("cancelled more events than were scheduled")

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            _, seq, ev = heapq.heappop(self._heap)
            if seq in self._dead:
                self._dead.discard(seq)
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping."""
        while self._heap:
            time, seq, _ = self._heap[0]
            if seq in self._dead:
                heapq.heappop(self._heap)
                self._dead.discard(seq)
                continue
            return time
        return None


class Simulator:
    """Drives an :class:`EventQueue` against a :class:`VirtualClock`.

    This is a convenience wrapper used by the runtime layer; nothing in it
    is scheduling-policy specific.
    """

    def __init__(self, clock: Any = None) -> None:
        from repro.sim.clock import VirtualClock

        self.clock = clock if clock is not None else VirtualClock()
        self.queue = EventQueue()
        self._steps = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def steps(self) -> int:
        """Number of events executed so far."""
        return self._steps

    def at(self, time: float, action: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time!r} < {self.clock.now!r})"
            )
        return self.queue.push(time, action, tag)

    def after(self, delay: float, action: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.queue.push(self.clock.now + delay, action, tag)

    def run(self, max_events: int = 0) -> int:
        """Run events until the queue drains.

        Args:
            max_events: safety bound; 0 means unbounded. Exceeding the bound
                raises :class:`~repro.errors.SimulationError` (it normally
                indicates a livelocked scheduling policy).

        Returns:
            The number of events executed during this call.
        """
        executed = 0
        while True:
            ev = self.queue.pop()
            if ev is None:
                return executed
            self.clock.advance_to(ev.time)
            ev.action()
            executed += 1
            self._steps += 1
            if max_events and executed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; "
                    "likely a livelocked scheduler"
                )
