"""Virtual time source for the discrete-event simulator."""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically non-decreasing virtual clock.

    Time is a float measured in seconds of simulated execution. The clock
    only moves forward; attempting to rewind it raises
    :class:`~repro.errors.SimulationError`, which catches event-ordering
    bugs early.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock to absolute time ``t`` (must not be in the past)."""
        if t < self._now:
            raise SimulationError(
                f"cannot rewind clock from {self._now!r} to {t!r}"
            )
        self._now = float(t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds (must be >= 0)."""
        if dt < 0.0:
            raise SimulationError(f"cannot advance clock by negative delta {dt!r}")
        self._now += float(dt)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now!r})"
