"""Deterministic discrete-event simulation core.

This package provides the timing substrate on which the OpenMP-like runtime
executes: a virtual clock, an event queue with deterministic tie-breaking,
and reproducible per-component random streams.

The simulator is intentionally minimal — parallel-loop execution only needs
"thread becomes ready at time t" events — but it is written as a
general-purpose DES so the runtime layer stays independent of scheduling
policy internals.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.rng import RngStreams, stable_seed

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "VirtualClock",
    "RngStreams",
    "stable_seed",
]
