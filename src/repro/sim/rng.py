"""Reproducible random-stream management.

Workload cost noise must be identical across scheduler runs (otherwise
scheduler comparisons would be confounded by different workloads) and
across processes (so tests can assert exact completion times). We derive
independent :class:`numpy.random.Generator` streams from stable string
keys using SHA-256, never from global state.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from a tuple of parts, stably across runs.

    Parts are converted with ``str``; prefer primitive values (strings,
    ints) whose ``str`` form is stable.
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory of named, independent random generators.

    Example:
        >>> streams = RngStreams(root_seed=7)
        >>> g1 = streams.get("loop", 3, "costs")
        >>> g2 = streams.get("loop", 4, "costs")
        >>> g1 is not g2
        True

    Asking twice for the same key returns a *fresh* generator with the same
    seed, so replaying a stream is as simple as calling :meth:`get` again.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def seed_for(self, *key: object) -> int:
        """The derived seed for a key (useful for debugging)."""
        return stable_seed(self.root_seed, *key)

    def get(self, *key: object) -> np.random.Generator:
        """Return a fresh generator deterministically derived from ``key``."""
        return np.random.default_rng(self.seed_for(*key))
