"""Extension — energy and EDP per scheduling policy (see
repro.experiments.energy; not a paper figure, but the paper's motivating
metric).

Expected shape: AID methods deliver their speedups at roughly equal
energy (same cores busy, less barrier spinning and less runtime
overhead), so their energy-delay product drops markedly; dynamic's
dispatch storms cost real joules on fine-grained programs.
"""

from repro.experiments import energy

from benchmarks.conftest import run_once


def test_energy_extension(benchmark):
    result = run_once(benchmark, energy.run)
    print()
    print(energy.format_report(result))
    base = "static(SB)"
    for program in result.cells:
        # AID-static never costs more than ~12% extra energy...
        assert result.normalized_energy(program, "AID-static", base) < 1.12, program
        # ...and clearly wins on EDP.
        assert result.normalized_edp(program, "AID-static", base) < 0.90, program
    # dynamic's dispatch overhead costs energy on the fine-grained programs.
    for program in ("CG", "IS"):
        assert result.normalized_energy(program, "dynamic(SB)", base) > 1.15
