"""Fig. 8 — chunk-sensitivity of dynamic vs AID-dynamic on Platform A.

Paper claims: larger dynamic chunks degrade several programs (BT, FT,
leukocyte) through end-of-loop imbalance; AID-dynamic is far less
sensitive to its Major chunk thanks to the endgame switch; comparing
best-explored-chunk settings, AID-dynamic improves on dynamic by up to
21.9% and 5.5% on average.
"""

from repro.experiments import fig8

from benchmarks.conftest import run_once


def test_fig8_chunk_sensitivity(benchmark):
    result = run_once(benchmark, fig8.run)
    print()
    print(fig8.format_report(result))

    # Dynamic is visibly chunk-sensitive for the classic victims.
    for prog in ("BT", "FT", "leukocyte"):
        dyn = [result.normalized[prog][f"dynamic/{c}"] for c in fig8.DYNAMIC_CHUNKS]
        assert max(dyn) / min(dyn) > 1.03, prog

    # AID-dynamic is less sensitive to its Major chunk than dynamic is to
    # its chunk, averaged over the figure's programs.
    def spread(prefix, keys):
        spreads = []
        for prog, row in result.normalized.items():
            vals = [row[f"{prefix}{k}"] for k in keys]
            spreads.append(max(vals) / min(vals))
        return sum(spreads) / len(spreads)

    dyn_spread = spread("dynamic/", fig8.DYNAMIC_CHUNKS)
    aid_spread = spread(
        "AID-dynamic/", [f"({m},{M})" for m, M in fig8.AID_DYNAMIC_CHUNKS]
    )
    assert aid_spread < dyn_spread

    # Best-chunk comparison (paper: mean +5.5%, up to +21.9%).
    assert -0.02 <= result.mean_best_gain <= 0.20
    assert result.max_best_gain <= 0.35
