"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures
(see DESIGN.md's experiment index), prints the reproduced rows/series
next to the paper's values, and asserts the qualitative *shape* — who
wins, by roughly what factor — rather than absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import fig67


@pytest.fixture(scope="session")
def fig67_grids():
    """The Fig. 6 + Fig. 7 grids, shared by several benches."""
    return fig67.run()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
