"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures
(see DESIGN.md's experiment index), prints the reproduced rows/series
next to the paper's values, and asserts the qualitative *shape* — who
wins, by roughly what factor — rather than absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only

Benches routed through :func:`run_once` additionally drop a
machine-readable ``BENCH_<name>.json`` next to the repo root (or into
``$BENCH_RESULTS_DIR``): per (scheme, platform) the completion time and
the normalized performance, in the canonical payload format of
:mod:`repro.obs.snapshot` — the same ``normalized_performance`` the
figures use, so the JSON can never disagree with the printed tables.

The shared Fig. 6/7 grids run through :mod:`repro.fleet`: cells are
cached content-addressed under ``.fleet-cache/`` (or
``$FLEET_CACHE_DIR``), so a warm rerun of the figure benches skips all
simulation work, and ``FLEET_JOBS=N`` fans the cold run out over N
worker processes. ``FLEET_NO_CACHE=1`` forces recomputation. Cached or
parallel, the grids are cell-for-cell identical to serial runs — the
simulator is deterministic.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import fig67
from repro.experiments.fig67 import Fig67Result
from repro.experiments.harness import GridResult
from repro.fleet import FleetProgress, ResultCache
from repro.obs import trajectory as obs_trajectory
from repro.obs.snapshot import grid_payload, to_json


@pytest.fixture(scope="session")
def fleet_progress():
    """Fleet counters for the whole bench session (cache hits etc.)."""
    return FleetProgress()


@pytest.fixture(scope="session")
def fig67_grids(fleet_progress):
    """The Fig. 6 + Fig. 7 grids, shared by several benches.

    Besides the grids themselves, the run leaves two observatory
    artifacts next to the BENCH JSON: ``OBS_SNAPSHOT_fig67.json`` (the
    merged fleet-level metrics snapshot — fleet counters plus every
    cell's worker-side capture) and a trajectory record with the fleet
    cache-hit rate and total runtime-overhead seconds.
    """
    jobs = int(os.environ.get("FLEET_JOBS", "1") or "1")
    cache = None if os.environ.get("FLEET_NO_CACHE") else ResultCache()
    t0 = time.perf_counter()
    result = fig67.run(jobs=jobs, cache=cache, progress=fleet_progress)
    elapsed = time.perf_counter() - t0
    print("\n" + fleet_progress.format_summary())
    out = bench_results_dir()
    out.mkdir(parents=True, exist_ok=True)
    snapshot = fleet_progress.obs_snapshot(meta={"grids": "fig67", "jobs": jobs})
    (out / "OBS_SNAPSHOT_fig67.json").write_text(
        to_json(snapshot), encoding="utf-8"
    )
    metrics = obs_trajectory.snapshot_metrics(snapshot)
    metrics["wall_clock_seconds"] = elapsed
    trajectory_store().append("fleet:fig67", metrics, meta={"jobs": jobs})
    return result


def trajectory_store() -> obs_trajectory.TrajectoryStore:
    """The bench session's run-over-run history (next to the BENCH
    JSON unless ``$OBS_TRAJECTORY`` overrides the location)."""
    override = os.environ.get(obs_trajectory.ENV_VAR)
    if override:
        return obs_trajectory.TrajectoryStore(override)
    return obs_trajectory.TrajectoryStore(
        bench_results_dir() / obs_trajectory.DEFAULT_FILENAME
    )


def payload_for(result) -> dict | None:
    """Machine-readable payload for a bench result, if one is derivable.

    Grids map to the canonical (scheme, platform, completion time,
    normalized performance) rows; unknown result types return None and
    no JSON is written.
    """
    if isinstance(result, GridResult):
        return {"grids": [grid_payload(result)]}
    if isinstance(result, Fig67Result):
        return {
            "grids": [
                grid_payload(result.platform_a),
                grid_payload(result.platform_b),
            ]
        }
    return None


def bench_results_dir() -> Path:
    """Where BENCH_*.json files land (repo root unless overridden)."""
    override = os.environ.get("BENCH_RESULTS_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one benchmark's payload as ``BENCH_<name>.json``."""
    doc = {"schema": "repro.bench/v1", "bench": name, **payload}
    out = bench_results_dir()
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    When the result maps to a known payload shape, also emit
    ``BENCH_<name>.json`` (name = the test's name sans ``test_``).
    Every routed bench — payload or not — appends a trajectory record
    (at minimum its wall clock; grids add their headline speedups), so
    a single tier-1 bench run is enough to seed the perf-regression
    observatory's history instead of leaving it empty.
    """
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0
    name = benchmark.name.removeprefix("test_")
    metrics: dict = {}
    payload = payload_for(result)
    if payload is not None:
        write_bench_json(name, payload)
        metrics = obs_trajectory.bench_metrics(payload) or {}
    metrics["wall_clock_seconds"] = elapsed
    trajectory_store().append(f"bench:{name}", metrics)
    return result
