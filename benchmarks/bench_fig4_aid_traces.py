"""Fig. 4 — EP traces under AID-static and AID-hybrid (80%), 8 threads.

Paper claim: AID-static's one-shot distribution leaves EP's small-core
threads finishing early (the sampled SF is not representative of the
whole loop); AID-hybrid's dynamic tail fixes it, delivering a 10.5%
improvement over AID-static.
"""

from repro.experiments import fig4

from benchmarks.conftest import run_once


def test_fig4_aid_traces(benchmark):
    result = run_once(benchmark, fig4.run)
    print()
    print(fig4.format_report(result))
    # Shape: hybrid clearly ahead, in the ballpark of the paper's 10.5%.
    assert 0.03 <= result.hybrid_gain <= 0.20
