"""Table 2 — mean/gmean relative gains of the AID variants.

Paper values (mean / gmean):

    AID-static  vs static(BS):  A: 14.98% / 13.54%   B: 15.93% / 14.64%
    AID-hybrid  vs static(BS):  A: 27.55% / 22.67%   B: 20.08% / 16.06%
    AID-dynamic vs dynamic(BS): A:  3.12% /  2.81%   B: 22.34% / 16.00%

Shape claims checked: every row positive (each AID variant improves on
the method it replaces, on average); hybrid > static on both platforms;
AID-dynamic's average gain is larger on Platform B than on Platform A
(lower SFs make dynamic's overhead relatively more damaging there).
"""

from repro.experiments import table2

from benchmarks.conftest import run_once


def test_table2_summary(benchmark, fig67_grids):
    result = run_once(benchmark, table2.run, fig67=fig67_grids)
    print()
    print(table2.format_report(result))

    a = result.gains["Platform A"]
    b = result.gains["Platform B"]
    for rows in (a, b):
        for stats in rows.values():
            assert stats["mean"] > 0.0
            assert stats["gmean"] > 0.0
            assert stats["gmean"] <= stats["mean"] + 1e-9

    # Hybrid beats plain AID-static on average (its dynamic tail mops up
    # SF-estimation error).
    assert (
        a[("AID-hybrid", "static(BS)")]["mean"]
        > a[("AID-static", "static(BS)")]["mean"]
    )

    # Magnitudes in the paper's ballpark.
    assert 0.08 <= a[("AID-static", "static(BS)")]["mean"] <= 0.30
    assert 0.15 <= a[("AID-hybrid", "static(BS)")]["mean"] <= 0.40
    assert 0.08 <= b[("AID-static", "static(BS)")]["mean"] <= 0.30

    # The platform asymmetry of AID-dynamic's benefit (paper: 3.1% on A
    # vs 22.3% on B).
    assert (
        b[("AID-dynamic", "dynamic(BS)")]["mean"]
        > a[("AID-dynamic", "dynamic(BS)")]["mean"]
    )
