"""Fig. 9 — impact of SF-estimation inaccuracies.

Paper claims: (a, b) AID-static performs within ~3% of the offline-SF
variant for most programs on both platforms; (c) blackscholes on
Platform A inverts — offline single-thread SFs (~4.5) wildly
overestimate the contended 8-thread reality (~1.5), so distributing by
them overloads the big-core threads and online sampling clearly wins.
"""

from repro.experiments import fig9

from benchmarks.conftest import run_once


def test_fig9_offline_sf(benchmark):
    result = run_once(benchmark, fig9.run)
    print()
    print(fig9.format_report(result))

    # (a, b): within a few percent for most programs.
    for platform_name, rows in result.times.items():
        gaps = [
            abs(t_off / t_on - 1.0)
            for prog, (t_on, t_off) in rows.items()
            if prog != "blackscholes"
        ]
        within = sum(1 for g in gaps if g < 0.05)
        assert within >= 0.7 * len(gaps), (platform_name, gaps)

    # (c): the blackscholes inversion on Platform A.
    plat_a = next(k for k in result.times if "Odroid" in k)
    assert result.gain_of_online(plat_a, "blackscholes") > 0.05

    # Estimated SFs are far below the offline-gathered value.
    assert result.estimated_sf_series
    assert result.offline_sf_value > 2.5
    assert max(result.estimated_sf_series) < result.offline_sf_value * 0.7
