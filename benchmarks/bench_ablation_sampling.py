"""Ablation — AID sampling-chunk size.

The paper samples with chunk 1 (one iteration per thread). Larger
sampling chunks average more iterations (less SF noise) but delay the
asymmetric distribution and execute more of the loop sub-optimally.
This bench sweeps the sampling chunk for AID-static across a noisy-cost
program and reports the trade-off.
"""

from repro.experiments.harness import ScheduleConfig, run_grid
from repro.amp.presets import odroid_xu4
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

from benchmarks.conftest import run_once

CHUNKS = (1, 2, 4, 8, 16)
PROGRAMS = ("EP", "streamcluster", "hotspot3D", "MG")


def run_sweep():
    configs = [
        ScheduleConfig(
            f"aid_static/{c}", OmpEnv(schedule=f"aid_static,{c}", affinity="BS")
        )
        for c in CHUNKS
    ]
    grid = run_grid(
        odroid_xu4(),
        programs=[get_program(p) for p in PROGRAMS],
        configs=configs,
    )
    return grid


def test_ablation_sampling_chunk(benchmark):
    grid = run_once(benchmark, run_sweep)
    print()
    print("Ablation: AID-static sampling chunk (completion time, ms)")
    for prog, row in grid.times.items():
        cells = "  ".join(
            f"c={c}: {row[f'aid_static/{c}'] * 1e3:7.2f}" for c in CHUNKS
        )
        print(f"  {prog:14s} {cells}")
    # The paper's default (chunk 1) must be within a few percent of the
    # best explored setting for every program — i.e. a safe default.
    for prog, row in grid.times.items():
        best = min(row.values())
        assert row["aid_static/1"] <= best * 1.08, prog
