"""Ablation — SB vs BS pinning and its interaction with serial phases.

The paper isolates the master-on-big effect by running static and
dynamic under both conventions. This bench quantifies the BS/SB gap per
program and verifies it tracks the program's serial fraction.
"""

from repro.amp.presets import odroid_xu4
from repro.experiments.harness import ScheduleConfig, run_grid
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

from benchmarks.conftest import run_once

PROGRAMS = ("EP", "bptree", "blackscholes", "streamcluster", "IS")


def run_sweep():
    configs = (
        ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB")),
        ScheduleConfig("static(BS)", OmpEnv(schedule="static", affinity="BS")),
    )
    return run_grid(
        odroid_xu4(),
        programs=[get_program(p) for p in PROGRAMS],
        configs=configs,
    )


def test_ablation_affinity(benchmark):
    grid = run_once(benchmark, run_sweep)
    print()
    print("Ablation: BS-over-SB gain under static vs serial fraction")
    gains = {}
    for prog in PROGRAMS:
        program = get_program(prog)
        serial_frac = program.serial_work / (
            program.serial_work + program.parallel_work
        )
        gain = grid.time(prog, "static(SB)") / grid.time(prog, "static(BS)") - 1
        gains[prog] = (serial_frac, gain)
        print(f"  {prog:14s} serial fraction {serial_frac:5.1%}  BS gain {gain:+.1%}")
    # Serial-dominated bptree gains the most from BS; loop-only EP and
    # streamcluster gain the least (paper Sec. 5A).
    assert gains["bptree"][1] > gains["blackscholes"][1] > gains["EP"][1]
    assert gains["bptree"][1] > 0.5
    # EP has no serial phase; its small residual BS gain comes from the
    # interaction of its cost drift with the contiguous static blocks.
    assert abs(gains["EP"][1]) < 0.2
