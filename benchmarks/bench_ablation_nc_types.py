"""Ablation — the NC >= 2 core-type generalization.

The paper describes how AID extends to platforms with more than two core
types (per-type SF_j and k = NI / sum N_j * SF_j). This bench runs the
schedule grid on a three-type platform and checks AID still wins.
"""

from repro.amp.presets import tri_type_platform
from repro.experiments.harness import default_configs, run_grid
from repro.workloads.registry import get_program

from benchmarks.conftest import run_once

PROGRAMS = ("EP", "streamcluster", "MG", "bodytrack")


def run_sweep():
    return run_grid(
        tri_type_platform(),
        programs=[get_program(p) for p in PROGRAMS],
    )


def test_ablation_three_core_types(benchmark):
    grid = run_once(benchmark, run_sweep)
    print()
    print(grid.to_table())
    norm = grid.normalized()
    for prog, row in norm.items():
        # AID-static must still beat static(BS) on a tri-type platform.
        assert row["AID-static"] >= row["static(BS)"] * 0.98, prog
        # And AID-dynamic must stay competitive with dynamic(BS).
        assert row["AID-dynamic"] >= row["dynamic(BS)"] * 0.95, prog
    # At least one program shows a clear AID win over static.
    best = max(row["AID-static"] / row["static(BS)"] for row in norm.values())
    assert best > 1.1
