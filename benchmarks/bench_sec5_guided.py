"""Sec. 5 (intro) — guided scheduling aggregates.

Paper claims: guided increases completion time by 44% vs static and 65%
vs dynamic on average, and never outperforms both for any program.

Our clean work-conserving timing model reproduces the *ordering* claims
— guided is clearly worse than dynamic on average and essentially never
beats both — but not the +44%-worse-than-static magnitude, which in the
paper's measurements likely stems from cache effects beyond our
locality model (see EXPERIMENTS.md).
"""

from repro.experiments import guided

from benchmarks.conftest import run_once


def test_sec5_guided(benchmark):
    result = run_once(benchmark, guided.run)
    print()
    print(guided.format_report(result))
    for plat in result.mean_increase_vs_dynamic:
        # Clearly worse than dynamic on average.
        assert result.mean_increase_vs_dynamic[plat] > 0.04, plat
        # Not better than static on average.
        assert result.mean_increase_vs_static[plat] > -0.05, plat
        # Beats both static and dynamic for at most one program
        # (paper: none; ours: particlefilter ties within noise).
        assert len(result.beats_both[plat]) <= 1, result.beats_both[plat]
