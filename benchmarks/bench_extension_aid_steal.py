"""Extension — AID + work stealing (the Sec. 4.3 combination).

Shape claims: AID-steal matches AID-hybrid on regular loops (both repair
one-shot error, stealing is not worse), clearly beats plain AID-static
on programs whose sampled SF misleads (drift/ramps), and touches the
shared pool only O(threads) times per loop.
"""

from repro.amp.presets import odroid_xu4
from repro.experiments.harness import ScheduleConfig, run_grid
from repro.runtime.env import OmpEnv

from benchmarks.conftest import run_once

CONFIGS = (
    ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB")),
    ScheduleConfig("AID-static", OmpEnv(schedule="aid_static", affinity="BS")),
    ScheduleConfig("AID-hybrid", OmpEnv(schedule="aid_hybrid,80", affinity="BS")),
    ScheduleConfig("AID-steal", OmpEnv(schedule="aid_steal,8", affinity="BS")),
)


def run_sweep():
    return run_grid(odroid_xu4(), configs=CONFIGS)


def test_extension_aid_steal(benchmark):
    grid = run_once(benchmark, run_sweep)
    print()
    print(grid.to_table())
    norm = grid.normalized("static(SB)")
    wins = losses = 0
    for program, row in norm.items():
        ratio = row["AID-steal"] / row["AID-static"]
        if ratio > 1.02:
            wins += 1
        if ratio < 0.95:
            losses += 1
    print(f"\nAID-steal vs AID-static: clearly better for {wins} programs,"
          f" clearly worse for {losses}")
    # Stealing repairs what the one-shot split gets wrong, and must not
    # lose meaningfully anywhere.
    assert wins >= 4
    assert losses <= 1
    # The headline repair case: EP's drifting costs (the Fig. 4 subject).
    assert norm["EP"]["AID-steal"] > norm["EP"]["AID-static"] * 1.05
    # And it stays within a few percent of AID-hybrid on average.
    mean_vs_hybrid = sum(
        row["AID-steal"] / row["AID-hybrid"] for row in norm.values()
    ) / len(norm)
    assert mean_vs_hybrid > 0.93
