"""Ablation — runtime-overhead sensitivity.

Scales every runtime cost (dispatch, atomic service, barrier, ...) from
0x to 4x and measures how each schedule family degrades. The paper's
qualitative claim — dynamic's viability hinges on dispatch cost while
AID barely notices — falls out directly.
"""

from repro.amp.presets import odroid_xu4
from repro.perfmodel.overhead import OverheadModel
from repro.experiments.harness import ScheduleConfig, run_grid
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

from benchmarks.conftest import run_once

SCALES = (0.0, 1.0, 4.0)
PROGRAM = "CG"  # the paper's most overhead-sensitive program


def run_sweep():
    configs = (
        ScheduleConfig("dynamic(BS)", OmpEnv(schedule="dynamic,1", affinity="BS")),
        ScheduleConfig("AID-static", OmpEnv(schedule="aid_static", affinity="BS")),
        ScheduleConfig(
            "AID-dynamic", OmpEnv(schedule="aid_dynamic,1,5", affinity="BS")
        ),
    )
    out = {}
    for scale in SCALES:
        grid = run_grid(
            odroid_xu4(),
            programs=[get_program(PROGRAM)],
            configs=configs,
            overhead=OverheadModel().scaled(scale),
        )
        out[scale] = grid.times[PROGRAM]
    return out


def test_ablation_overhead_scaling(benchmark):
    times = run_once(benchmark, run_sweep)
    print()
    print(f"Ablation: runtime-overhead scaling on {PROGRAM} (completion, ms)")
    for scale, row in times.items():
        cells = "  ".join(f"{k}: {v * 1e3:7.2f}" for k, v in row.items())
        print(f"  {scale:3.1f}x  {cells}")

    def degradation(label):
        return times[4.0][label] / times[0.0][label]

    # dynamic's completion time explodes with overhead; AID-static barely
    # moves; AID-dynamic sits in between but well below dynamic.
    assert degradation("dynamic(BS)") > 2.0
    assert degradation("AID-static") < 1.3
    assert degradation("AID-dynamic") < degradation("dynamic(BS)") / 1.5
