"""Ablation — AID-dynamic's per-phase ratio resmoothing.

After every AID phase, R is multiplied by SM = (mean small-thread phase
time) / (mean big-thread phase time), so a ratio that over- or under-fed
big cores corrects itself. This bench freezes R at the initially sampled
SF and measures the cost across programs whose per-loop behaviour drifts.
"""

from repro.amp.presets import odroid_xu4
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.sched.aid_dynamic import AidDynamicSpec
from repro.workloads.registry import get_program

from benchmarks.conftest import run_once

PROGRAMS = ("EP", "FT", "bodytrack", "leukocyte", "particlefilter")


def run_sweep():
    platform = odroid_xu4()
    out = {}
    for prog_name in PROGRAMS:
        program = get_program(prog_name)
        for smoothing in (True, False):
            runner = ProgramRunner(
                platform,
                OmpEnv(schedule="aid_dynamic,1,5", affinity="BS"),
                schedule_override=AidDynamicSpec(1, 5, smoothing=smoothing),
            )
            out[(prog_name, smoothing)] = runner.run(program).completion_time
    return out


def test_ablation_smoothing(benchmark):
    times = run_once(benchmark, run_sweep)
    print()
    print("Ablation: AID-dynamic R resmoothing (completion time, ms)")
    gains = []
    for prog in PROGRAMS:
        on = times[(prog, True)] * 1e3
        off = times[(prog, False)] * 1e3
        gains.append(off / on - 1)
        print(
            f"  {prog:16s} smoothing {on:8.2f}  frozen-R {off:8.2f}"
            f"  ({off / on - 1:+.1%})"
        )
    # Smoothing must never hurt meaningfully, and help on average.
    assert min(gains) > -0.04
    assert sum(gains) / len(gains) > -0.01
