"""Extension — AID-auto vs the fixed AID variants (Sec. 6 future work).

The paper: "we expect that further benefits can be obtained on AMPs by
applying AID-static or AID-hybrid to loops where iterations have the
same amount of work, and AID-dynamic to the remaining loops". AID-auto
makes that decision per loop from the sampling phase. The bench runs the
full 21-program suite on Platform A and checks the selection pays: per
program, AID-auto lands within a few percent of the better of
AID-hybrid/AID-dynamic — without anyone telling it which loop is which.
"""

from repro.amp.presets import odroid_xu4
from repro.experiments.harness import ScheduleConfig, run_grid
from repro.runtime.env import OmpEnv

from benchmarks.conftest import run_once

CONFIGS = (
    ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB")),
    ScheduleConfig("AID-hybrid", OmpEnv(schedule="aid_hybrid,80", affinity="BS")),
    ScheduleConfig("AID-dynamic", OmpEnv(schedule="aid_dynamic,1,5", affinity="BS")),
    ScheduleConfig("AID-auto", OmpEnv(schedule="aid_auto,1,5", affinity="BS")),
)


def run_sweep():
    return run_grid(odroid_xu4(), configs=CONFIGS)


def test_extension_aid_auto(benchmark):
    grid = run_once(benchmark, run_sweep)
    print()
    print(grid.to_table())
    norm = grid.normalized("static(SB)")
    shortfalls = []
    for program, row in norm.items():
        best_fixed = max(row["AID-hybrid"], row["AID-dynamic"])
        shortfalls.append((program, row["AID-auto"] / best_fixed - 1.0))
    worst = min(shortfalls, key=lambda kv: kv[1])
    mean = sum(s for _, s in shortfalls) / len(shortfalls)
    print(f"\nAID-auto vs best fixed AID variant: mean {mean:+.1%}, "
          f"worst {worst[1]:+.1%} ({worst[0]})")
    # Selection quality: on average within 2% of the per-program best
    # fixed variant. The known blind spot is particlefilter: its ramped
    # loop looks perfectly regular to a one-sample-per-thread probe taken
    # at the loop's start (low within-type CV), so AID-auto picks the
    # one-shot path and inherits AID-static's ramp pathology — the same
    # reason the paper defers per-loop classification to compile-time
    # analysis [44] as future work.
    assert mean > -0.02
    assert worst[1] > -0.30
    non_ramp = [s for p, s in shortfalls if p != "particlefilter"]
    assert min(non_ramp) > -0.08
