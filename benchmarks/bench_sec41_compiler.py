"""Sec. 4.1 — the compiler change: nm symbols and the no-overhead check.

Paper claims: vanilla GCC emits no GOMP loop symbols for clause-less
loops; the modified compiler emits the GOMP_loop_runtime_* family for
all of them; recompiled binaries under OMP_SCHEDULE=static show no
noticeable overhead.
"""

from repro.experiments import sec41

from benchmarks.conftest import run_once


def test_sec41_compiler_change(benchmark):
    result = run_once(benchmark, sec41.run)
    print()
    print(sec41.format_report(result))
    assert not any("loop" in s for s in result.vanilla_symbols)
    assert any("loop_runtime_next" in s for s in result.modified_symbols)
    assert result.vanilla_controllable == 0.0
    assert result.modified_controllable == 1.0
    assert abs(result.static_overhead) < 0.02
