"""Sec. 5B — AID-hybrid percentage sensitivity.

Paper claims: dynamic-friendly programs (FT, lavamd, leukocyte,
particlefilter) prefer ~60%; AID-static-friendly programs
(blackscholes) prefer 90% and above; 80% is a good platform-wide
trade-off (used in Figs. 6/7).
"""

from repro.experiments import sec5b

from benchmarks.conftest import run_once


def test_sec5b_hybrid_percentage(benchmark):
    result = run_once(benchmark, sec5b.run)
    print()
    print(sec5b.format_report(result))

    # Dynamic-friendly programs peak at or below 80%.
    for prog in sec5b.DYNAMIC_FRIENDLY:
        assert result.best_percentage(prog) <= 80, prog

    # Static-friendly programs peak at or above 80%.
    for prog in ("blackscholes", "streamcluster"):
        assert result.best_percentage(prog) >= 80, prog

    # 80% is safe: no program loses more than ~12% vs its best setting.
    for prog in result.times:
        best = max(result.normalized(prog).values())
        assert best <= 1.16, prog
