"""Ablation — AID-dynamic's endgame switch (the Fig. 5 optimization).

The runtime switches to dynamic(m) once the pool holds no more than
M * (N_B + N_S) iterations, removing the end-of-loop imbalance that
large Major chunks would otherwise cause. This bench measures
AID-dynamic with and without the switch across Major chunk sizes.
"""

from repro.amp.presets import odroid_xu4
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.sched.aid_dynamic import AidDynamicSpec
from repro.workloads.registry import get_program

from benchmarks.conftest import run_once

MAJORS = (5, 20, 50)
PROGRAMS = ("BT", "FT", "streamcluster")


def run_sweep():
    platform = odroid_xu4()
    out = {}
    for prog_name in PROGRAMS:
        program = get_program(prog_name)
        for M in MAJORS:
            for endgame in (True, False):
                runner = ProgramRunner(
                    platform,
                    OmpEnv(schedule="aid_dynamic,1,5", affinity="BS"),
                    schedule_override=AidDynamicSpec(1, M, endgame=endgame),
                )
                out[(prog_name, M, endgame)] = runner.run(program).completion_time
    return out


def test_ablation_endgame(benchmark):
    times = run_once(benchmark, run_sweep)
    print()
    print("Ablation: AID-dynamic endgame switch (completion time, ms)")
    for prog in PROGRAMS:
        for M in MAJORS:
            on = times[(prog, M, True)] * 1e3
            off = times[(prog, M, False)] * 1e3
            print(
                f"  {prog:14s} M={M:3d}  endgame {on:8.2f}  "
                f"no-endgame {off:8.2f}  ({off / on - 1:+.1%})"
            )
    # With large Major chunks the endgame must help (or at least never
    # hurt beyond noise); averaged over programs it is a clear win.
    gains = [
        times[(p, 50, False)] / times[(p, 50, True)] - 1 for p in PROGRAMS
    ]
    assert min(gains) > -0.03
    assert sum(gains) / len(gains) > 0.0
