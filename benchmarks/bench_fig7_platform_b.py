"""Fig. 7 — normalized performance of all 21 programs on Platform B.

Shape claims (paper Sec. 5A, Platform B discussion): trends mirror
Platform A, but the smaller big-to-small speedups make runtime overhead
relatively more damaging — dynamic slows CG down by more than 1.5x
relative to the baseline (paper: up to 2.86x), and AID-dynamic's
overhead reduction therefore pays off more than on Platform A.
"""


from benchmarks.conftest import run_once


def test_fig7_platform_b(benchmark, fig67_grids):
    grid = run_once(benchmark, lambda: fig67_grids.platform_b)
    print()
    print("Fig. 7 — " + grid.to_table())
    norm = grid.normalized()

    # CG's dynamic collapse is worse on B than "overhead noise": paper
    # reports slowdowns up to 2.86x; we require at least 1.5x.
    assert norm["CG"]["dynamic(SB)"] < 1 / 1.5

    # The same dynamic failure group as on A, more pronounced.
    for prog in ("CG", "IS", "bfs", "nw"):
        assert norm[prog]["dynamic(SB)"] < 1.0, prog

    # AID-dynamic rescues those programs.
    for prog in ("CG", "IS", "nw"):
        gain = norm[prog]["AID-dynamic"] / norm[prog]["dynamic(BS)"]
        assert gain > 1.2, prog

    # AID-static/hybrid still beat static(BS) across the board (modulo
    # particlefilter).
    for prog, row in norm.items():
        if prog == "particlefilter":
            continue
        assert row["AID-static"] >= row["static(BS)"] * 0.95, prog
