"""Fig. 6 — normalized performance of all 21 programs on Platform A.

Shape claims checked (from the paper's Sec. 5A discussion):

* static(BS) >= static(SB) for programs with serial phases; big BS/SB
  gaps for IS, blackscholes, bfs, bptree (master-on-big acceleration);
* particlefilter inverts: static(BS) < static(SB) (its ramped loop gives
  the BS-mapped big cores the cheap front iterations);
* dynamic fails for fine-grained programs (CG, IS, bfs, nw close to or
  below baseline under SB) but wins big for uneven ones (FT, leukocyte,
  lavamd, particlefilter);
* AID-static and AID-hybrid beat static(BS) across the board (except the
  particlefilter pathology, which they inherit);
* AID-dynamic is within a few percent of dynamic(BS) where dynamic is
  good, and clearly better where dynamic's overhead hurts.
"""

from benchmarks.conftest import run_once


def test_fig6_platform_a(benchmark, fig67_grids):
    grid = run_once(benchmark, lambda: fig67_grids.platform_a)
    print()
    print("Fig. 6 — " + grid.to_table())
    norm = grid.normalized()

    # Master-on-big acceleration where serial phases matter.
    for prog in ("IS", "blackscholes", "bfs", "bptree", "hotspot3D"):
        assert norm[prog]["static(BS)"] > 1.25, prog

    # The particlefilter inversion.
    assert norm["particlefilter"]["static(BS)"] < 0.8

    # dynamic's failure cases (overhead-bound under SB).
    for prog in ("CG", "IS", "bfs", "nw"):
        assert norm[prog]["dynamic(SB)"] < 1.10, prog

    # dynamic's wins (uneven iteration costs).
    for prog in ("FT", "leukocyte", "lavamd", "particlefilter"):
        assert norm[prog]["dynamic(BS)"] > 1.25, prog

    # AID-static/hybrid as static replacements: never clearly worse than
    # static(BS) except the documented particlefilter case.
    for prog, row in norm.items():
        if prog == "particlefilter":
            continue
        assert row["AID-static"] >= row["static(BS)"] * 0.95, prog
        assert row["AID-hybrid"] >= row["static(BS)"] * 0.95, prog

    # AID-dynamic as a dynamic replacement: no program loses more than a
    # few percent, several gain substantially.
    losses = [
        row["AID-dynamic"] / row["dynamic(BS)"] - 1 for row in norm.values()
    ]
    assert min(losses) > -0.10
    assert max(losses) > 0.10
