"""Fig. 2 — per-loop big-to-small SF of BT and CG on both platforms.

Paper claims: the SF varies greatly across loops of one application
(ruling out one application-wide value); Platform A's profile differs
substantially from Platform B's; loops run up to ~7.7x faster on a big
core on Platform A while Platform B tops out around 2.3x.
"""

from repro.experiments import fig2

from benchmarks.conftest import run_once


def test_fig2_sf_profiles(benchmark):
    result = run_once(benchmark, fig2.run)
    print()
    print(fig2.format_report(result))
    plat_a = next(k for k in result.series if "Odroid" in k)
    plat_b = next(k for k in result.series if "Xeon" in k)
    # Platform A: high maxima (paper: up to 7.7x for these programs).
    assert 4.0 <= result.max_sf(plat_a) <= 9.5
    # Platform B: capped around the paper's 2.3x.
    assert result.max_sf(plat_b) <= 2.4
    # Variability across loops of one application, on both platforms.
    for plat in (plat_a, plat_b):
        for prog, points in result.series[plat].items():
            sfs = [p.sf for p in points]
            assert max(sfs) / min(sfs) > 1.3, (plat, prog)
