"""Fig. 1 — EP under static with 4 threads: 2B-2S vs 4S traces.

Paper claim: with the static schedule, running EP on two big + two small
cores "delivers nearly the same performance than using four small
cores", because the loop is bounded by the small-core threads while the
big cores idle at the barrier.
"""

from repro.experiments import fig1

from benchmarks.conftest import run_once


def test_fig1_ep_traces(benchmark):
    result = run_once(benchmark, fig1.run)
    print()
    print(fig1.format_report(result))
    # Shape: 4S within ~35% of 2B-2S (paper: nearly identical), and big
    # cores spend a large fraction of the loop waiting at the barrier.
    ratio = result.time_4s / result.time_2b2s
    assert 1.0 <= ratio <= 1.35
    assert result.big_idle_fraction > 0.2
