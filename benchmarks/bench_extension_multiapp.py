"""Extension — co-located applications under OS partitioning (Sec. 4.3).

Shape claims checked:

* the asymmetry-aware fair mix is far fairer than the cluster split
  (every application gets a share of both core types);
* under the fair mix every partition is a miniature AMP, so AID keeps
  beating static while co-located;
* a mid-run big-core reallocation is absorbed at the next loop boundary
  (the runtime reads the Sec. 4.3 shared page and re-derives its
  distribution).
"""

from repro.experiments import multiapp

from benchmarks.conftest import run_once


def test_extension_multiapp(benchmark):
    result = run_once(benchmark, multiapp.run)
    print()
    print(multiapp.format_report(result))

    fair_static = result.cells[("fair-mixed", "static")]
    fair_aid = result.cells[("fair-mixed", "aid_static")]
    split_aid = result.cells[("cluster-split", "aid_static")]

    # Fairness: the fair mix keeps per-app slowdowns close; the cluster
    # split starves whoever got the small cluster.
    assert fair_aid.unfairness < split_aid.unfairness / 1.3
    assert fair_aid.unfairness < 1.3

    # AID under co-location: shared completion improves vs static for
    # both applications under the fair mix.
    for aid_t, static_t in zip(fair_aid.shared_times, fair_static.shared_times):
        assert aid_t < static_t * 1.02

    # The reallocation run completes and app 0 actually ran with both
    # team sizes (4 before, 5 after gaining a big core).
    assert result.realloc is not None
    sizes = {len(lr.finish_times) for lr in result.realloc.results[0].loop_results}
    assert {4, 5} <= sizes
