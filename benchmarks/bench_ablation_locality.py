"""Ablation — the cross-invocation locality model.

Quantifies how much of dynamic's cost (and static's/AID-static's
advantage) comes from repeatable iteration ranges staying cache-warm
across timesteps — the effect Ayguadé et al.'s "dynamic degrades data
locality" critique (cited by the paper) describes.
"""

from repro.amp.presets import odroid_xu4
from repro.experiments.harness import ScheduleConfig, run_grid
from repro.perfmodel.locality import LocalityModel
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.workloads.registry import get_program

from benchmarks.conftest import run_once

PROGRAMS = ("hotspot3D", "MG", "sradv1")
SCHEDULES = (("static", "static"), ("dynamic,1", "dynamic"), ("aid_static", "AID-static"))


def run_sweep():
    platform = odroid_xu4()
    out = {}
    for enabled in (True, False):
        for prog_name in PROGRAMS:
            for schedule, label in SCHEDULES:
                runner = ProgramRunner(
                    platform,
                    OmpEnv(schedule=schedule, affinity="BS"),
                    locality=LocalityModel(enabled=enabled),
                )
                out[(enabled, prog_name, label)] = runner.run(
                    get_program(prog_name)
                ).completion_time
    return out


def test_ablation_locality(benchmark):
    times = run_once(benchmark, run_sweep)
    print()
    print("Ablation: locality model on/off (completion time, ms)")
    for prog in PROGRAMS:
        for _, label in SCHEDULES:
            on = times[(True, prog, label)] * 1e3
            off = times[(False, prog, label)] * 1e3
            print(
                f"  {prog:12s} {label:12s} with locality {on:8.2f}"
                f"  without {off:8.2f}  (penalty {on / off - 1:+.1%})"
            )
    def mean_penalty(label):
        return sum(
            times[(True, p, label)] / times[(False, p, label)] for p in PROGRAMS
        ) / len(PROGRAMS)

    static_penalty = mean_penalty("static")
    dyn_penalty = mean_penalty("dynamic")
    aid_penalty = mean_penalty("AID-static")
    # Static repeats identical ranges -> immune; dynamic shuffles ->
    # penalized; AID-static's near-stable blocks (their boundaries wobble
    # with sampling noise) sit in between, averaged over programs.
    assert static_penalty < 1.02
    assert dyn_penalty > static_penalty
    assert aid_penalty < dyn_penalty * 1.02
