#!/usr/bin/env python3
"""Extending the runtime with a custom loop-scheduling policy.

The scheduler API the AID methods are built on is public: an immutable
:class:`~repro.sched.base.ScheduleSpec` plus a per-loop
:class:`~repro.sched.base.LoopScheduler` whose ``next_range`` is the
``GOMP_loop_*_next`` analogue. This example implements *trapezoid
self-scheduling* (Tzen & Ni, 1993 — reference [46] of the paper):
chunk sizes decay linearly from NI/(2*NT) to 1, a classic middle ground
between dynamic's overhead and static's imbalance — and races it against
the built-ins on an asymmetric platform.

Run::

    python examples/custom_scheduler.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import OmpEnv, ProgramRunner, get_program, odroid_xu4
from repro.runtime.context import LoopContext
from repro.sched.base import LoopScheduler, ScheduleSpec


class TrapezoidScheduler(LoopScheduler):
    """Chunks shrink linearly from ``first`` to ``last`` across grabs."""

    def __init__(self, ctx: LoopContext, last: int = 1) -> None:
        super().__init__(ctx)
        n, nt = ctx.n_iterations, ctx.n_threads
        self.first = max(last, n // (2 * nt)) if n else last
        self.last = last
        # Tzen & Ni: number of chunks N = ceil(2n / (first + last)).
        total = self.first + self.last
        self.n_chunks = max(1, -(-2 * n // total)) if n else 0
        self.decrement = (
            (self.first - self.last) / max(1, self.n_chunks - 1)
            if self.n_chunks > 1
            else 0.0
        )
        self.grabs = 0

    def next_range(self, tid: int, now: float) -> tuple[int, int] | None:
        with self.ctx.lock:
            size = max(self.last, round(self.first - self.decrement * self.grabs))
            self.grabs += 1
        return self.ctx.workshare.take(size)


@dataclass(frozen=True)
class TrapezoidSpec(ScheduleSpec):
    last: int = 1

    @property
    def name(self) -> str:
        return f"trapezoid,{self.last}"

    def create(self, ctx: LoopContext) -> TrapezoidScheduler:
        return TrapezoidScheduler(ctx, self.last)


def main() -> None:
    platform = odroid_xu4()
    program = get_program("streamcluster")
    rows = []
    for label, env, override in [
        ("static(BS)", OmpEnv(schedule="static", affinity="BS"), None),
        ("dynamic,1", OmpEnv(schedule="dynamic,1", affinity="BS"), None),
        ("trapezoid", OmpEnv(schedule="static", affinity="BS"), TrapezoidSpec()),
        ("aid_static", OmpEnv(schedule="aid_static", affinity="BS"), None),
        ("aid_dynamic", OmpEnv(schedule="aid_dynamic,1,5", affinity="BS"), None),
    ]:
        runner = ProgramRunner(platform, env, schedule_override=override)
        result = runner.run(program)
        rows.append((label, result.completion_time, result.total_dispatches))
    base = rows[0][1]
    print(f"{program.name} on {platform.name}\n")
    print(f"{'schedule':<14s} {'time':>10s} {'norm. perf':>11s} {'dispatches':>11s}")
    for label, t, d in rows:
        print(f"{label:<14s} {t * 1e3:9.2f}ms {base / t:>11.3f} {d:>11d}")
    print(
        "\nTrapezoid lands between dynamic (ruinous dispatch count) and the"
        "\nAID methods (asymmetry-aware distribution at static-like cost)."
    )


if __name__ == "__main__":
    main()
