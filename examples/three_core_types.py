#!/usr/bin/env python3
"""AID on a platform with three core types (the NC >= 2 generalization).

The paper's distribution formula generalizes beyond big/small: per core
type j, the sampling phase yields SF_j, and each thread on type j
receives SF_j * k iterations with k = NI / sum_j N_j * SF_j. This
example runs a DynamIQ-style little/medium/big platform and shows the
sampled per-type SFs and the resulting iteration split.

Run::

    python examples/three_core_types.py
"""

from __future__ import annotations

from repro import OmpEnv, ProgramRunner, get_program, tri_type_platform
from repro.obs.snapshot import completion_payload


def main() -> None:
    platform = tri_type_platform()
    program = get_program("streamcluster")
    print(platform.describe())
    print()

    results = {}
    for schedule in ("static", "dynamic,1", "aid_static", "aid_dynamic,1,5"):
        runner = ProgramRunner(platform, OmpEnv(schedule=schedule, affinity="BS"))
        results[schedule] = runner.run(program)

    base = results["static"].completion_time
    print(f"{'schedule':<18s} {'time':>10s} {'norm. perf':>11s}")
    for schedule, result in results.items():
        row = completion_payload(
            schedule, platform.name, result.completion_time, base
        )
        print(
            f"{schedule:<18s} {result.completion_time * 1e3:9.2f}ms"
            f" {row['normalized_performance']:>11.3f}"
        )

    aid = results["aid_static"]
    first_loop = aid.loop_results[0]
    print("\nfirst loop under aid_static:")
    sf = first_loop.estimated_sf
    names = [ct.name for ct in platform.core_types]
    print("  sampled SF per core type: "
          + ", ".join(f"{names[j]}={sf[j]:.2f}" for j in sorted(sf)))
    print("  iterations per thread:   "
          + ", ".join(f"T{t}={n}" for t, n in enumerate(first_loop.iterations)))
    print("  (threads 0-1 big, 2-3 medium, 4-5 little — shares track the SFs)")


if __name__ == "__main__":
    main()
