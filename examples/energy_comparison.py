#!/usr/bin/env python3
"""Energy and EDP per scheduling policy on the big.LITTLE platform.

The reason asymmetric multicores exist is energy efficiency; this
example closes the paper's motivation loop with the power model: it runs
a few programs under every schedule and reports joules, average watts
and the energy-delay product.

Run::

    python examples/energy_comparison.py [program ...]
"""

from __future__ import annotations

import sys

from repro import OmpEnv, ProgramRunner, get_program, odroid_xu4
from repro.power import PowerModel, energy_delay_product

CONFIGS = [
    ("static", "SB"),
    ("static", "BS"),
    ("dynamic,1", "BS"),
    ("aid_static", "BS"),
    ("aid_hybrid,80", "BS"),
    ("aid_dynamic,1,5", "BS"),
]


def main() -> None:
    names = sys.argv[1:] or ["streamcluster", "IS"]
    platform = odroid_xu4()
    power = PowerModel(platform)
    for name in names:
        program = get_program(name)
        print(f"{program.name} on {platform.name}")
        print(f"  {'schedule':<18s} {'time':>9s} {'energy':>9s}"
              f" {'avg power':>10s} {'EDP':>11s}")
        for schedule, affinity in CONFIGS:
            runner = ProgramRunner(
                platform, OmpEnv(schedule=schedule, affinity=affinity), trace=True
            )
            result = runner.run(program)
            e = power.energy_of(result, list(runner.team.mapping.cpu_of_tid))
            print(
                f"  {schedule + '(' + affinity + ')':<18s}"
                f" {result.completion_time * 1e3:8.2f}ms"
                f" {e.total_j * 1e3:8.2f}mJ"
                f" {e.average_power_w:9.2f}W"
                f" {energy_delay_product(e) * 1e6:10.3f}uJs"
            )
        print()
    print("AID's wins are nearly free in watts: the same cores stay busy,"
          "\nbut with useful work instead of barrier spinning — so the"
          "\nenergy-delay product drops almost quadratically with runtime.")


if __name__ == "__main__":
    main()
