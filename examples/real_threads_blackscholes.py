#!/usr/bin/env python3
"""Real threads pricing real options under the AID schedulers.

The same scheduler state machines that drive the simulator run genuine
``threading`` workers here: a PARSEC-blackscholes-style portfolio is
priced chunk by chunk, with the schedule deciding who prices what.
Results are bit-identical across schedules (every option priced exactly
once); the printed distribution shows how each policy splits the work
between the "big" and "small" halves of the synthetic team.

CPython's GIL serializes the actual math, so wall times below say
nothing about AMP performance — that is what the simulator is for
(see DESIGN.md).

Run::

    python examples/real_threads_blackscholes.py [n_options]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.exec_real import ThreadTeam
from repro.kernels import black_scholes_price
from repro.sched import (
    AidDynamicSpec,
    AidHybridSpec,
    AidStaticSpec,
    DynamicSpec,
    StaticSpec,
)

SPECS = [
    StaticSpec(),
    DynamicSpec(64),
    AidStaticSpec(sampling_chunk=32),
    AidHybridSpec(percentage=80, sampling_chunk=32),
    AidDynamicSpec(32, 160),
]


def make_portfolio(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return dict(
        spot=rng.uniform(40.0, 160.0, n),
        strike=rng.uniform(40.0, 160.0, n),
        rate=0.03,
        volatility=rng.uniform(0.1, 0.6, n),
        maturity=rng.uniform(0.05, 2.0, n),
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    portfolio = make_portfolio(n)
    team = ThreadTeam(4)
    n_big = team.team.n_big

    reference = black_scholes_price(**portfolio)
    print(f"pricing {n:,} options with 4 threads "
          f"({n_big} 'big', {team.team.n_small} 'small')\n")
    print(f"{'schedule':<18s} {'wall':>9s} {'dispatches':>11s}"
          f" {'big-thread share':>17s} {'max |err|':>10s}")

    for spec in SPECS:
        prices = np.zeros(n)

        def body(tid: int, lo: int, hi: int) -> None:
            prices[lo:hi] = black_scholes_price(
                portfolio["spot"][lo:hi],
                portfolio["strike"][lo:hi],
                portfolio["rate"],
                portfolio["volatility"][lo:hi],
                portfolio["maturity"][lo:hi],
            )

        stats = team.parallel_for(n, body, spec)
        err = float(np.abs(prices - reference).max())
        big_share = sum(stats.iterations_per_thread[:n_big]) / n
        print(
            f"{spec.name:<18s} {stats.wall_time * 1e3:8.1f}ms"
            f" {stats.dispatches:>11d} {big_share:>16.1%} {err:>10.2e}"
        )
        assert err == 0.0, "schedules must not change results"

    print("\nEvery schedule produced identical prices — the AID methods "
          "redistribute work, never results.")


if __name__ == "__main__":
    main()
