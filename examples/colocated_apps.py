#!/usr/bin/env python3
"""Two OpenMP applications sharing one big.LITTLE chip (Sec. 4.3).

Demonstrates the multi-application substrate: the OS partitions the
Odroid's cores between streamcluster and FT, each application's runtime
reads its allocation from the shared info page at every loop start, and
AID distributes iterations within whatever partition it currently owns —
including after the OS reallocates a big core mid-run.

Run::

    python examples/colocated_apps.py
"""

from __future__ import annotations

from repro import get_program, odroid_xu4
from repro.osched import (
    AllocationTimeline,
    cluster_split,
    fair_mixed,
    priority_weighted,
    run_colocated,
)


def main() -> None:
    platform = odroid_xu4()
    programs = [get_program("streamcluster"), get_program("FT")]
    print("co-locating streamcluster (app 0) and FT (app 1) on the Odroid\n")

    print("How should the OS split 4 big + 4 small cores?")
    for name, alloc in [
        ("cluster split (app0=big cluster, app1=small)", cluster_split(platform)),
        ("fair mix (2 big + 2 small each)", fair_mixed(platform)),
    ]:
        for schedule in ("static", "aid_dynamic,1,5"):
            r = run_colocated(platform, programs, alloc, schedule=schedule)
            print(f"  {name:46s} {r.summary()}")
    print()

    print("...and when the OS moves a big core to app 0 at t = 20 ms:")
    timeline = AllocationTimeline(
        breakpoints=[
            (0.0, fair_mixed(platform)),
            (0.02, priority_weighted(platform, (3, 1))),
        ]
    )
    r = run_colocated(platform, programs, timeline, schedule="aid_dynamic,1,5")
    print(f"  {'reallocation, AID-dynamic':46s} {r.summary()}")
    sizes = sorted({len(lr.finish_times) for lr in r.results[0].loop_results})
    print(f"\napp 0 team sizes over the run: {sizes} "
          "(the runtime picked up the fifth core from the shared page at "
          "the next loop boundary)")


if __name__ == "__main__":
    main()
