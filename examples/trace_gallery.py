#!/usr/bin/env python3
"""Trace gallery: the paper's Paraver-style timelines in your terminal.

Renders EP's single parallel loop under static, dynamic, AID-static and
AID-hybrid on Platform A with 8 threads — visually reproducing Figs. 1
and 4: static's idle big cores, and AID-hybrid's dynamic tail absorbing
AID-static's residual imbalance.

Run::

    python examples/trace_gallery.py [width]
"""

from __future__ import annotations

import sys

from repro import OmpEnv, ProgramRunner, get_program, odroid_xu4, render_timeline

SCHEDULES = ["static", "dynamic,1", "aid_static", "aid_hybrid,80"]


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    platform = odroid_xu4()
    program = get_program("EP")
    print("EP on Platform A, 8 threads (T0-T3 on big cores, T4-T7 on small)\n")
    for schedule in SCHEDULES:
        runner = ProgramRunner(
            platform, OmpEnv(schedule=schedule, affinity="BS"), trace=True
        )
        result = runner.run(program)
        print(f"--- {schedule}  ({result.completion_time * 1e3:.1f} ms) ---")
        print(render_timeline(result.trace, width=width, show_legend=False))
        print()
    print("legend: '#' compute  'r' runtime overhead  '.' barrier wait  "
          "'S' serial  ' ' idle")


if __name__ == "__main__":
    main()
