#!/usr/bin/env python3
"""Quickstart: run one benchmark under every schedule on both platforms.

This is the library's 5-minute tour: build the paper's two AMP
platforms, pick a workload, and compare the conventional OpenMP loop
schedules against the three AID methods.

Run::

    python examples/quickstart.py [program]
"""

from __future__ import annotations

import sys

from repro import OmpEnv, ProgramRunner, get_program, odroid_xu4, xeon_emulated

#: Schedule/affinity combinations of the paper's Figs. 6 and 7.
CONFIGS = [
    ("static", "SB"),
    ("static", "BS"),
    ("dynamic,1", "SB"),
    ("dynamic,1", "BS"),
    ("aid_static", "BS"),
    ("aid_hybrid,80", "BS"),
    ("aid_dynamic,1,5", "BS"),
]


def main() -> None:
    program_name = sys.argv[1] if len(sys.argv) > 1 else "streamcluster"
    program = get_program(program_name)
    print(f"program: {program.name} ({program.suite}), "
          f"{len(program.loops())} loops x {program.timesteps} timesteps\n")

    for platform in (odroid_xu4(), xeon_emulated()):
        print(platform.describe())
        baseline = None
        for schedule, affinity in CONFIGS:
            runner = ProgramRunner(
                platform, OmpEnv(schedule=schedule, affinity=affinity)
            )
            result = runner.run(program)
            if baseline is None:
                baseline = result.completion_time
            norm = baseline / result.completion_time
            bar = "#" * round(norm * 25)
            print(
                f"  {schedule + '(' + affinity + ')':22s}"
                f" {result.completion_time * 1e3:9.2f} ms"
                f"   x{norm:5.2f}  {bar}"
            )
        print()


if __name__ == "__main__":
    main()
