#!/usr/bin/env python3
"""Quickstart: run one benchmark under every schedule on both platforms.

This is the library's 5-minute tour: build the paper's two AMP
platforms, pick a workload, and compare the conventional OpenMP loop
schedules against the three AID methods.

Run::

    python examples/quickstart.py [program] [--obs [DIR]] [--jobs N]
                                  [--backend NAME]

With ``--obs``, the AID-hybrid run on Platform A additionally writes the
observability artifacts into DIR (default ``obs_out/``): a metrics
snapshot (``metrics.json``), the scheduler decision log
(``decisions.jsonl``) and a Chrome trace (``trace.json`` — open it at
chrome://tracing or https://ui.perfetto.dev). Summarize the snapshot
with ``python -m repro.obs.report DIR/metrics.json``.

With ``--jobs N``, the same grids regenerate through the
:mod:`repro.fleet` orchestration engine instead: cells fan out over N
worker processes and land in the content-addressed result cache
(``.fleet-cache/`` or ``$FLEET_CACHE_DIR``), so a second invocation is
pure cache hits. A cached-vs-computed summary is printed at the end —
the numbers themselves are identical either way, because the simulator
is deterministic.

With ``--backend NAME``, every loop runs through the named execution
backend (``reference``, ``vectorized``, ``real``; also selectable via
``REPRO_BACKEND``). ``vectorized`` produces exactly the same numbers as
``reference``, just faster — try
``python examples/quickstart.py --backend vectorized``.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import OmpEnv, ProgramRunner, get_program, odroid_xu4, xeon_emulated
from repro.obs import Observability
from repro.obs.chrome_trace import export_chrome_trace
from repro.obs.snapshot import completion_payload, write_snapshot

#: Schedule/affinity combinations of the paper's Figs. 6 and 7.
CONFIGS = [
    ("static", "SB"),
    ("static", "BS"),
    ("dynamic,1", "SB"),
    ("dynamic,1", "BS"),
    ("aid_static", "BS"),
    ("aid_hybrid,80", "BS"),
    ("aid_dynamic,1,5", "BS"),
]

#: The configuration whose run emits the --obs artifacts.
OBS_CONFIG = ("aid_hybrid,80", "BS")


def write_obs_artifacts(
    out_dir: Path, obs: Observability, runner: ProgramRunner, meta: dict
) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    write_snapshot(out_dir / "metrics.json", obs, meta=meta)
    obs.decisions.write_jsonl(out_dir / "decisions.jsonl")
    if runner.recorder is not None:
        trace_json = export_chrome_trace(
            runner.recorder,
            decisions=obs.decisions.records,
            # Counter lanes: utilization/rate/pool-depth timelines render
            # alongside the per-thread state tracks in Perfetto.
            timeseries=obs.registry.snapshot()["timeseries"],
        )
        (out_dir / "trace.json").write_text(trace_json, encoding="utf-8")
    print(f"  [obs] artifacts written to {out_dir}/ "
          "(metrics.json, decisions.jsonl, trace.json)")


def run_fleet(program, jobs: int, backend: str | None = None) -> None:
    """Regenerate both per-program grids through the fleet."""
    from repro.experiments.harness import ScheduleConfig, run_grid
    from repro.fleet import FleetProgress, ResultCache

    configs = [
        ScheduleConfig(f"{schedule}({affinity})",
                       OmpEnv(schedule=schedule, affinity=affinity))
        for schedule, affinity in CONFIGS
    ]
    cache = ResultCache()
    progress = FleetProgress()
    for platform in (odroid_xu4(), xeon_emulated()):
        print(platform.describe())
        grid = run_grid(
            platform,
            programs=[program],
            configs=configs,
            jobs=jobs,
            cache=cache,
            progress=progress,
            backend=backend,
        )
        row = grid.times[program.name]
        baseline = row[configs[0].label]
        for label, t in row.items():
            norm = baseline / t
            bar = "#" * round(norm * 25)
            print(f"  {label:22s} {t * 1e3:9.2f} ms   x{norm:5.2f}  {bar}")
        print()
    s = progress.summary()
    print(
        f"fleet: {s['jobs_submitted']} cells — {s['cache_hits']} cached, "
        f"{s['jobs_computed']} computed ({jobs} worker(s); cache at "
        f"{cache.root}/)"
    )
    if s["cache_hits"] == s["jobs_submitted"]:
        print("everything came from cache — delete the cache dir or change "
              "the seed to recompute")


def main() -> None:
    argv = [a for a in sys.argv[1:]]
    obs_dir: Path | None = None
    jobs: int | None = None
    backend: str | None = None
    if "--backend" in argv:
        i = argv.index("--backend")
        argv.pop(i)
        backend = argv.pop(i) if i < len(argv) else None
    if "--jobs" in argv:
        i = argv.index("--jobs")
        argv.pop(i)
        jobs = int(argv.pop(i)) if i < len(argv) else 2
    if "--obs" in argv:
        i = argv.index("--obs")
        argv.pop(i)
        if i < len(argv) and not argv[i].startswith("-"):
            obs_dir = Path(argv.pop(i))
        else:
            obs_dir = Path("obs_out")
    program_name = argv[0] if argv else "streamcluster"
    program = get_program(program_name)
    print(f"program: {program.name} ({program.suite}), "
          f"{len(program.loops())} loops x {program.timesteps} timesteps\n")

    if jobs is not None:
        run_fleet(program, jobs, backend=backend)
        return

    for platform in (odroid_xu4(), xeon_emulated()):
        print(platform.describe())
        baseline = None
        first_platform = platform.name.startswith("Platform A")
        for schedule, affinity in CONFIGS:
            emit_obs = (
                obs_dir is not None
                and first_platform
                and (schedule, affinity) == OBS_CONFIG
            )
            obs = Observability() if emit_obs else None
            runner = ProgramRunner(
                platform,
                OmpEnv(schedule=schedule, affinity=affinity),
                trace=emit_obs,
                obs=obs,
                backend=backend,
            )
            result = runner.run(program)
            if baseline is None:
                baseline = result.completion_time
            row = completion_payload(
                f"{schedule}({affinity})",
                platform.name,
                result.completion_time,
                baseline,
            )
            norm = row["normalized_performance"]
            bar = "#" * round(norm * 25)
            print(
                f"  {row['scheme']:22s}"
                f" {result.completion_time * 1e3:9.2f} ms"
                f"   x{norm:5.2f}  {bar}"
            )
            if emit_obs:
                assert obs is not None
                write_obs_artifacts(obs_dir, obs, runner, meta=row)
        print()


if __name__ == "__main__":
    main()
