"""Unit tests for the performance model (rates and speedup factors)."""

import pytest

from repro.amp.presets import dual_speed_platform, odroid_xu4, xeon_emulated
from repro.amp.topology import bs_mapping
from repro.perfmodel.contention import ContentionModel
from repro.perfmodel.kernel import CACHE_CLIFF, COMPUTE_BOUND, STREAMING, KernelProfile
from repro.perfmodel.speed import PerfModel, blended_rate, cpu_speed, mem_speed


def kp(**kw):
    defaults = dict(name="k", compute_weight=0.5, ilp=0.5, working_set_mb=0.05)
    defaults.update(kw)
    return KernelProfile(**defaults)


class TestComponents:
    def test_cpu_speed_scales_with_frequency(self):
        a = cpu_speed(odroid_xu4().core_types[0], kp(ilp=0.0, compute_weight=1.0))
        assert a == pytest.approx(1.5)  # A7 at 1.5 GHz, no ILP gain

    def test_uarch_only_helps_ilp_rich_code(self):
        big = odroid_xu4().core_types[1]
        no_ilp = cpu_speed(big, kp(ilp=0.0))
        full_ilp = cpu_speed(big, kp(ilp=1.0))
        assert no_ilp == pytest.approx(big.effective_freq_ghz)
        assert full_ilp == pytest.approx(
            big.effective_freq_ghz * big.uarch_speedup
        )

    def test_mem_speed_interpolates_tiers(self):
        small = odroid_xu4().core_types[0]
        k = kp(mlp=1.0)
        cached = mem_speed(small, k, 1.0)
        dram = mem_speed(small, k, 0.0)
        half = mem_speed(small, k, 0.5)
        assert cached == pytest.approx(small.cache_bw)
        assert dram == pytest.approx(small.dram_stream_bw)
        assert half == pytest.approx((cached + dram) / 2)

    def test_mlp_selects_dram_tier(self):
        small = odroid_xu4().core_types[0]
        streaming = mem_speed(small, kp(mlp=1.0), 0.0)
        chasing = mem_speed(small, kp(mlp=0.0), 0.0)
        assert streaming == pytest.approx(small.dram_stream_bw)
        assert chasing == pytest.approx(small.dram_latency_bw)
        assert chasing < streaming  # in-order core stalls on misses

    def test_pure_compute_ignores_memory(self):
        ct = odroid_xu4().core_types[1]
        k = kp(compute_weight=1.0, ilp=0.5)
        assert blended_rate(ct, k, 0.0) == blended_rate(ct, k, 1.0)


class TestSpeedupFactors:
    def test_flat_platform_sf_is_exact(self):
        p = dual_speed_platform(2, 2, big_speedup=2.5)
        perf = PerfModel(p)
        for kernel in (COMPUTE_BOUND, STREAMING, kp()):
            assert perf.speedup_factor(kernel) == pytest.approx(2.5)

    def test_platform_a_sf_range_matches_paper(self):
        """Paper: per-loop SFs on Platform A span ~1 to 8.9x; the maxima
        come from cache-capacity cliffs, not raw compute."""
        perf = PerfModel(odroid_xu4())
        low = perf.speedup_factor(STREAMING)
        compute = perf.speedup_factor(COMPUTE_BOUND)
        cliff = perf.speedup_factor(CACHE_CLIFF)
        assert 1.0 <= low <= 1.6
        assert 4.0 <= compute <= 6.5
        assert 7.0 <= cliff <= 9.5

    def test_platform_b_sf_capped_near_paper_max(self):
        """Paper: max SF on Platform B is ~2.3x."""
        perf = PerfModel(xeon_emulated())
        high = perf.speedup_factor(COMPUTE_BOUND)
        low = perf.speedup_factor(STREAMING)
        assert 2.0 <= high <= 2.4
        assert 1.0 <= low <= 1.3

    def test_sf_of_slowest_type_is_one(self):
        p = odroid_xu4()
        perf = PerfModel(p)
        assert perf.speedup_factor(kp(), p.core_types[0]) == pytest.approx(1.0)

    def test_online_sf_sees_contention(self):
        """A kernel that fits the A15 L2 solo but not with 4 co-runners
        loses SF online — the blackscholes mechanism."""
        p = odroid_xu4()
        perf = PerfModel(p)
        kernel = kp(working_set_mb=0.8, mlp=0.3, compute_weight=0.4)
        offline = perf.speedup_factor(kernel)
        online = perf.speedup_factor(
            kernel, cpu_of_tid=tuple(bs_mapping(p).cpu_of_tid)
        )
        assert online < offline

    def test_max_speedup_factor(self):
        perf = PerfModel(odroid_xu4())
        kernels = [STREAMING, COMPUTE_BOUND, CACHE_CLIFF]
        assert perf.max_speedup_factor(kernels) == pytest.approx(
            perf.speedup_factor(CACHE_CLIFF)
        )


class TestRates:
    def test_rate_positive_everywhere(self, platform_a):
        perf = PerfModel(platform_a)
        for cpu in range(platform_a.n_cores):
            assert perf.rate(cpu, kp()) > 0

    def test_solo_rate_ignores_contention(self, platform_a):
        perf = PerfModel(platform_a)
        kernel = kp(working_set_mb=0.4)
        cpus = tuple(bs_mapping(platform_a).cpu_of_tid)
        assert perf.solo_rate(0, kernel) >= perf.rate(0, kernel, cpus)

    def test_contention_disabled_equals_solo(self, platform_a):
        perf = PerfModel(platform_a, ContentionModel(enabled=False))
        kernel = kp(working_set_mb=0.4)
        cpus = tuple(bs_mapping(platform_a).cpu_of_tid)
        assert perf.rate(0, kernel, cpus) == pytest.approx(
            perf.solo_rate(0, kernel)
        )
