"""Tests for snapshot diffing and regression detection (repro.obs.diff)
plus the ``python -m repro.obs.report diff`` CLI gate."""

import json

import pytest

from repro.obs.diff import (
    DiffThresholds,
    diff_snapshots,
    histogram_distance,
    is_cost,
    is_informational,
)
from repro.obs.report import main as report_main
from repro.obs.snapshot import SCHEMA


def snapshot_doc(counters=(), gauges=(), histograms=(), decision_summary=None):
    """A minimal snapshot document in the exported wire shape."""
    doc = {
        "schema": SCHEMA,
        "meta": {},
        "metrics": {
            "counters": [
                {"name": n, "labels": dict(labels), "value": v}
                for n, labels, v in counters
            ],
            "gauges": [
                {"name": n, "labels": dict(labels), "value": v}
                for n, labels, v in gauges
            ],
            "histograms": list(histograms),
        },
        "decisions": [],
    }
    if decision_summary is not None:
        doc["decision_summary"] = decision_summary
    return doc


def hist(name, counts, bounds=(1.0, 4.0), labels=()):
    buckets = [
        {"le": le, "count": c}
        for le, c in zip(list(bounds) + ["+Inf"], counts)
    ]
    return {
        "name": name,
        "labels": dict(labels),
        "buckets": buckets,
        "sum": float(sum(counts)),
        "count": int(sum(counts)),
    }


# -- classification ----------------------------------------------------------


class TestClassification:
    def test_cache_temperature_counters_are_informational(self):
        for name in (
            "fleet_cache_hits", "fleet_cache_misses", "fleet_jobs_computed",
            "fleet_job_duration_seconds", "fleet_duration_estimate_seconds",
        ):
            assert is_informational(name)
        assert not is_informational("dispatches_total")

    def test_overhead_and_failure_counters_are_cost(self):
        for name in (
            "runtime_overhead_seconds_total", "fleet_failures",
            "fleet_timeouts", "fleet_retries",
        ):
            assert is_cost(name)
        assert not is_cost("compute_seconds_total")


# -- scalar diffs ------------------------------------------------------------


class TestScalarDiffs:
    def test_identical_snapshots_diff_clean(self):
        doc = snapshot_doc(counters=[("dispatches_total", {"loop": "L"}, 7.0)])
        diff = diff_snapshots(doc, doc)
        assert diff.entries == []
        assert diff.compared == 1 and diff.identical == 1

    def test_simulation_divergence_is_a_regression(self):
        a = snapshot_doc(counters=[("iterations_total", {}, 1000.0)])
        b = snapshot_doc(counters=[("iterations_total", {}, 1100.0)])
        diff = diff_snapshots(a, b)
        assert len(diff.regressions) == 1
        assert diff.regressions[0].name == "iterations_total"

    def test_tiny_simulation_drift_is_a_change_not_a_regression(self):
        a = snapshot_doc(counters=[("compute_seconds_total", {}, 1.000)])
        b = snapshot_doc(counters=[("compute_seconds_total", {}, 1.001)])
        diff = diff_snapshots(a, b, DiffThresholds(metric_rel=0.01))
        assert diff.regressions == []
        assert len(diff.changes) == 1

    def test_doubled_overhead_counter_regresses(self):
        a = snapshot_doc(
            counters=[("runtime_overhead_seconds_total", {}, 0.5)]
        )
        b = snapshot_doc(
            counters=[("runtime_overhead_seconds_total", {}, 1.0)]
        )
        diff = diff_snapshots(a, b)
        assert len(diff.regressions) == 1
        assert "cost grew 100.0%" in diff.regressions[0].detail

    def test_shrinking_cost_is_an_improvement_not_a_regression(self):
        a = snapshot_doc(counters=[("fleet_retries", {}, 3.0)])
        b = snapshot_doc(counters=[("fleet_retries", {}, 0.0)])
        diff = diff_snapshots(a, b)
        assert diff.regressions == []
        assert len(diff.infos) == 1

    def test_cost_growth_within_tolerance_is_a_change(self):
        a = snapshot_doc(counters=[("fleet_retries", {}, 100.0)])
        b = snapshot_doc(counters=[("fleet_retries", {}, 105.0)])
        diff = diff_snapshots(a, b, DiffThresholds(cost_rel=0.10))
        assert diff.regressions == []
        assert len(diff.changes) == 1

    def test_cold_vs_warm_cache_counters_stay_informational(self):
        cold = snapshot_doc(counters=[
            ("fleet_jobs_submitted", {}, 8.0),
            ("fleet_cache_hits", {}, 0.0),
            ("fleet_cache_misses", {}, 8.0),
            ("fleet_jobs_computed", {}, 8.0),
        ])
        warm = snapshot_doc(counters=[
            ("fleet_jobs_submitted", {}, 8.0),
            ("fleet_cache_hits", {}, 8.0),
            ("fleet_cache_misses", {}, 0.0),
            ("fleet_jobs_computed", {}, 0.0),
        ])
        diff = diff_snapshots(cold, warm)
        assert diff.regressions == [] and diff.changes == []
        assert len(diff.infos) == 3  # hits, misses, computed flipped

    def test_metric_in_only_one_snapshot_regresses(self):
        a = snapshot_doc(counters=[("dispatches_total", {"loop": "L"}, 7.0)])
        b = snapshot_doc()
        diff = diff_snapshots(a, b)
        assert len(diff.regressions) == 1
        assert "only one snapshot" in diff.regressions[0].detail

    def test_same_name_different_labels_compared_separately(self):
        a = snapshot_doc(counters=[
            ("iterations_total", {"program": "EP"}, 10.0),
            ("iterations_total", {"program": "IS"}, 20.0),
        ])
        b = snapshot_doc(counters=[
            ("iterations_total", {"program": "EP"}, 10.0),
            ("iterations_total", {"program": "IS"}, 25.0),
        ])
        diff = diff_snapshots(a, b)
        assert len(diff.regressions) == 1
        assert dict(diff.regressions[0].labels) == {"program": "IS"}


# -- histograms --------------------------------------------------------------


class TestHistogramDiffs:
    def test_distance_zero_for_identical(self):
        h = hist("chunk_size_iterations", (3, 2, 1))
        assert histogram_distance(h, h) == 0.0

    def test_distance_one_for_disjoint(self):
        a = hist("chunk_size_iterations", (6, 0, 0))
        b = hist("chunk_size_iterations", (0, 0, 6))
        assert histogram_distance(a, b) == pytest.approx(1.0)

    def test_shifted_mass_beyond_tolerance_regresses(self):
        a = snapshot_doc(histograms=[hist("chunk_size_iterations", (6, 0, 0))])
        b = snapshot_doc(histograms=[hist("chunk_size_iterations", (0, 6, 0))])
        diff = diff_snapshots(a, b)
        assert len(diff.regressions) == 1
        assert diff.regressions[0].kind == "histogram"

    def test_wall_clock_histogram_divergence_is_informational(self):
        a = snapshot_doc(
            histograms=[hist("fleet_job_duration_seconds", (6, 0, 0))]
        )
        b = snapshot_doc(
            histograms=[hist("fleet_job_duration_seconds", (0, 0, 6))]
        )
        diff = diff_snapshots(a, b)
        assert diff.regressions == []
        assert len(diff.infos) == 1


# -- timeseries and tail-latency digests -------------------------------------


def digest_doc(name, values, labels=()):
    from repro.obs.timeseries import QuantileDigest

    d = QuantileDigest(name, tuple(labels))
    for v in values:
        d.observe(v)
    return d.as_dict()


def series_doc(name, samples, labels=(), mode="sample"):
    from repro.obs.timeseries import TimeSeries

    ts = TimeSeries(name, tuple(labels), mode=mode, window=1.0)
    for t, v in samples:
        ts.observe(t, v)
    return ts.as_dict()


def with_docs(doc, timeseries=(), digests=()):
    doc["metrics"]["timeseries"] = list(timeseries)
    doc["metrics"]["digests"] = list(digests)
    return doc


class TestTailLatencyDiffs:
    BASE = [1e-4] * 99 + [2e-4]

    def test_identical_digests_are_identical(self):
        a = with_docs(snapshot_doc(), digests=[digest_doc("d", self.BASE)])
        b = with_docs(snapshot_doc(), digests=[digest_doc("d", self.BASE)])
        diff = diff_snapshots(a, b)
        assert diff.regressions == [] and diff.changes == []

    def test_p99_growth_beyond_threshold_is_a_tail_latency_regression(self):
        grown = [1e-4] * 99 + [8e-4]  # p99 4x
        a = with_docs(snapshot_doc(), digests=[digest_doc("d", self.BASE)])
        b = with_docs(snapshot_doc(), digests=[digest_doc("d", grown)])
        diff = diff_snapshots(a, b)
        assert len(diff.regressions) == 1
        entry = diff.regressions[0]
        assert entry.kind == "tail-latency"
        assert "grew" in entry.detail

    def test_growth_within_tolerance_is_a_change(self):
        grown = [1e-4] * 99 + [2.1e-4]  # p99 +5% < 10% default
        a = with_docs(snapshot_doc(), digests=[digest_doc("d", self.BASE)])
        b = with_docs(snapshot_doc(), digests=[digest_doc("d", grown)])
        diff = diff_snapshots(a, b)
        assert diff.regressions == []

    def test_tail_tolerance_is_configurable(self):
        grown = [1e-4] * 99 + [8e-4]
        a = with_docs(snapshot_doc(), digests=[digest_doc("d", self.BASE)])
        b = with_docs(snapshot_doc(), digests=[digest_doc("d", grown)])
        diff = diff_snapshots(a, b, DiffThresholds(tail_rel=10.0))
        assert diff.regressions == []

    def test_tail_shrink_is_not_a_regression(self):
        shrunk = [1e-4] * 100
        a = with_docs(snapshot_doc(), digests=[digest_doc("d", self.BASE)])
        b = with_docs(snapshot_doc(), digests=[digest_doc("d", shrunk)])
        diff = diff_snapshots(a, b)
        assert diff.regressions == []

    def test_digest_in_only_one_snapshot_regresses(self):
        a = with_docs(snapshot_doc(), digests=[digest_doc("d", self.BASE)])
        b = with_docs(snapshot_doc())
        assert len(diff_snapshots(a, b).regressions) == 1

    def test_wall_clock_digest_divergence_is_informational(self):
        grown = [1e-4] * 99 + [8e-4]
        a = with_docs(
            snapshot_doc(),
            digests=[digest_doc("real_chunk_compute_seconds", self.BASE)],
        )
        b = with_docs(
            snapshot_doc(),
            digests=[digest_doc("real_chunk_compute_seconds", grown)],
        )
        diff = diff_snapshots(a, b)
        assert diff.regressions == []
        assert len(diff.infos) == 1


class TestTimeseriesDiffs:
    def test_identical_series_are_identical(self):
        s = series_doc("ts", [(0.5, 1.0), (1.5, 2.0)])
        a = with_docs(snapshot_doc(), timeseries=[s])
        b = with_docs(snapshot_doc(), timeseries=[s])
        diff = diff_snapshots(a, b)
        assert diff.regressions == [] and diff.changes == []

    def test_diverged_totals_regress(self):
        a = with_docs(
            snapshot_doc(), timeseries=[series_doc("ts", [(0.5, 1.0)])]
        )
        b = with_docs(
            snapshot_doc(), timeseries=[series_doc("ts", [(0.5, 9.0)])]
        )
        diff = diff_snapshots(a, b)
        assert len(diff.regressions) == 1
        assert diff.regressions[0].kind == "timeseries"

    def test_same_totals_different_shape_is_a_change(self):
        a = with_docs(
            snapshot_doc(), timeseries=[series_doc("ts", [(0.5, 3.0)])]
        )
        b = with_docs(
            snapshot_doc(), timeseries=[series_doc("ts", [(1.5, 3.0)])]
        )
        diff = diff_snapshots(a, b)
        assert diff.regressions == []
        assert len(diff.changes) == 1

    def test_series_in_only_one_snapshot_regresses(self):
        a = with_docs(
            snapshot_doc(), timeseries=[series_doc("ts", [(0.5, 1.0)])]
        )
        b = with_docs(snapshot_doc())
        assert len(diff_snapshots(a, b).regressions) == 1


# -- decision summaries ------------------------------------------------------


class TestDecisionDiffs:
    SUMMARY_A = {
        "total": 4,
        "schedulers": {
            "aid_hybrid": {
                "total": 4,
                "events": {"sample_start": 2, "publish_targets": 2},
            }
        },
        "loops": {"L": 4},
    }
    SUMMARY_B = {
        "total": 5,
        "schedulers": {
            "aid_hybrid": {
                "total": 5,
                "events": {"sample_start": 3, "publish_targets": 2},
            }
        },
        "loops": {"L": 5},
    }

    def test_divergence_is_strict_by_default(self):
        a = snapshot_doc(decision_summary=self.SUMMARY_A)
        b = snapshot_doc(decision_summary=self.SUMMARY_B)
        diff = diff_snapshots(a, b)
        assert len(diff.regressions) == 1
        assert diff.regressions[0].kind == "decisions"
        assert "sample_start" in diff.regressions[0].detail

    def test_lax_decisions_downgrade_to_change(self):
        a = snapshot_doc(decision_summary=self.SUMMARY_A)
        b = snapshot_doc(decision_summary=self.SUMMARY_B)
        diff = diff_snapshots(a, b, DiffThresholds(strict_decisions=False))
        assert diff.regressions == []
        assert len(diff.changes) == 1

    def test_raw_decision_records_are_summarized_on_the_fly(self):
        a = snapshot_doc()
        a["decisions"] = [
            {"scheduler": "aid_hybrid", "event": "sample_start", "loop": "L"}
        ]
        b = snapshot_doc(decision_summary={
            "total": 1,
            "schedulers": {
                "aid_hybrid": {"total": 1, "events": {"sample_start": 1}}
            },
            "loops": {"L": 1},
        })
        diff = diff_snapshots(a, b)
        assert diff.regressions == []


# -- serialization and the CLI gate ------------------------------------------


class TestDiffCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
        return str(path)

    def test_identical_snapshots_exit_zero(self, tmp_path, capsys):
        doc = snapshot_doc(counters=[("dispatches_total", {}, 7.0)])
        a = self.write(tmp_path, "a.json", doc)
        b = self.write(tmp_path, "b.json", doc)
        assert report_main(["diff", a, b, "--fail-on-regression"]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_doubled_overhead_fails_the_gate(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", snapshot_doc(
            counters=[("runtime_overhead_seconds_total", {}, 0.5)]
        ))
        b = self.write(tmp_path, "b.json", snapshot_doc(
            counters=[("runtime_overhead_seconds_total", {}, 1.0)]
        ))
        assert report_main(["diff", a, b, "--fail-on-regression"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        # Without the flag the same diff merely reports.
        assert report_main(["diff", a, b]) == 0
        capsys.readouterr()

    def test_tolerance_flags_reach_the_thresholds(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", snapshot_doc(
            counters=[("runtime_overhead_seconds_total", {}, 1.0)]
        ))
        b = self.write(tmp_path, "b.json", snapshot_doc(
            counters=[("runtime_overhead_seconds_total", {}, 2.0)]
        ))
        assert report_main(
            ["diff", a, b, "--fail-on-regression", "--cost-tol", "2.0"]
        ) == 0
        capsys.readouterr()

    def test_json_output_is_structured(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", snapshot_doc(
            counters=[("iterations_total", {}, 10.0)]
        ))
        b = self.write(tmp_path, "b.json", snapshot_doc(
            counters=[("iterations_total", {}, 99.0)]
        ))
        out_path = tmp_path / "diff.json"
        assert report_main(["diff", a, b, "--json", str(out_path)]) == 0
        capsys.readouterr()
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert doc["schema"] == "repro.obs.diff/v1"
        assert doc["regressions"] == 1
        assert doc["entries"][0]["name"] == "iterations_total"

    def test_unreadable_snapshot_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v9"}', encoding="utf-8")
        good = self.write(tmp_path, "good.json", snapshot_doc())
        assert report_main(["diff", str(bad), good]) == 2
        assert "error:" in capsys.readouterr().err
