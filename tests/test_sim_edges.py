"""Edge cases of the simulation core: zero-length chunks, simultaneous
event ties, and fault windows landing exactly on chunk boundaries.

These are the boundaries where the reference event engine and the
vectorized closed-form engine could most plausibly drift apart, so each
scenario that touches scheduling is asserted byte-identical across both
execution backends on top of its own invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amp.presets import odroid_xu4
from repro.check.backend_diff import decision_bytes, result_key
from repro.check.generators import preset_platform, run_loop
from repro.errors import WorkShareError
from repro.faults.model import plan_from_tuples
from repro.obs import Observability
from repro.runtime.workshare import WorkShare
from repro.sched.registry import parse_schedule
from repro.sim.events import EventQueue
from repro.tracing.trace import ThreadState, TraceRecorder


# -- zero-length chunks -------------------------------------------------------


class TestZeroLengthChunks:
    def test_final_take_clamps_to_end(self):
        ws = WorkShare(0, 10)
        assert ws.take(8) == (0, 8)
        # Only 2 iterations left: the take is clamped, not zero-length.
        assert ws.take(8) == (8, 10)
        assert ws.take(8) is None
        assert ws.dispatch_count == 2
        assert ws.empty_take_count == 1
        assert ws.attempt_count == 3

    def test_empty_pool_is_immediately_exhausted(self):
        ws = WorkShare(5, 5)
        assert ws.n_iterations == 0
        assert ws.exhausted
        assert ws.take(1) is None
        assert ws.dispatch_count == 0

    def test_zero_length_requeue_rejected(self):
        ws = WorkShare(0, 8)
        with pytest.raises(WorkShareError):
            ws.requeue(3, 3)

    def test_take_never_returns_zero_length_range(self):
        # Adversarial draining: whatever the request size, a successful
        # take always removes at least one iteration.
        ws = WorkShare(0, 7)
        sizes = []
        while (r := ws.take(3)) is not None:
            sizes.append(r[1] - r[0])
        assert min(sizes) >= 1
        assert sum(sizes) == 7

    @pytest.mark.parametrize("schedule", ["dynamic,8", "aid_dynamic,1,5"])
    def test_chunk_larger_than_loop_identical_across_backends(
        self, schedule
    ):
        # ni=1 with chunk 8: the very first dispatch clamps to a single
        # iteration and every other thread's take comes up empty.
        spec = parse_schedule(schedule)
        obs_ref, obs_vec = Observability(), Observability()
        ref = run_loop(
            odroid_xu4(), spec, n_iterations=1, obs=obs_ref,
            backend="reference",
        )
        vec = run_loop(
            odroid_xu4(), spec, n_iterations=1, obs=obs_vec,
            backend="vectorized",
        )
        assert sum(ref.iterations) == 1
        assert result_key(ref) == result_key(vec)
        assert decision_bytes(obs_ref) == decision_bytes(obs_vec)


# -- simultaneous-event tie-breaking ------------------------------------------


class TestSimultaneousEventTies:
    def test_cancelling_inside_a_tie_group_preserves_fifo(self):
        q = EventQueue()
        hits = []
        q.push(1.0, lambda: hits.append("a"))
        b = q.push(1.0, lambda: hits.append("b"))
        q.push(1.0, lambda: hits.append("c"))
        q.cancel(b)
        while (ev := q.pop()) is not None:
            ev.action()
        assert hits == ["a", "c"]

    def test_same_time_event_scheduled_during_tie_fires_last(self):
        # An event scheduled *at the current time* from within a
        # same-time group gets the next sequence number, so it fires
        # after every event already queued for that instant — the FIFO
        # rule the thread-wakeup ordering relies on.
        q = EventQueue()
        hits = []
        q.push(2.0, lambda: (hits.append("first"),
                             q.push(2.0, lambda: hits.append("nested"))))
        q.push(2.0, lambda: hits.append("second"))
        while (ev := q.pop()) is not None:
            ev.action()
        assert hits == ["first", "second", "nested"]

    def test_tied_dispatches_are_deterministic_and_backend_identical(self):
        # Uniform costs on a flat dual:2:2 platform make same-type
        # threads finish chunks at exactly equal times; tie-breaking
        # (FIFO by wakeup order) must be reproducible run-over-run and
        # identical between engines.
        platform = preset_platform("dual:2:2")
        spec = parse_schedule("dynamic,1")
        costs = np.full(64, 1e-4)

        def one(backend):
            obs = Observability()
            r = run_loop(
                platform, spec, n_iterations=64, costs=costs, obs=obs,
                backend=backend,
            )
            return result_key(r), decision_bytes(obs)

        ref1, ref2 = one("reference"), one("reference")
        vec = one("vectorized")
        assert ref1 == ref2
        assert ref1 == vec


# -- fault boundaries exactly on chunk boundaries -----------------------------


def _chunk_boundaries(platform, spec, ni, costs):
    """Exact chunk-completion times of the fault-free run."""
    trace = TraceRecorder()
    run_loop(
        platform, spec, n_iterations=ni, costs=costs, trace=trace,
        backend="reference",
    )
    return sorted({
        iv.t1 for iv in trace.intervals if iv.state is ThreadState.COMPUTE
    })


class TestFaultBoundaryOnChunkBoundary:
    @pytest.mark.parametrize("kind", ["throttle", "offline"])
    def test_window_starting_exactly_at_chunk_end(self, kind):
        platform = preset_platform("dual:2:2")
        spec = parse_schedule("dynamic,2")
        ni = 48
        costs = np.full(ni, 2e-4)
        ends = _chunk_boundaries(platform, spec, ni, costs)
        assert len(ends) > 4
        # The window opens at the *exact float* a mid-run chunk ends on.
        t_b = ends[len(ends) // 2]
        if kind == "throttle":
            events = (("throttle", 0, t_b, t_b * 2.0, 0.25),)
        else:
            events = (("offline", 0, t_b),)
        plan = plan_from_tuples(events)

        def one(backend):
            obs = Observability()
            r = run_loop(
                platform, spec, n_iterations=ni, costs=costs,
                faults=plan, obs=obs, backend=backend,
            )
            return r, decision_bytes(obs)

        ref, ref_log = one("reference")
        vec, vec_log = one("vectorized")
        # Every iteration still executes exactly once, the fault made
        # the run no faster, and both backends tell the same story.
        assert sum(ref.iterations) == ni
        assert ref.end_time >= ends[-1]
        assert result_key(ref) == result_key(vec)
        assert ref_log == vec_log

    def test_window_closing_exactly_at_chunk_end(self):
        platform = preset_platform("dual:2:2")
        spec = parse_schedule("dynamic,2")
        ni = 48
        costs = np.full(ni, 2e-4)
        ends = _chunk_boundaries(platform, spec, ni, costs)
        t_b = ends[len(ends) // 2]
        # Throttle from loop start until exactly a chunk boundary.
        plan = plan_from_tuples((("throttle", 1, 0.0, t_b, 0.5),))
        ref = run_loop(
            platform, spec, n_iterations=ni, costs=costs, faults=plan,
            backend="reference",
        )
        vec = run_loop(
            platform, spec, n_iterations=ni, costs=costs, faults=plan,
            backend="vectorized",
        )
        assert sum(ref.iterations) == ni
        assert result_key(ref) == result_key(vec)
