"""Unit tests for the virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(2.5).now == 2.5


def test_negative_start_rejected():
    with pytest.raises(SimulationError):
        VirtualClock(-0.1)


def test_advance_to_moves_forward():
    clock = VirtualClock()
    assert clock.advance_to(1.5) == 1.5
    assert clock.now == 1.5


def test_advance_to_same_time_allowed():
    clock = VirtualClock(3.0)
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_to_past_rejected():
    clock = VirtualClock(5.0)
    with pytest.raises(SimulationError):
        clock.advance_to(4.999)


def test_advance_by_accumulates():
    clock = VirtualClock()
    clock.advance_by(1.0)
    clock.advance_by(0.25)
    assert clock.now == 1.25


def test_advance_by_zero_allowed():
    clock = VirtualClock(1.0)
    clock.advance_by(0.0)
    assert clock.now == 1.0


def test_advance_by_negative_rejected():
    clock = VirtualClock(1.0)
    with pytest.raises(SimulationError):
        clock.advance_by(-1e-9)
