"""Size-bounded LRU eviction with pinning: budget is never exceeded by
unpinned entries, pinned entries always survive, the eviction order is
deterministic, and evicted cells transparently re-cache on the next
sweep."""

import pytest

from repro.amp.presets import odroid_xu4
from repro.errors import FleetError
from repro.experiments.harness import default_configs, grid_specs
from repro.fleet import FleetConfig, FleetProgress, ResultCache, run_jobs
from repro.fleet.cache import MAX_BYTES_ENV
from repro.fleet.jobs import JobSpec
from repro.obs import Observability
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def make_spec(seed=0):
    return JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        root_seed=seed,
    )


@pytest.fixture(scope="module")
def results():
    """Four distinct results (computed once; execution is deterministic)."""
    return [make_spec(seed=i).execute() for i in range(4)]


def entry_size(tmp_path_factory, results):
    probe = ResultCache(tmp_path_factory.mktemp("probe"))
    probe.put(results[0])
    return probe.total_bytes()


def test_budget_is_never_exceeded(tmp_path_factory, results):
    size = entry_size(tmp_path_factory, results)
    cache = ResultCache(
        tmp_path_factory.mktemp("gc"), max_bytes=2 * size + size // 2
    )
    for result in results:
        cache.put(result)
        assert cache.total_bytes() <= cache.max_bytes
    assert len(cache) == 2  # two entries fit the 2.5-entry budget


def test_lru_evicts_least_recently_used_first(tmp_path, results):
    size_probe = ResultCache(tmp_path / "probe")
    size_probe.put(results[0])
    size = size_probe.total_bytes()
    cache = ResultCache(tmp_path / "gc", max_bytes=3 * size + size // 2)
    for result in results[:3]:
        cache.put(result)
    # Touch the oldest entry: it becomes most-recently-used.
    assert cache.get(results[0].digest) is not None
    cache.put(results[3])  # exceeds the 3.5-entry budget -> evict one
    assert cache.get(results[0].digest) is not None, "recently read"
    assert cache.get(results[1].digest) is None, "was the LRU victim"
    assert cache.get(results[2].digest) is not None
    assert cache.get(results[3].digest) is not None


def test_pinned_entries_survive_eviction(tmp_path, results):
    probe = ResultCache(tmp_path / "probe")
    probe.put(results[0])
    size = probe.total_bytes()
    cache = ResultCache(tmp_path / "gc", max_bytes=size + size // 2)
    cache.put(results[0])
    cache.pin(results[0].digest)
    for result in results[1:]:
        cache.put(result)
    # The pinned entry is older than every other write, yet survives.
    assert cache.get(results[0].digest) is not None
    assert cache.pinned() == (results[0].digest,)
    # Unpinned entries were evicted down to the budget.
    unpinned_live = [r for r in results[1:] if cache.get(r.digest)]
    assert len(unpinned_live) <= 1
    # Pin-then-put keeps the pin recorded across a fresh handle.
    fresh = ResultCache(cache.root)
    assert fresh.pinned() == (results[0].digest,)


def test_pinned_set_may_exceed_budget(tmp_path, results):
    probe = ResultCache(tmp_path / "probe")
    probe.put(results[0])
    size = probe.total_bytes()
    cache = ResultCache(tmp_path / "gc", max_bytes=size)
    for result in results[:3]:
        cache.pin(result.digest)  # pin-then-put keeps the pin
        cache.put(result)
    # Nothing evictable: all three pinned entries stay, over budget.
    assert len(cache) == 3
    assert cache.total_bytes() > cache.max_bytes
    assert cache.evict_to_budget() == []


def test_eviction_order_is_deterministic(tmp_path, results):
    """Same access sequence, two independent stores: byte-identical
    persisted index (same logical clock, same survivors) and identical
    live entries — the eviction order is a pure function of the access
    sequence."""
    probe = ResultCache(tmp_path / "probe")
    probe.put(results[0])
    size = probe.total_bytes()

    def drive(root):
        cache = ResultCache(root, max_bytes=2 * size + size // 2)
        for result in results:
            cache.put(result)
        cache.get(results[3].digest)
        cache.put(results[0])
        cache.flush()
        return (
            (root / "index.json").read_text(encoding="utf-8"),
            sorted(e.name for e in root.glob("??/*.json")),
        )

    index_a, live_a = drive(tmp_path / "a")
    index_b, live_b = drive(tmp_path / "b")
    assert index_a == index_b
    assert live_a == live_b


def test_evicted_cells_recache_on_next_sweep(tmp_path):
    """A warm sweep over an eviction-tightened cache recomputes the
    evicted cells, re-caches them, and still produces identical
    results."""
    specs = grid_specs(
        odroid_xu4(),
        [get_program("EP"), get_program("IS")],
        default_configs()[:2],
    )
    unbounded = ResultCache(tmp_path / "ref")
    reference = run_jobs(specs, FleetConfig(jobs=1), cache=unbounded)
    per_entry = unbounded.total_bytes() // len(specs)

    cache = ResultCache(
        tmp_path / "gc", max_bytes=2 * per_entry + per_entry // 2
    )
    run_jobs(specs, FleetConfig(jobs=1), cache=cache)
    assert len(cache) < len(specs), "the budget must have evicted"

    progress = FleetProgress()
    warm = run_jobs(
        specs, FleetConfig(jobs=1), cache=cache, progress=progress
    )
    assert [o.result for o in warm] == [o.result for o in reference]
    assert progress.count("fleet_jobs_computed") >= 1, "evicted -> recompute"
    assert progress.count("fleet_cache_hits") >= 1, "survivors still hit"
    assert cache.total_bytes() <= cache.max_bytes


def test_eviction_is_counted(tmp_path, results):
    probe = ResultCache(tmp_path / "probe")
    probe.put(results[0])
    size = probe.total_bytes()
    obs = Observability()
    cache = ResultCache(
        tmp_path / "gc", obs=obs, max_bytes=size + size // 2
    )
    for result in results[:2]:
        cache.put(result)
    assert obs.registry.counter("fleet_cache_evictions_total").value == 1
    gauges = {
        g["name"]: g["value"] for g in obs.registry.snapshot()["gauges"]
    }
    assert gauges["fleet_cache_bytes"] <= size + size // 2


def test_env_var_sets_budget(tmp_path, results, monkeypatch):
    probe = ResultCache(tmp_path / "probe")
    probe.put(results[0])
    size = probe.total_bytes()
    monkeypatch.setenv(MAX_BYTES_ENV, str(size + size // 2))
    cache = ResultCache(tmp_path / "gc")
    assert cache.max_bytes == size + size // 2
    for result in results[:2]:
        cache.put(result)
    assert len(cache) == 1


def test_invalid_budget_rejected(tmp_path, monkeypatch):
    with pytest.raises(FleetError):
        ResultCache(tmp_path, max_bytes=0)
    with pytest.raises(FleetError):
        ResultCache(tmp_path, max_bytes=-5)
    monkeypatch.setenv(MAX_BYTES_ENV, "lots")
    with pytest.raises(FleetError):
        ResultCache(tmp_path)


def test_stats_reports_shape(tmp_path, results):
    cache = ResultCache(tmp_path, max_bytes=10**9)
    cache.put(results[0])
    cache.pin(results[0].digest)
    stats = cache.stats()
    assert stats["layout"] == "sharded/v1"
    assert stats["entries"] == stats["indexed"] == stats["pinned"] == 1
    assert stats["bytes"] == cache.total_bytes()
    assert stats["max_bytes"] == 10**9
