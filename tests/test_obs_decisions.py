"""Unit tests for the scheduler decision log and its schema."""

import numpy as np
import pytest

from repro.amp.presets import dual_speed_platform
from repro.errors import ObsError
from repro.obs import Observability
from repro.obs.decisions import (
    REQUIRED_FIELDS,
    DecisionEmitter,
    DecisionLog,
    NullDecisionLog,
    sf_as_json,
)
from repro.sched.aid_dynamic import AidDynamicSpec
from repro.sched.aid_hybrid import AidHybridSpec
from repro.sched.aid_static import AidStaticSpec

from tests.helpers import run_loop


class TestDecisionLog:
    def test_record_core_fields_and_seq(self):
        log = DecisionLog()
        log.record(loop="L", scheduler="s", tid=2, t=0.5, event="e", extra=1)
        log.record(loop="L", scheduler="s", tid=0, t=0.7, event="f")
        assert len(log) == 2
        rec = log.records[0]
        assert all(f in rec for f in REQUIRED_FIELDS)
        assert rec["seq"] == 0 and log.records[1]["seq"] == 1
        assert rec["extra"] == 1
        log.validate()

    def test_queries(self):
        log = DecisionLog()
        log.record(loop="a", scheduler="s", tid=0, t=0.0, event="x")
        log.record(loop="b", scheduler="s", tid=0, t=0.1, event="y")
        assert [r["loop"] for r in log.for_loop("a")] == ["a"]
        assert [r["event"] for r in log.events("y")] == ["y"]
        assert list(log) == log.records

    def test_validate_rejects_missing_field(self):
        log = DecisionLog()
        log.record(loop="L", scheduler="s", tid=0, t=0.0, event="e")
        del log.records[0]["tid"]
        with pytest.raises(ObsError, match="missing"):
            log.validate()

    def test_validate_rejects_bad_seq(self):
        log = DecisionLog()
        log.record(loop="L", scheduler="s", tid=0, t=0.0, event="e")
        log.records[0]["seq"] = 5
        with pytest.raises(ObsError, match="seq"):
            log.validate()

    def test_jsonl_round_trip(self, tmp_path):
        log = DecisionLog()
        log.record(loop="L", scheduler="s", tid=0, t=0.25, event="e",
                   sf=sf_as_json({0: 1.0, 1: 2.0}), range=[0, 5])
        path = tmp_path / "decisions.jsonl"
        text = log.write_jsonl(path)
        assert path.read_text() == text
        assert DecisionLog.load_jsonl(path) == log.records

    def test_null_log_discards(self):
        log = NullDecisionLog()
        log.record(loop="L", scheduler="s", tid=0, t=0.0, event="e")
        assert len(log) == 0
        assert log.enabled is False


class TestDecisionEmitter:
    def test_emitter_binds_names(self):
        obs = Observability()
        dec = DecisionEmitter(obs, "my.loop", "aid_static")
        assert dec.on
        dec.emit(3, 1.5, "sample_start", chunk_target=1)
        rec = obs.decisions.records[0]
        assert rec["loop"] == "my.loop"
        assert rec["scheduler"] == "aid_static"
        assert rec["tid"] == 3 and rec["t"] == 1.5
        assert rec["event"] == "sample_start"

    def test_emitter_off_for_null_obs(self):
        dec = DecisionEmitter(Observability.disabled(), "l", "s")
        assert dec.on is False
        dec.emit(0, 0.0, "e")


def test_sf_as_json():
    assert sf_as_json(None) is None
    assert sf_as_json({0: 1.0, 1: 2.5}) == {"0": 1.0, "1": 2.5}


# -- end-to-end: schedulers populate the log --------------------------------


PLATFORM = dual_speed_platform(2, 4, big_speedup=3.0)


def run_with_obs(spec, n_iterations=300, seed=11):
    obs = Observability()
    rng = np.random.default_rng(seed)
    costs = rng.uniform(5e-5, 2e-4, n_iterations)
    result = run_loop(PLATFORM, spec, n_iterations=n_iterations,
                      costs=costs, obs=obs)
    return obs, result


class TestSchedulerEmissions:
    def test_aid_static_records_sampling_and_allotment(self):
        obs, _ = run_with_obs(AidStaticSpec())
        obs.decisions.validate()
        events = {r["event"] for r in obs.decisions.records}
        assert {"sample_start", "sample_complete",
                "publish_targets", "aid_allotment"} <= events
        # Exactly one SF publication per loop invocation.
        pubs = obs.decisions.events("publish_targets")
        assert len(pubs) == 1
        pub = pubs[0]
        assert pub["scheduler"] == "aid_static"
        assert pub["sf"]["0"] == 1.0
        assert len(pub["mean_times"]) == PLATFORM.n_core_types
        assert len(pub["targets"]) == PLATFORM.n_core_types

    def test_aid_hybrid_label_and_drain(self):
        obs, _ = run_with_obs(AidHybridSpec(percentage=60.0))
        schedulers = {r["scheduler"] for r in obs.decisions.records}
        assert schedulers == {"aid_hybrid"}
        assert obs.decisions.events("drain_steal")  # the dynamic tail

    def test_aid_dynamic_phases_and_sf(self):
        obs, _ = run_with_obs(AidDynamicSpec(), n_iterations=600)
        obs.decisions.validate()
        events = {r["event"] for r in obs.decisions.records}
        assert {"sample_start", "sample_complete",
                "publish_ratio", "phase_join"} <= events
        pub = obs.decisions.events("publish_ratio")[0]
        assert len(pub["ratio"]) == PLATFORM.n_core_types
        join = obs.decisions.events("phase_join")[0]
        assert join["chunk_target"] >= 1
        assert join["range"][1] > join["range"][0]

    def test_every_record_carries_loop_name(self):
        obs, _ = run_with_obs(AidStaticSpec())
        assert {r["loop"] for r in obs.decisions.records} == {"test.loop300"}

    def test_disabled_obs_records_nothing(self):
        result = run_loop(PLATFORM, AidStaticSpec(), n_iterations=300)
        # Default run: NULL_OBS — nothing to assert on the log, but the
        # run must succeed with zero instrumentation side effects.
        assert sum(result.iterations) == 300
