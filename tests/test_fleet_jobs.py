"""Tests for the fleet job model: digests, execution, result payloads."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amp.presets import dual_speed_platform, odroid_xu4
from repro.errors import FleetError
from repro.experiments.harness import ScheduleConfig, run_one
from repro.fleet import jobs as jobs_mod
from repro.fleet.jobs import JobResult, JobSpec, canonical
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def spec_for(
    program="EP",
    schedule="aid_static",
    affinity="BS",
    seed=0,
    label="",
    platform=None,
    **kwargs,
):
    return JobSpec(
        program=get_program(program),
        platform=platform if platform is not None else odroid_xu4(),
        env=OmpEnv(schedule=schedule, affinity=affinity),
        root_seed=seed,
        label=label,
        **kwargs,
    )


# -- digests ---------------------------------------------------------------


def test_equal_specs_equal_digests():
    assert spec_for().digest() == spec_for().digest()


def test_digest_ignores_label():
    assert spec_for(label="a").digest() == spec_for(label="b").digest()


@pytest.mark.parametrize(
    "variant",
    [
        dict(program="IS"),
        dict(schedule="dynamic,1"),
        dict(affinity="SB"),
        dict(seed=7),
        dict(capture_sf_loop="ep.main"),
        dict(use_offline_sf=True),
        dict(platform=dual_speed_platform(2, 2)),
    ],
)
def test_digest_sensitive_to_identity_fields(variant):
    assert spec_for(**variant).digest() != spec_for().digest()


def test_digest_changes_with_salt():
    base = spec_for()
    assert base.digest() != base.digest(salt="other-version")
    assert base.digest() == base.digest(salt=jobs_mod.CODE_SALT)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    label=st.text(max_size=12),
)
def test_digest_property_label_free_seed_keyed(seed, label):
    """Property: the digest is a function of the seed, never the label."""
    a = spec_for(seed=seed, label=label)
    b = spec_for(seed=seed, label="")
    assert a.digest() == b.digest()
    assert len(a.digest()) == 64
    if seed != 0:
        assert a.digest() != spec_for(seed=0).digest()


def test_canonical_rejects_unknown_types():
    with pytest.raises(FleetError):
        canonical(object())


def test_canonical_is_json_stable():
    payload = spec_for().payload()
    a = json.dumps(payload, sort_keys=True)
    b = json.dumps(spec_for().payload(), sort_keys=True)
    assert a == b


# -- spec validation -------------------------------------------------------


def test_offline_sf_requires_aid_static():
    with pytest.raises(FleetError):
        spec_for(schedule="dynamic,1", use_offline_sf=True)


# -- execution -------------------------------------------------------------


def test_execute_matches_run_one():
    spec = spec_for(schedule="aid_hybrid,80")
    direct = run_one(
        odroid_xu4(),
        get_program("EP"),
        ScheduleConfig("x", OmpEnv(schedule="aid_hybrid,80", affinity="BS")),
    )
    result = spec.execute()
    assert result.completion_time == direct.completion_time
    assert result.serial_time == direct.serial_time
    assert result.total_dispatches == direct.total_dispatches
    assert result.digest == spec.key
    assert result.duration > 0


def test_execute_captures_sf_series():
    spec = spec_for(program="blackscholes", capture_sf_loop="bs.price")
    result = spec.execute()
    series = result.sf_series_dicts()
    assert series, "blackscholes aid_static must publish SF estimates"
    assert all(isinstance(sf, dict) and 1 in sf for sf in series)


# -- result payload round-trip --------------------------------------------


def test_job_result_round_trips_through_json():
    result = spec_for(program="blackscholes", capture_sf_loop="bs.price").execute()
    doc = json.loads(json.dumps(result.to_payload(), sort_keys=True))
    back = JobResult.from_payload(doc)
    assert back == result
    # obs_json participates in equality, so the capture round-trips too.
    assert back.obs_json == result.obs_json


def test_execute_captures_worker_side_observability():
    from repro.obs.merge import JOB_SCHEMA

    result = spec_for(schedule="aid_hybrid,80").execute()
    snap = result.obs_snapshot()
    assert snap is not None and snap["schema"] == JOB_SCHEMA
    names = {c["name"] for c in snap["metrics"]["counters"]}
    assert "dispatches_total" in names
    assert "runtime_overhead_seconds_total" in names
    # AID schedulers decide; the digest travels, the raw records do not.
    assert snap["decisions"]["total"] > 0
    assert "aid_hybrid" in snap["decisions"]["schedulers"]


def test_obs_capture_is_deterministic_across_executions():
    a = spec_for(schedule="aid_static").execute()
    b = spec_for(schedule="aid_static").execute()
    assert a.obs_json == b.obs_json  # canonical string equality


def test_payload_embeds_obs_as_a_document():
    result = spec_for().execute()
    doc = result.to_payload()
    assert "obs_json" not in doc
    assert isinstance(doc["obs"], dict)  # greppable, not a nested string
    back = JobResult.from_payload(json.loads(json.dumps(doc)))
    assert back.obs_json == result.obs_json


def test_job_result_rejects_malformed_payload():
    with pytest.raises(FleetError):
        JobResult.from_payload({"digest": "x"})
