"""Unit tests for AID-static (the Fig. 3 state machine)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.perfmodel.overhead import ZERO_OVERHEAD
from repro.sched.aid_static import AidStaticSpec
from repro.sched.static import StaticSpec
from repro.sched import aid_common as ac

from tests.helpers import assert_valid_partition, run_loop


def test_name_and_validation():
    assert AidStaticSpec().name == "aid_static"
    assert AidStaticSpec(use_offline_sf=True).name == "aid_static(offline-SF)"
    assert AidStaticSpec().requires_bs_mapping
    assert AidStaticSpec(use_offline_sf=True).needs_offline_sf
    with pytest.raises(ConfigError):
        AidStaticSpec(sampling_chunk=0)


def test_partitions_iterations(platform_a):
    for n in (8, 100, 1024):
        result = run_loop(platform_a, AidStaticSpec(), n_iterations=n)
        assert_valid_partition(result, n)


def test_distribution_proportional_to_speed_on_flat_platform(flat2x):
    """On a flat-2x AMP with uniform costs, each big-core thread should
    end up with ~2x the iterations of a small-core thread: the paper's
    SF*k / k split with SF = 2."""
    result = run_loop(flat2x, AidStaticSpec(), n_iterations=600)
    big = result.iterations[:2]
    small = result.iterations[2:]
    for b in big:
        for s in small:
            assert b / s == pytest.approx(2.0, rel=0.15)


def test_balances_far_better_than_static(flat2x):
    static = run_loop(flat2x, StaticSpec(), n_iterations=600)
    aid = run_loop(flat2x, AidStaticSpec(), n_iterations=600)
    assert aid.end_time < static.end_time
    assert aid.imbalance < static.imbalance / 2


def test_few_dispatches(flat2x):
    """AID-static's selling point vs dynamic: a handful of pool removals
    per thread (sampling + wait steals + one final allotment)."""
    result = run_loop(flat2x, AidStaticSpec(), n_iterations=2000)
    assert result.dispatches < 2000 / 10


def test_estimates_sf_on_flat_platform(flat2x):
    result = run_loop(flat2x, AidStaticSpec(), n_iterations=600)
    sf = result.estimated_sf
    assert sf is not None
    assert sf[0] == 1.0
    assert sf[1] == pytest.approx(2.0, rel=0.1)


def test_sampled_sf_close_to_model_sf_on_platform_a(platform_a):
    from repro.perfmodel.speed import PerfModel
    from repro.amp.topology import bs_mapping
    from tests.helpers import PLAIN_KERNEL

    result = run_loop(platform_a, AidStaticSpec(), n_iterations=1000)
    perf = PerfModel(platform_a)
    cpus = tuple(bs_mapping(platform_a).cpu_of_tid)
    expected = perf.speedup_factor(
        PLAIN_KERNEL, platform_a.core_types[1], cpu_of_tid=cpus
    )
    assert result.estimated_sf[1] == pytest.approx(expected, rel=0.1)


def test_offline_sf_variant_skips_sampling(flat2x):
    result = run_loop(
        flat2x,
        AidStaticSpec(use_offline_sf=True),
        n_iterations=600,
        offline_sf={0: 1.0, 1: 2.0},
    )
    assert_valid_partition(result, 600)
    # One allotment per thread (+ drain attempts); far fewer than with
    # sampling and waiting.
    assert result.dispatches <= 2 * 4
    big, small = result.iterations[0], result.iterations[-1]
    assert big / small == pytest.approx(2.0, rel=0.05)


def test_offline_sf_missing_table_raises(flat2x):
    with pytest.raises(ConfigError):
        run_loop(
            flat2x,
            AidStaticSpec(use_offline_sf=True),
            n_iterations=100,
            offline_sf=None,
        )


def test_tiny_loop_terminates(flat2x):
    """Pool drains during sampling: every thread must still retire."""
    for n in (1, 2, 3, 4):
        result = run_loop(flat2x, AidStaticSpec(), n_iterations=n)
        assert sum(result.iterations) == n


def test_sampling_chunk_respected(flat2x):
    result = run_loop(flat2x, AidStaticSpec(sampling_chunk=4), n_iterations=400)
    # The first range of each thread (its sampling chunk) has size 4.
    first_range_by_tid = {}
    for tid, lo, hi in result.ranges:
        first_range_by_tid.setdefault(tid, hi - lo)
    assert all(size == 4 for size in first_range_by_tid.values())


def test_nc_three_core_types(tri_platform):
    """The paper's NC >= 2 generalization: k = NI / sum(N_j * SF_j)."""
    result = run_loop(tri_platform, AidStaticSpec(), n_iterations=900)
    assert_valid_partition(result, 900)
    # Iterations ordered by core speed: big threads (0-1) > medium (2-3)
    # > little (4-5).
    assert min(result.iterations[0:2]) > max(result.iterations[2:4])
    assert min(result.iterations[2:4]) > max(result.iterations[4:6])


class TestAidTargets:
    def test_two_type_formula_matches_paper(self):
        # NI = N_B*SF*k + N_S*k  =>  k = NI/(N_B*SF + N_S)
        targets = ac.aid_targets(1200, {0: 1.0, 1: 2.0}, (4, 4))
        k = 1200 / (4 * 2.0 + 4)
        assert targets[0] == round(k)
        assert targets[1] == round(2.0 * k)

    def test_totals_close_to_ni(self):
        for ni in (100, 999, 4096):
            targets = ac.aid_targets(ni, {0: 1.0, 1: 3.3}, (4, 4))
            total = 4 * targets[0] + 4 * targets[1]
            assert abs(total - ni) <= 8  # rounding residue only

    def test_symmetric_team_gets_even_split(self):
        targets = ac.aid_targets(800, {0: 1.0}, (8,))
        assert targets == [100]
