"""Unit tests for the discrete-event loop executor."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.perfmodel.locality import LocalityModel
from repro.perfmodel.overhead import ZERO_OVERHEAD, OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.executor import LoopExecutor
from repro.sched.dynamic import DynamicSpec
from repro.sched.static import StaticSpec
from repro.tracing.trace import ThreadState, TraceRecorder

from tests.helpers import PLAIN_KERNEL, make_loop, run_loop


def make_executor(platform, **kw):
    from repro.amp.topology import bs_mapping
    from repro.runtime.team import Team

    team = Team(platform, bs_mapping(platform))
    kw.setdefault("overhead", ZERO_OVERHEAD)
    kw.setdefault("locality", LocalityModel(enabled=False))
    return LoopExecutor(team, PerfModel(platform), **kw)


class TestInlineStatic:
    def test_timing_is_exact_on_flat_platform(self, flat2x):
        ex = make_executor(flat2x)
        loop = make_loop(400, work=1e-4)
        costs = np.full(400, 1e-4)
        result = ex.run_inline_static(loop, costs)
        # Each thread gets 100 iterations; big rate 2, small rate 1.
        assert result.finish_times[0] == pytest.approx(100 * 1e-4 / 2)
        assert result.finish_times[3] == pytest.approx(100 * 1e-4 / 1)
        assert result.end_time == pytest.approx(0.01)
        assert result.dispatches == 0

    def test_start_time_offsets(self, flat2x):
        ex = make_executor(flat2x)
        loop = make_loop(40)
        costs = np.full(40, 1e-4)
        r0 = ex.run_inline_static(loop, costs, start_time=0.0)
        r1 = ex.run_inline_static(loop, costs, start_time=5.0)
        assert r1.end_time == pytest.approx(r0.end_time + 5.0)


class TestRuntimeScheduledRun:
    def test_cost_vector_length_checked(self, flat2x):
        ex = make_executor(flat2x)
        loop = make_loop(100)
        with pytest.raises(SimulationError):
            ex.run(loop, np.ones(99), StaticSpec())

    def test_dynamic_timing_flat_zero_overhead(self, flat2x):
        """With zero overhead and chunk 1, dynamic approaches the ideal
        makespan NI*c / sum(rates)."""
        result = run_loop(flat2x, DynamicSpec(1), n_iterations=1200, work=1e-4)
        ideal = 1200 * 1e-4 / 6.0
        assert result.end_time == pytest.approx(ideal, rel=0.02)

    def test_overhead_accounted(self, flat2x):
        overhead = OverheadModel(
            dispatch_cost=1e-6,
            loop_start_cost=0.0,
            barrier_cost=0.0,
            timestamp_cost=0.0,
            atomic_contention=0.0,
            atomic_service=0.0,
            wake_stagger=0.0,
            wake_jitter=0.0,
        )
        with_oh = run_loop(
            flat2x, DynamicSpec(1), n_iterations=500, work=1e-4, overhead=overhead
        )
        without = run_loop(
            flat2x, DynamicSpec(1), n_iterations=500, work=1e-4
        )
        assert with_oh.end_time > without.end_time
        assert with_oh.scheduler_calls >= 500 + 4

    def test_atomic_serialization_bounds_throughput(self, flat2x):
        """When per-iteration time is far below the atomic service time,
        the loop cannot complete faster than NI * service."""
        svc = 1e-6
        overhead = OverheadModel(
            dispatch_cost=0.0,
            loop_start_cost=0.0,
            barrier_cost=0.0,
            timestamp_cost=0.0,
            atomic_contention=0.0,
            atomic_service=svc,
            wake_stagger=0.0,
            wake_jitter=0.0,
        )
        n = 1000
        result = run_loop(
            flat2x, DynamicSpec(1), n_iterations=n, work=1e-9, overhead=overhead
        )
        assert result.end_time >= n * svc * 0.99

    def test_mismatched_iterations_detected(self, flat2x):
        """A scheduler that loses iterations must be caught."""
        from repro.sched.base import LoopScheduler, ScheduleSpec
        from dataclasses import dataclass

        class LossyScheduler(LoopScheduler):
            def next_range(self, tid, now):
                # Take chunks but claim only half of each range.
                got = self.ctx.workshare.take(10)
                if got is None:
                    return None
                lo, hi = got
                return (lo, lo + (hi - lo) // 2) if hi - lo > 1 else got

        @dataclass(frozen=True)
        class LossySpec(ScheduleSpec):
            @property
            def name(self):
                return "lossy"

            def create(self, ctx):
                return LossyScheduler(ctx)

        ex = make_executor(flat2x)
        loop = make_loop(100)
        with pytest.raises(SimulationError):
            ex.run(loop, np.full(100, 1e-4), LossySpec())

    def test_trace_recording(self, flat2x):
        from repro.amp.topology import bs_mapping
        from repro.runtime.team import Team

        recorder = TraceRecorder()
        team = Team(flat2x, bs_mapping(flat2x))
        ex = LoopExecutor(
            team,
            PerfModel(flat2x),
            OverheadModel(),
            recorder=recorder,
            locality=LocalityModel(enabled=False),
        )
        loop = make_loop(64)
        ex.run(loop, np.full(64, 1e-4), DynamicSpec(4))
        recorder.validate_non_overlapping()
        assert recorder.thread_ids() == [0, 1, 2, 3]
        assert recorder.time_in_state(0, ThreadState.COMPUTE) > 0
        assert recorder.time_in_state(0, ThreadState.RUNTIME) > 0

    def test_wake_jitter_reproducible(self, flat2x):
        ex = make_executor(flat2x, overhead=OverheadModel())
        loop = make_loop(200)
        costs = np.full(200, 1e-5)
        r1 = ex.run(loop, costs, DynamicSpec(1), rng=np.random.default_rng(5))
        r2 = ex.run(loop, costs, DynamicSpec(1), rng=np.random.default_rng(5))
        r3 = ex.run(loop, costs, DynamicSpec(1), rng=np.random.default_rng(6))
        assert r1.end_time == r2.end_time
        assert r1.ranges == r2.ranges
        assert r1.ranges != r3.ranges  # different arrival order

    def test_rates_reflect_team_contention(self, platform_a):
        ex = make_executor(platform_a)
        small_ws = make_loop(10, kernel=PLAIN_KERNEL)
        rates = ex.rates_for(small_ws)
        assert len(rates) == 8
        # BS: threads 0-3 on big cores are faster.
        assert min(rates[:4]) > max(rates[4:])
