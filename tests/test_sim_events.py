"""Unit tests for the event queue and simulator driver."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue, Simulator


def test_empty_queue():
    q = EventQueue()
    assert len(q) == 0
    assert not q
    assert q.pop() is None
    assert q.peek_time() is None


def test_pops_in_time_order():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append("c"))
    q.push(1.0, lambda: fired.append("a"))
    q.push(2.0, lambda: fired.append("b"))
    while (ev := q.pop()) is not None:
        ev.action()
    assert fired == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    q = EventQueue()
    fired = []
    for name in "abcde":
        q.push(1.0, lambda n=name: fired.append(n))
    while (ev := q.pop()) is not None:
        ev.action()
    assert fired == list("abcde")


def test_negative_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(-1.0, lambda: None)


def test_cancel_removes_event():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None, tag="keep")
    q.cancel(ev)
    assert len(q) == 1
    popped = q.pop()
    assert popped is not None and popped.tag == "keep"


def test_double_cancel_rejected():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.cancel(ev)
    with pytest.raises(SimulationError):
        q.cancel(ev)


def test_peek_skips_cancelled():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    q.cancel(ev)
    assert q.peek_time() == 5.0


def test_simulator_advances_clock():
    sim = Simulator(VirtualClock())
    times = []
    sim.at(1.0, lambda: times.append(sim.now))
    sim.at(2.5, lambda: times.append(sim.now))
    executed = sim.run()
    assert executed == 2
    assert times == [1.0, 2.5]
    assert sim.now == 2.5


def test_simulator_after_is_relative():
    sim = Simulator(VirtualClock(10.0))
    out = []
    sim.after(0.5, lambda: out.append(sim.now))
    sim.run()
    assert out == [10.5]


def test_simulator_rejects_past_events():
    sim = Simulator(VirtualClock(5.0))
    with pytest.raises(SimulationError):
        sim.at(4.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda: None)


def test_simulator_events_can_schedule_events():
    sim = Simulator(VirtualClock())
    hits = []

    def recurse(depth: int) -> None:
        hits.append(sim.now)
        if depth:
            sim.after(1.0, lambda: recurse(depth - 1))

    sim.at(0.0, lambda: recurse(3))
    sim.run()
    assert hits == [0.0, 1.0, 2.0, 3.0]


def test_simulator_event_budget():
    sim = Simulator(VirtualClock())

    def forever() -> None:
        sim.after(1.0, forever)

    sim.at(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_simulator_counts_steps():
    sim = Simulator(VirtualClock())
    for t in range(5):
        sim.at(float(t), lambda: None)
    sim.run()
    assert sim.steps == 5
