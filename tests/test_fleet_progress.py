"""Tests for fleet observability: counters, events, summaries, JSONL."""

import json

from repro.amp.presets import odroid_xu4
from repro.fleet import FleetProgress, JobSpec
from repro.fleet.progress import COUNTERS, NULL_PROGRESS
from repro.obs import build_snapshot
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def make_spec():
    return JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        label="static(BS)",
    )


def test_counters_start_at_zero():
    progress = FleetProgress()
    for name in COUNTERS:
        assert progress.count(name) == 0
    assert progress.summary()["jobs_submitted"] == 0


def test_lifecycle_counts_and_events():
    progress = FleetProgress()
    spec = make_spec()
    progress.job_submitted(spec)
    progress.cache_miss(spec)
    progress.job_started(spec, mode="process", attempt=1)
    progress.job_retried(spec, attempt=1, reason="worker crashed")
    progress.job_started(spec, mode="process", attempt=2)
    progress.job_completed(spec, duration=0.25, attempts=2)
    s = progress.summary()
    assert s["jobs_submitted"] == 1
    assert s["cache_misses"] == 1
    assert s["retries"] == 1
    assert s["jobs_computed"] == 1
    assert s["failures"] == 0
    events = [e["event"] for e in progress.events]
    assert events == [
        "submitted", "cache_miss", "started", "retried", "started",
        "completed",
    ]
    assert all(e["digest"] == spec.key for e in progress.events)
    assert [e["seq"] for e in progress.events] == list(range(len(events)))
    assert "1 jobs" in progress.format_summary()


def test_events_jsonl_round_trip(tmp_path):
    progress = FleetProgress()
    spec = make_spec()
    progress.job_submitted(spec)
    progress.job_failed(spec, "boom")
    path = progress.write_events_jsonl(tmp_path / "events.jsonl")
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert records[1]["event"] == "failed" and records[1]["error"] == "boom"


def test_counters_ride_the_standard_obs_snapshot():
    progress = FleetProgress()
    progress.job_submitted(make_spec())
    snap = build_snapshot(progress.obs, meta={"run": "fleet"})
    names = {c["name"] for c in snap["metrics"]["counters"]}
    assert "fleet_jobs_submitted" in names
    assert "fleet_failures" in names
    hists = {h["name"] for h in snap["metrics"]["histograms"]}
    assert "fleet_job_duration_seconds" in hists


def test_null_progress_is_inert():
    spec = make_spec()
    NULL_PROGRESS.job_submitted(spec)
    NULL_PROGRESS.job_completed(spec, duration=1.0, attempts=1)
    NULL_PROGRESS.degraded(spec, "reason")
    assert NULL_PROGRESS.events == []
    assert NULL_PROGRESS.count("fleet_jobs_submitted") == 0
