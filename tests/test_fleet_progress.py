"""Tests for fleet observability: counters, events, summaries, JSONL,
and the per-job capture merge (job_obs / duration-estimate gauges)."""

import json

from repro.amp.presets import odroid_xu4
from repro.fleet import FleetProgress, JobSpec, ResultCache
from repro.fleet.progress import COUNTERS, NULL_PROGRESS
from repro.obs import Observability, build_snapshot
from repro.obs.merge import job_snapshot_json
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def make_spec():
    return JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        label="static(BS)",
    )


def test_counters_start_at_zero():
    progress = FleetProgress()
    for name in COUNTERS:
        assert progress.count(name) == 0
    assert progress.summary()["jobs_submitted"] == 0


def test_lifecycle_counts_and_events():
    progress = FleetProgress()
    spec = make_spec()
    progress.job_submitted(spec)
    progress.cache_miss(spec)
    progress.job_started(spec, mode="process", attempt=1)
    progress.job_retried(spec, attempt=1, reason="worker crashed")
    progress.job_started(spec, mode="process", attempt=2)
    progress.job_completed(spec, duration=0.25, attempts=2)
    s = progress.summary()
    assert s["jobs_submitted"] == 1
    assert s["cache_misses"] == 1
    assert s["retries"] == 1
    assert s["jobs_computed"] == 1
    assert s["failures"] == 0
    events = [e["event"] for e in progress.events]
    assert events == [
        "submitted", "cache_miss", "started", "retried", "started",
        "completed",
    ]
    assert all(e["digest"] == spec.key for e in progress.events)
    assert [e["seq"] for e in progress.events] == list(range(len(events)))
    assert "1 jobs" in progress.format_summary()


def test_events_jsonl_round_trip(tmp_path):
    progress = FleetProgress()
    spec = make_spec()
    progress.job_submitted(spec)
    progress.job_failed(spec, "boom")
    path = progress.write_events_jsonl(tmp_path / "events.jsonl")
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert records[1]["event"] == "failed" and records[1]["error"] == "boom"


def test_counters_ride_the_standard_obs_snapshot():
    progress = FleetProgress()
    progress.job_submitted(make_spec())
    snap = build_snapshot(progress.obs, meta={"run": "fleet"})
    names = {c["name"] for c in snap["metrics"]["counters"]}
    assert "fleet_jobs_submitted" in names
    assert "fleet_failures" in names
    hists = {h["name"] for h in snap["metrics"]["histograms"]}
    assert "fleet_job_duration_seconds" in hists


def make_result(spec, dispatches=5):
    """A JobResult carrying a small synthetic obs capture."""
    from repro.fleet.jobs import JobResult

    obs = Observability()
    obs.registry.counter("dispatches_total", loop="L", tid=0).inc(dispatches)
    obs.decisions.record(
        loop="L", scheduler="aid_static", tid=0, t=0.0, event="publish_targets"
    )
    return JobResult(
        digest=spec.key,
        program=spec.program.name,
        schedule=spec.env.schedule,
        completion_time=1.0,
        serial_time=0.1,
        total_dispatches=dispatches,
        duration=0.01,
        obs_json=job_snapshot_json(obs),
    )


def test_job_obs_merges_capture_with_identity_labels():
    progress = FleetProgress()
    spec = make_spec()
    progress.job_obs(spec, make_result(spec, dispatches=5))
    assert progress.merged.jobs == 1
    assert progress.obs.registry.value(
        "dispatches_total",
        loop="L", tid=0,
        program="EP", config="static(BS)", platform=spec.platform.name,
    ) == 5
    doc = progress.obs_snapshot(meta={"run": "t"})
    assert doc["merged_jobs"] == 1
    assert doc["decision_summary"]["schedulers"]["aid_static"]["total"] == 1


def test_job_obs_tolerates_results_without_a_capture():
    from repro.fleet.jobs import JobResult

    progress = FleetProgress()
    spec = make_spec()
    result = JobResult(
        digest=spec.key, program="EP", schedule="static",
        completion_time=1.0, serial_time=0.1, total_dispatches=3,
        duration=0.01, obs_json=None,
    )
    progress.job_obs(spec, result)
    assert progress.merged.jobs == 0


def test_record_duration_estimates_publishes_gauges(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.note_duration(spec, 0.5)
    progress = FleetProgress()
    progress.record_duration_estimates(cache, [spec])
    assert progress.obs.registry.value(
        "fleet_duration_estimate_seconds", profile=spec.profile_key
    ) == 0.5
    # Profiles the cache has never timed publish nothing.
    other = JobSpec(
        program=get_program("IS"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="dynamic,1", affinity="SB"),
    )
    progress.record_duration_estimates(cache, [other])
    snap = progress.obs.registry.snapshot()
    gauges = [
        g for g in snap["gauges"]
        if g["name"] == "fleet_duration_estimate_seconds"
    ]
    assert len(gauges) == 1


def test_null_progress_is_inert():
    spec = make_spec()
    NULL_PROGRESS.job_submitted(spec)
    NULL_PROGRESS.job_completed(spec, duration=1.0, attempts=1)
    NULL_PROGRESS.degraded(spec, "reason")
    NULL_PROGRESS.job_obs(spec, make_result(spec))
    NULL_PROGRESS.record_duration_estimates(None, [spec])
    assert NULL_PROGRESS.events == []
    assert NULL_PROGRESS.count("fleet_jobs_submitted") == 0
    doc = NULL_PROGRESS.obs_snapshot(meta={"x": 1})
    assert doc["merged_jobs"] == 0 and doc["meta"] == {"x": 1}
