"""Unit tests for the LLC-contention model."""

import pytest

from repro.amp.presets import odroid_xu4
from repro.perfmodel.contention import ContentionModel, llc_share
from repro.perfmodel.kernel import KernelProfile


def kernel(ws=0.5, pressure=1.0):
    return KernelProfile(
        name="k",
        compute_weight=0.5,
        ilp=0.5,
        working_set_mb=ws,
        cache_pressure=pressure,
    )


@pytest.fixture
def big_llc():
    return odroid_xu4().llc_domains[1]  # 2 MB, CPUs 4-7


def test_llc_share_divides_capacity(big_llc):
    assert llc_share(big_llc, 1) == 2.0
    assert llc_share(big_llc, 4) == 0.5


def test_zero_working_set_always_fits(big_llc):
    model = ContentionModel()
    assert model.cache_fit_fraction(kernel(ws=0.0), big_llc, 8) == 1.0


def test_solo_fit(big_llc):
    model = ContentionModel()
    assert model.cache_fit_fraction(kernel(ws=1.5), big_llc, 1) == 1.0


def test_shared_misfit(big_llc):
    model = ContentionModel(smoothing=0.0)
    # 4 threads -> 0.5 MB share; 1.5 MB working set thrashes.
    assert model.cache_fit_fraction(kernel(ws=1.5), big_llc, 4) == 0.0


def test_smoothing_interpolates(big_llc):
    model = ContentionModel(smoothing=0.25)
    # share = 0.5; transition band [0.5, 0.625].
    f_mid = model.cache_fit_fraction(kernel(ws=0.5625), big_llc, 4)
    assert 0.0 < f_mid < 1.0
    assert model.cache_fit_fraction(kernel(ws=0.5), big_llc, 4) == 1.0
    assert model.cache_fit_fraction(kernel(ws=0.7), big_llc, 4) == 0.0


def test_pressure_inflates_demand_only_when_shared(big_llc):
    model = ContentionModel(smoothing=0.0)
    k = kernel(ws=1.8, pressure=1.5)
    # Solo: pressure not applied, 1.8 <= 2.0 fits.
    assert model.cache_fit_fraction(k, big_llc, 1) == 1.0
    # Two threads: share 1.0, demand 2.7 -> thrash.
    assert model.cache_fit_fraction(k, big_llc, 2) == 0.0


def test_disabled_model_acts_solo(big_llc):
    model = ContentionModel(enabled=False)
    assert model.cache_fit_fraction(kernel(ws=1.5), big_llc, 8) == 1.0


def test_active_threads_in_domain():
    p = odroid_xu4()
    model = ContentionModel()
    # BS mapping of 8 threads: 4 in each cluster.
    cpus = (7, 6, 5, 4, 3, 2, 1, 0)
    assert model.active_threads_in_domain(p, 0, cpus) == 4
    assert model.active_threads_in_domain(p, 1, cpus) == 4
    # Only big cores used:
    assert model.active_threads_in_domain(p, 0, (7, 6)) == 0
    assert model.active_threads_in_domain(p, 1, (7, 6)) == 2
    # Mapping form also accepted.
    assert model.active_threads_in_domain(p, 1, {0: 7, 1: 6}) == 2
