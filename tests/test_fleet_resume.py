"""Resumable sweeps: the checkpoint journal and the crash-resume
property — a SIGKILLed sweep, resumed, produces byte-identical grid
output and merged observability to an uninterrupted run."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.amp.presets import odroid_xu4
from repro.errors import FleetError
from repro.experiments.harness import default_configs, grid_specs, run_grid
from repro.fleet import (
    FleetConfig,
    FleetProgress,
    JobSpec,
    ResultCache,
    run_jobs,
)
from repro.fleet.checkpoint import CHECKPOINT_SCHEMA, SweepCheckpoint
from repro.obs.merge import comparable_snapshot
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Counters that legitimately differ between cold, warm and resumed
#: sweeps (cache temperature), stripped before byte-equality checks.
CACHE_TEMPERATURE = {
    "fleet_cache_hits", "fleet_cache_misses", "fleet_jobs_computed",
    "fleet_heartbeats_total",
}


def comparable_json(progress: FleetProgress) -> str:
    doc = comparable_snapshot(progress.obs_snapshot())
    doc["metrics"]["counters"] = [
        c for c in doc["metrics"]["counters"]
        if c["name"] not in CACHE_TEMPERATURE
    ]
    return json.dumps(doc, sort_keys=True)


# -- journal unit behavior -------------------------------------------------


def test_checkpoint_roundtrip(tmp_path):
    path = tmp_path / "cp.jsonl"
    cp = SweepCheckpoint(path)
    cp.begin({"tool": "test", "grids": ["smoke"], "seed": 7})
    cp.plan(["d1", "d2", "d3"])
    cp.record("d1", "done")
    cp.record("d2", "failed", error="boom")
    cp.finish()
    state = SweepCheckpoint.load(path)
    assert state.meta["grids"] == ["smoke"] and state.meta["seed"] == 7
    assert state.planned == ("d1", "d2", "d3")
    assert state.done == ("d1",)
    assert state.failed == ("d2",)
    assert state.pending == ("d2", "d3")  # failed jobs rerun on resume
    assert state.ended
    assert state.torn_lines == 0
    first = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
    assert first["schema"] == CHECKPOINT_SCHEMA


def test_checkpoint_missing_journal_raises(tmp_path):
    with pytest.raises(FleetError):
        SweepCheckpoint.load(tmp_path / "nope.jsonl")


def test_checkpoint_rejects_unknown_status(tmp_path):
    cp = SweepCheckpoint(tmp_path / "cp.jsonl")
    with pytest.raises(FleetError):
        cp.record("d1", "maybe")


def test_checkpoint_tolerates_torn_tail(tmp_path):
    path = tmp_path / "cp.jsonl"
    cp = SweepCheckpoint(path)
    cp.begin({})
    cp.plan(["d1", "d2"])
    cp.record("d1", "done")
    cp.close()
    # Simulate the record a SIGKILL interrupted mid-write.
    with path.open("a", encoding="utf-8") as fh:
        fh.write('{"event": "job", "digest": "d2", "sta')
    state = SweepCheckpoint.load(path)
    assert state.torn_lines == 1
    assert state.done == ("d1",)
    assert state.pending == ("d2",)


def test_checkpoint_done_is_sticky_and_plan_dedups(tmp_path):
    path = tmp_path / "cp.jsonl"
    cp = SweepCheckpoint(path)
    cp.begin({})
    cp.plan(["d1", "d2"])
    cp.record("d1", "done")
    # A resumed sweep re-plans the same universe and may re-fail a
    # digest that an earlier pass already completed.
    cp.begin({})
    cp.plan(["d2", "d1", "d3"])
    cp.record("d1", "failed", error="later noise")
    cp.close()
    state = SweepCheckpoint.load(path)
    assert state.planned == ("d1", "d2", "d3")
    assert state.done == ("d1",)
    assert not state.ended


# -- run_jobs journaling ---------------------------------------------------


@pytest.fixture()
def small_specs():
    return grid_specs(
        odroid_xu4(),
        [get_program("EP"), get_program("IS")],
        default_configs()[:2],
    )


def test_run_jobs_journals_plan_and_done(small_specs, tmp_path):
    cp = SweepCheckpoint(tmp_path / "cp.jsonl")
    cp.begin({})
    run_jobs(small_specs, FleetConfig(jobs=1), checkpoint=cp)
    cp.finish()
    state = SweepCheckpoint.load(cp.path)
    assert state.planned == tuple(s.key for s in small_specs)
    assert set(state.done) == {s.key for s in small_specs}
    assert state.ended


def test_run_jobs_journals_cache_hits_and_failures(small_specs, tmp_path):
    doomed = JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", num_threads=64),
        label="doomed",
    )
    cache = ResultCache(tmp_path / "cache")
    run_jobs(small_specs, FleetConfig(jobs=1), cache=cache)
    cp = SweepCheckpoint(tmp_path / "cp.jsonl")
    cp.begin({})
    run_jobs(
        [*small_specs, doomed],
        FleetConfig(jobs=1, retries=0, backoff=0.001),
        cache=cache,
        checkpoint=cp,
    )
    cp.close()
    state = SweepCheckpoint.load(cp.path)
    assert set(state.done) == {s.key for s in small_specs}
    assert state.failed == (doomed.key,)
    records = [
        json.loads(line)
        for line in cp.path.read_text(encoding="utf-8").splitlines()
    ]
    cached = [r for r in records if r.get("cached")]
    assert {r["digest"] for r in cached} == {s.key for s in small_specs}
    failed = [r for r in records if r.get("status") == "failed"]
    assert failed and "ConfigError" in failed[0]["error"]


def test_resumed_grid_is_byte_identical_in_process(small_specs, tmp_path):
    """In-process half of the property: a sweep stopped after its first
    batch and finished later equals one uninterrupted sweep."""
    platform = odroid_xu4()
    programs = [get_program("EP"), get_program("IS")]
    configs = default_configs()[:3]

    ref_progress = FleetProgress()
    reference = run_grid(
        platform, programs=programs, configs=configs,
        cache=ResultCache(tmp_path / "ref-cache"), progress=ref_progress,
    )

    # "Crashed" sweep: only the first program's cells got computed (and
    # acknowledged in cache + journal) before the coordinator died.
    cache = ResultCache(tmp_path / "cache")
    cp = SweepCheckpoint(tmp_path / "cp.jsonl")
    cp.begin({})
    partial = grid_specs(platform, programs[:1], configs)
    run_jobs(partial, FleetConfig(jobs=1), cache=cache, checkpoint=cp)
    cp.close()

    resumed_progress = FleetProgress()
    resumed = run_grid(
        platform, programs=programs, configs=configs,
        cache=cache, progress=resumed_progress,
        checkpoint=SweepCheckpoint(cp.path),
    )
    assert resumed.times == reference.times
    assert comparable_json(resumed_progress) == comparable_json(ref_progress)
    state = SweepCheckpoint.load(cp.path)
    assert set(state.done) == {
        s.key for s in grid_specs(platform, programs, configs)
    }


# -- the SIGKILL property test ---------------------------------------------


def _fleet_cmd(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.fleet", *args]


def _run_cli(args, *, env_extra=None, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    return subprocess.run(
        _fleet_cmd(*args), env=env, cwd=cwd,
        capture_output=True, text=True, timeout=600,
    )


def _grid_tables(stdout: str) -> str:
    """The grid table block(s): everything up to the fleet summary."""
    lines = [
        line for line in stdout.splitlines()
        if not line.startswith(("fleet:", "resuming from", "["))
        or "normalized performance" in line
    ]
    # Drop the header timing line ("name: desc  [1.2s]") by its marker.
    return "\n".join(line for line in lines if "s]" not in line)


@pytest.mark.parametrize("kill_after", [1, 3])
def test_sigkilled_sweep_resumes_byte_identical(tmp_path, kill_after):
    """Satellite 1: SIGKILL the sweep at a seeded point mid-flight,
    resume, and require byte-identical grid tables and merged obs
    snapshot vs an uninterrupted run."""
    ref_snap = tmp_path / "ref-snap.json"
    ref = _run_cli(
        [
            "smoke", "--cache-dir", str(tmp_path / "ref-cache"),
            "--obs-snapshot", str(ref_snap),
        ],
        cwd=str(tmp_path),
    )
    assert ref.returncode == 0, ref.stderr

    cache_dir = tmp_path / "cache"
    killed = _run_cli(
        ["smoke", "--cache-dir", str(cache_dir)],
        env_extra={"REPRO_FLEET_KILL_AFTER": str(kill_after)},
        cwd=str(tmp_path),
    )
    assert killed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL)

    # The journal acknowledged exactly the computed jobs, durably.
    state = SweepCheckpoint.load(cache_dir / "checkpoint.jsonl")
    assert len(state.done) == kill_after
    assert len(state.pending) == len(state.planned) - kill_after
    assert not state.ended

    resumed_snap = tmp_path / "resumed-snap.json"
    resumed = _run_cli(
        [
            "--resume", "--cache-dir", str(cache_dir),
            "--obs-snapshot", str(resumed_snap),
        ],
        cwd=str(tmp_path),
    )
    assert resumed.returncode == 0, resumed.stderr
    assert f"{kill_after} done" in resumed.stdout

    # Property 1: the rendered grid tables are byte-identical.
    assert _grid_tables(resumed.stdout) == _grid_tables(ref.stdout)

    # Property 2: the merged obs snapshots are byte-identical modulo
    # wall-clock fields and cache-temperature counters.
    from repro.obs.snapshot import load_snapshot

    docs = []
    for path in (ref_snap, resumed_snap):
        doc = comparable_snapshot(load_snapshot(path))
        doc["metrics"]["counters"] = [
            c for c in doc["metrics"]["counters"]
            if c["name"] not in CACHE_TEMPERATURE
        ]
        docs.append(json.dumps(doc, sort_keys=True))
    assert docs[0] == docs[1]

    # Property 3: the journal now shows the whole sweep acknowledged.
    state = SweepCheckpoint.load(cache_dir / "checkpoint.jsonl")
    assert len(state.done) == len(state.planned)
    assert state.ended


def test_resume_without_journal_fails_cleanly(tmp_path):
    res = _run_cli(
        ["--resume", "--cache-dir", str(tmp_path / "empty")],
        cwd=str(tmp_path),
    )
    assert res.returncode == 2
    assert "no checkpoint journal" in res.stderr
