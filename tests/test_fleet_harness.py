"""Fleet <-> harness integration: the headline determinism property
(parallel == serial, cell for cell), cache-backed reruns, and the
GridResult <-> payload round-trip."""

import json

import pytest

from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.errors import ExperimentError
from repro.experiments.harness import (
    GridResult,
    ScheduleConfig,
    default_configs,
    run_grid,
)
from repro.fleet import FleetProgress, ResultCache
from repro.obs.snapshot import grid_payload
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

#: The ISSUE's property grid: 4 programs x 4 configs, both platforms.
PROGRAMS = ("EP", "IS", "kmeans", "backprop")
CONFIGS = (
    ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB")),
    ScheduleConfig("static(BS)", OmpEnv(schedule="static", affinity="BS")),
    ScheduleConfig("AID-static", OmpEnv(schedule="aid_static", affinity="BS")),
    ScheduleConfig("AID-hybrid", OmpEnv(schedule="aid_hybrid,80", affinity="BS")),
)


@pytest.mark.parametrize(
    "platform_factory", [odroid_xu4, xeon_emulated], ids=["A", "B"]
)
def test_fleet_parallel_equals_serial_cell_for_cell(platform_factory):
    platform = platform_factory()
    programs = [get_program(p) for p in PROGRAMS]
    serial = run_grid(platform, programs=programs, configs=CONFIGS)
    parallel = run_grid(
        platform, programs=programs, configs=CONFIGS, jobs=4
    )
    assert parallel.platform_name == serial.platform_name
    assert parallel.config_labels == serial.config_labels
    # Exact float equality, not approx: determinism is the contract.
    assert parallel.times == serial.times
    for program in PROGRAMS:
        for cfg in CONFIGS:
            assert parallel.time(program, cfg.label) == serial.time(
                program, cfg.label
            )


def test_cached_rerun_is_identical_and_computes_nothing(tmp_path):
    platform = odroid_xu4()
    programs = [get_program(p) for p in PROGRAMS[:2]]
    cache = ResultCache(tmp_path)
    cold = run_grid(
        platform, programs=programs, configs=CONFIGS[:2], cache=cache
    )
    progress = FleetProgress()
    warm = run_grid(
        platform,
        programs=programs,
        configs=CONFIGS[:2],
        cache=cache,
        progress=progress,
    )
    assert warm.times == cold.times
    assert progress.count("fleet_cache_hits") == 4
    assert progress.count("fleet_jobs_computed") == 0
    # And the serial no-fleet path agrees too.
    plain = run_grid(platform, programs=programs, configs=CONFIGS[:2])
    assert plain.times == cold.times


def test_grid_payload_round_trip_is_exact():
    grid = run_grid(
        odroid_xu4(),
        programs=[get_program(p) for p in PROGRAMS[:2]],
        configs=CONFIGS[:3],
    )
    # Through canonical JSON (sorted keys!) and back.
    doc = json.loads(json.dumps(grid_payload(grid), sort_keys=True))
    back = GridResult.from_payload(doc)
    assert back.platform_name == grid.platform_name
    assert back.config_labels == grid.config_labels
    assert back.times == grid.times
    # Ordering is part of the contract: identical rendered tables.
    assert list(back.times) == list(grid.times)
    for a, b in zip(back.times.values(), grid.times.values()):
        assert list(a) == list(b)
    assert back.to_table() == grid.to_table()
    assert back.normalized() == grid.normalized()


def test_from_payload_rejects_malformed():
    with pytest.raises(ExperimentError):
        GridResult.from_payload({"platform": "x"})
    grid = run_grid(
        odroid_xu4(),
        programs=[get_program("EP")],
        configs=CONFIGS[:2],
    )
    doc = grid_payload(grid)
    doc["programs"]["EP"] = doc["programs"]["EP"][:1]  # drop a cell
    with pytest.raises(ExperimentError):
        GridResult.from_payload(doc)


def test_default_configs_grid_via_fleet_matches_legacy(tmp_path):
    """The exact Fig. 6/7 column set, fleet vs legacy serial loop."""
    programs = [get_program("EP")]
    legacy = run_grid(odroid_xu4(), programs=programs)
    fleet = run_grid(
        odroid_xu4(),
        programs=programs,
        configs=default_configs(),
        jobs=2,
        cache=ResultCache(tmp_path),
    )
    assert fleet.times == legacy.times
