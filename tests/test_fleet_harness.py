"""Fleet <-> harness integration: the headline determinism property
(parallel == serial, cell for cell), cache-backed reruns, the
GridResult <-> payload round-trip, and the merged-observability
acceptance property (jobs=1 == jobs=N snapshots, diff gates)."""

import json

import pytest

from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.errors import ExperimentError
from repro.experiments.harness import (
    GridResult,
    ScheduleConfig,
    default_configs,
    run_grid,
)
from repro.fleet import FleetProgress, ResultCache
from repro.obs.diff import diff_snapshots
from repro.obs.merge import comparable_snapshot
from repro.obs.report import main as report_main
from repro.obs.snapshot import grid_payload, load_snapshot
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program

#: The ISSUE's property grid: 4 programs x 4 configs, both platforms.
PROGRAMS = ("EP", "IS", "kmeans", "backprop")
CONFIGS = (
    ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB")),
    ScheduleConfig("static(BS)", OmpEnv(schedule="static", affinity="BS")),
    ScheduleConfig("AID-static", OmpEnv(schedule="aid_static", affinity="BS")),
    ScheduleConfig("AID-hybrid", OmpEnv(schedule="aid_hybrid,80", affinity="BS")),
)


@pytest.mark.parametrize(
    "platform_factory", [odroid_xu4, xeon_emulated], ids=["A", "B"]
)
def test_fleet_parallel_equals_serial_cell_for_cell(platform_factory):
    platform = platform_factory()
    programs = [get_program(p) for p in PROGRAMS]
    serial = run_grid(platform, programs=programs, configs=CONFIGS)
    parallel = run_grid(
        platform, programs=programs, configs=CONFIGS, jobs=4
    )
    assert parallel.platform_name == serial.platform_name
    assert parallel.config_labels == serial.config_labels
    # Exact float equality, not approx: determinism is the contract.
    assert parallel.times == serial.times
    for program in PROGRAMS:
        for cfg in CONFIGS:
            assert parallel.time(program, cfg.label) == serial.time(
                program, cfg.label
            )


def test_cached_rerun_is_identical_and_computes_nothing(tmp_path):
    platform = odroid_xu4()
    programs = [get_program(p) for p in PROGRAMS[:2]]
    cache = ResultCache(tmp_path)
    cold = run_grid(
        platform, programs=programs, configs=CONFIGS[:2], cache=cache
    )
    progress = FleetProgress()
    warm = run_grid(
        platform,
        programs=programs,
        configs=CONFIGS[:2],
        cache=cache,
        progress=progress,
    )
    assert warm.times == cold.times
    assert progress.count("fleet_cache_hits") == 4
    assert progress.count("fleet_jobs_computed") == 0
    # And the serial no-fleet path agrees too.
    plain = run_grid(platform, programs=programs, configs=CONFIGS[:2])
    assert plain.times == cold.times


def test_grid_payload_round_trip_is_exact():
    grid = run_grid(
        odroid_xu4(),
        programs=[get_program(p) for p in PROGRAMS[:2]],
        configs=CONFIGS[:3],
    )
    # Through canonical JSON (sorted keys!) and back.
    doc = json.loads(json.dumps(grid_payload(grid), sort_keys=True))
    back = GridResult.from_payload(doc)
    assert back.platform_name == grid.platform_name
    assert back.config_labels == grid.config_labels
    assert back.times == grid.times
    # Ordering is part of the contract: identical rendered tables.
    assert list(back.times) == list(grid.times)
    for a, b in zip(back.times.values(), grid.times.values()):
        assert list(a) == list(b)
    assert back.to_table() == grid.to_table()
    assert back.normalized() == grid.normalized()


def test_from_payload_rejects_malformed():
    with pytest.raises(ExperimentError):
        GridResult.from_payload({"platform": "x"})
    grid = run_grid(
        odroid_xu4(),
        programs=[get_program("EP")],
        configs=CONFIGS[:2],
    )
    doc = grid_payload(grid)
    doc["programs"]["EP"] = doc["programs"]["EP"][:1]  # drop a cell
    with pytest.raises(ExperimentError):
        GridResult.from_payload(doc)


class TestMergedObservabilityAcceptance:
    """The PR's acceptance property: a smoke-sized grid run with jobs=4
    and jobs=1 produces byte-identical merged snapshots modulo
    wall-clock fields, the diff reports zero regressions, and a doubled
    runtime-overhead counter makes the CLI gate exit nonzero."""

    PROGRAMS = ("EP", "IS")
    GRID_CONFIGS = CONFIGS[:2] + CONFIGS[3:4]  # static x2 + AID-hybrid

    def run_with(self, jobs):
        progress = FleetProgress()
        run_grid(
            odroid_xu4(),
            programs=[get_program(p) for p in self.PROGRAMS],
            configs=self.GRID_CONFIGS,
            jobs=jobs,
            progress=progress,
        )
        return progress.obs_snapshot(meta={"grids": "smoke", "jobs": jobs})

    def test_jobs4_and_jobs1_snapshots_byte_identical(self, tmp_path):
        serial = comparable_snapshot(self.run_with(jobs=1))
        parallel = comparable_snapshot(self.run_with(jobs=4))
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )
        # The property covers the time-resolved instruments too: the
        # merged snapshot must actually carry them (byte-equality over
        # empty lists would be vacuous).
        assert serial["metrics"]["timeseries"], "merged timeseries missing"
        assert serial["metrics"]["digests"], "merged digests missing"
        ts_names = {m["name"] for m in serial["metrics"]["timeseries"]}
        assert {"core_utilization", "chunk_size"} <= ts_names
        dg_names = {m["name"] for m in serial["metrics"]["digests"]}
        assert "chunk_compute_seconds" in dg_names
        # And the structured diff agrees: nothing but wall-clock infos.
        diff = diff_snapshots(self.run_with(jobs=1), self.run_with(jobs=4))
        assert diff.regressions == []
        assert diff.changes == []

    def test_doubled_overhead_fails_the_cli_gate(self, tmp_path, capsys):
        baseline = self.run_with(jobs=1)
        perturbed = json.loads(json.dumps(baseline))
        touched = 0
        for c in perturbed["metrics"]["counters"]:
            if c["name"] == "runtime_overhead_seconds_total":
                c["value"] *= 2
                touched += 1
        assert touched > 0, "the grid must have recorded runtime overhead"
        a = tmp_path / "baseline.json"
        b = tmp_path / "perturbed.json"
        a.write_text(json.dumps(baseline, sort_keys=True), encoding="utf-8")
        b.write_text(json.dumps(perturbed, sort_keys=True), encoding="utf-8")
        assert report_main(
            ["diff", str(a), str(b), "--fail-on-regression"]
        ) == 1
        capsys.readouterr()
        # The unperturbed pair passes the same gate.
        b.write_text(json.dumps(baseline, sort_keys=True), encoding="utf-8")
        assert report_main(
            ["diff", str(a), str(b), "--fail-on-regression"]
        ) == 0
        capsys.readouterr()

    def test_warm_replay_diffs_clean_against_cold(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        programs = [get_program(p) for p in self.PROGRAMS]
        cold_progress = FleetProgress()
        run_grid(
            odroid_xu4(), programs=programs, configs=self.GRID_CONFIGS,
            cache=cache, progress=cold_progress,
        )
        warm_progress = FleetProgress()
        run_grid(
            odroid_xu4(), programs=programs, configs=self.GRID_CONFIGS,
            cache=cache, progress=warm_progress,
        )
        a = tmp_path / "cold.json"
        b = tmp_path / "warm.json"
        a.write_text(
            json.dumps(cold_progress.obs_snapshot(), sort_keys=True),
            encoding="utf-8",
        )
        b.write_text(
            json.dumps(warm_progress.obs_snapshot(), sort_keys=True),
            encoding="utf-8",
        )
        # Cache-temperature counters flip wholesale; still no regression.
        assert report_main(
            ["diff", str(a), str(b), "--fail-on-regression"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_run_grid_writes_a_loadable_snapshot(self, tmp_path):
        path = tmp_path / "obs.json"
        run_grid(
            odroid_xu4(),
            programs=[get_program("EP")],
            configs=self.GRID_CONFIGS[:2],
            obs_snapshot_path=path,
        )
        doc = load_snapshot(path)
        assert doc["merged_jobs"] == 2
        assert doc["meta"]["platform"]
        names = {c["name"] for c in doc["metrics"]["counters"]}
        assert "fleet_jobs_submitted" in names
        assert "dispatches_total" in names


def test_default_configs_grid_via_fleet_matches_legacy(tmp_path):
    """The exact Fig. 6/7 column set, fleet vs legacy serial loop."""
    programs = [get_program("EP")]
    legacy = run_grid(odroid_xu4(), programs=programs)
    fleet = run_grid(
        odroid_xu4(),
        programs=programs,
        configs=default_configs(),
        jobs=2,
        cache=ResultCache(tmp_path),
    )
    assert fleet.times == legacy.times
