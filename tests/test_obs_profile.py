"""Tests for repro.obs.profile (sim-time cost attribution + wall-clock
hotspot profiler) and the ``report timeline`` / ``report profile``
subcommands."""

import json

from repro.obs.profile import (
    CATEGORIES,
    HotspotProfiler,
    cost_attribution,
    format_cost_attribution,
    format_hotspots,
    profile_grid,
    scenario_digest,
)
from repro.obs.report import main as report_main


def snap(counters):
    return {
        "metrics": {
            "counters": [
                {"name": "sim_time_seconds_total", "labels": dict(labels),
                 "value": v}
                for labels, v in counters
            ]
        }
    }


class TestCostAttribution:
    def test_rows_split_by_loop_and_core_type(self):
        rows = cost_attribution(snap([
            ({"loop": "L", "core_type": "big", "category": "compute"}, 3.0),
            ({"loop": "L", "core_type": "big", "category": "idle"}, 1.0),
            ({"loop": "L", "core_type": "little", "category": "compute"}, 2.0),
        ]))
        assert len(rows) == 2
        big = rows[0]
        assert (big["loop"], big["core_type"]) == ("L", "big")
        assert big["compute"] == 3.0 and big["idle"] == 1.0
        assert big["total"] == 4.0

    def test_extra_label_dimensions_sum(self):
        # Fleet-merged snapshots carry program/config labels; same cell
        # from two jobs must aggregate.
        rows = cost_attribution(snap([
            ({"loop": "L", "core_type": "big", "category": "compute",
              "program": "EP"}, 1.0),
            ({"loop": "L", "core_type": "big", "category": "compute",
              "program": "IS"}, 2.0),
        ]))
        assert rows[0]["compute"] == 3.0

    def test_unrelated_counters_ignored(self):
        doc = snap([])
        doc["metrics"]["counters"].append(
            {"name": "dispatches_total", "labels": {"loop": "L"}, "value": 9}
        )
        assert cost_attribution(doc) == []

    def test_format_table_lists_all_categories(self):
        text = format_cost_attribution(snap([
            ({"loop": "L", "core_type": "big", "category": "compute"}, 3.0),
        ]))
        for c in CATEGORIES:
            assert c + "_s" in text
        assert "L" in text

    def test_empty_formats_empty(self):
        assert format_cost_attribution(snap([])) == ""


class TestHotspotProfiler:
    def test_profiled_function_ranks(self):
        def burn():
            return sum(i * i for i in range(200_000))

        p = HotspotProfiler()
        assert p.run(burn) == burn()
        rows = p.hotspots(top=10)
        assert rows
        assert any("burn" in r["function"] or "genexpr" in r["function"]
                   for r in rows)
        # Ranked by self time, descending.
        selfs = [r["self_seconds"] for r in rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_rows_have_the_documented_shape(self):
        p = HotspotProfiler()
        p.run(lambda: sorted(range(1000)))
        row = p.hotspots(top=1)[0]
        assert set(row) == {"function", "location", "ncalls",
                            "self_seconds", "cumulative_seconds"}

    def test_format_is_a_ranked_table(self):
        rows = [{"function": "f", "location": "/x/repro/sim/core.py:3",
                 "ncalls": 5, "self_seconds": 0.5,
                 "cumulative_seconds": 0.6}]
        text = format_hotspots(rows, scenario="abcdef0123456789")
        assert "scenario=abcdef012345" in text
        assert "repro/sim/core.py:3" in text


class TestScenarioDigest:
    def test_order_sensitive_and_stable(self):
        class Spec:
            def __init__(self, key):
                self.key = key

        a = [Spec("k1"), Spec("k2")]
        assert scenario_digest(a) == scenario_digest(a)
        assert scenario_digest(a) != scenario_digest(list(reversed(a)))


class TestProfileGrid:
    def test_one_program_grid_profiles_end_to_end(self):
        hotspots, snapshot, scenario = profile_grid(programs=["EP"], top=5)
        assert len(hotspots) == 5
        assert len(scenario) == 64
        rows = cost_attribution(snapshot)
        assert rows, "the profiled grid must publish sim_time counters"
        # Both odroid core types show up for the EP loop.
        types = {r["core_type"] for r in rows}
        assert {"cortex-a7", "cortex-a15"} <= types


class TestProfileCli:
    def test_profile_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert report_main([
            "profile", "--programs", "EP", "--top", "5",
            "--json", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "wall-clock hotspots" in text
        assert "sim-time cost attribution" in text
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.obs.profile/v2"
        assert len(doc["hotspots"]) == 5
        assert doc["cost_attribution"]
        assert doc["backend"] == "reference"
        assert doc["wall_clock_seconds"] > 0.0

    def test_profile_subcommand_backend_flag(self, tmp_path):
        out = tmp_path / "profile-vec.json"
        assert report_main([
            "profile", "--programs", "EP", "--top", "5",
            "--backend", "vectorized", "--json", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["backend"] == "vectorized"


class TestTimelineCli:
    def test_timeline_subcommand_renders_lanes_and_tails(
        self, tmp_path, capsys
    ):
        import numpy as np

        from repro.check.generators import run_loop
        from repro.amp.presets import odroid_xu4
        from repro.obs import Observability
        from repro.obs.snapshot import write_snapshot
        from repro.sched.registry import parse_schedule

        obs = Observability()
        run_loop(odroid_xu4(), parse_schedule("dynamic,4"),
                 n_iterations=256, costs=np.full(256, 1e-4), obs=obs)
        path = tmp_path / "snap.json"
        write_snapshot(path, obs)
        assert report_main(["timeline", str(path)]) == 0
        text = capsys.readouterr().out
        assert "core_utilization" in text
        assert "digest tails" in text
        assert "p99" in text
        # Metric filter narrows the lanes.
        assert report_main(
            ["timeline", str(path), "--metric", "chunk_size"]
        ) == 0
        filtered = capsys.readouterr().out
        assert "core_utilization" not in filtered
        assert "chunk_size" in filtered
