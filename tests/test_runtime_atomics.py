"""Unit tests for the atomic primitives (sim + real-thread paths)."""

import threading

import pytest

from repro.check.mutants import apply_mutant
from repro.check.recording import CheckContext
from repro.runtime.atomics import AtomicCounter, AtomicFloat
from repro.runtime.workshare import WorkShare


class TestAtomicCounter:
    def test_fetch_add_returns_old_value(self):
        c = AtomicCounter(10)
        assert c.fetch_add(5) == 10
        assert c.value == 15

    def test_add_fetch_returns_new_value(self):
        c = AtomicCounter(10)
        assert c.add_fetch(5) == 15

    def test_negative_delta(self):
        c = AtomicCounter(10)
        c.fetch_add(-3)
        assert c.value == 7

    def test_store(self):
        c = AtomicCounter()
        c.store(42)
        assert c.value == 42

    def test_threaded_increments_do_not_lose_updates(self):
        lock = threading.Lock()
        c = AtomicCounter(0, lock)
        n, per = 8, 2000

        def bump():
            for _ in range(per):
                c.fetch_add(1)

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per


class TestAtomicFloat:
    def test_add_returns_new_value(self):
        f = AtomicFloat(1.5)
        assert f.add(0.5) == 2.0
        assert f.value == 2.0

    def test_store(self):
        f = AtomicFloat()
        f.store(3.25)
        assert f.value == 3.25

    def test_threaded_accumulation(self):
        lock = threading.Lock()
        f = AtomicFloat(0.0, lock)
        n, per = 4, 1000

        def bump():
            for _ in range(per):
                f.add(0.25)

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert f.value == n * per * 0.25


class TestFetchAddProperties:
    """Randomized fetch-and-add properties, seeded via the rng fixture.

    The properties are the work-share half of the conformance oracle:
    chunks removed by concurrent fetch-and-add never overlap, never
    run past ``end``, and together cover the pool exactly once.
    """

    @pytest.mark.parametrize("case", range(8))
    def test_interleaved_takes_partition_the_pool(self, rng, case):
        end = int(rng.integers(1, 200))
        ws = WorkShare(0, end)
        grants = []
        while True:
            got = ws.take(int(rng.integers(1, 8)))
            if got is None:
                break
            grants.append(got)
        self._assert_partition(grants, end)

    def test_threaded_takes_partition_the_pool(self, rng):
        end = int(rng.integers(50, 400))
        ws = WorkShare(0, end, threading.Lock())
        chunks = [int(c) for c in rng.integers(1, 8, size=64)]
        grants = []
        grants_lock = threading.Lock()

        def worker(wid):
            i = wid
            while True:
                got = ws.take(chunks[i % len(chunks)])
                i += 3
                if got is None:
                    return
                with grants_lock:
                    grants.append(got)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        self._assert_partition(grants, end)

    @staticmethod
    def _assert_partition(grants, end):
        seen = [0] * end
        for lo, hi in grants:
            assert 0 <= lo < hi <= end, f"grant [{lo}, {hi}) outside [0, {end})"
            for i in range(lo, hi):
                seen[i] += 1
        assert all(c == 1 for c in seen), (
            f"pool not partitioned exactly once: counts {sorted(set(seen))}"
        )

    @pytest.mark.parametrize(
        "mutant", ["aid-dynamic-chunk-decrement", "workshare-no-clamp"]
    )
    def test_properties_catch_planted_bugs(self, rng, mutant):
        """The same properties must fail under each planted pool bug —
        otherwise they are not actually constraining the semantics."""
        broken = False
        with apply_mutant(mutant):
            for _ in range(20):
                end = int(rng.integers(5, 60))
                ws = WorkShare(0, end)
                grants = []
                while True:
                    got = ws.take(int(rng.integers(2, 6)))
                    if got is None:
                        break
                    grants.append(got)
                try:
                    self._assert_partition(grants, end)
                except AssertionError:
                    broken = True
                    break
        assert broken, f"mutant {mutant} never violated the partition property"

    def test_take_reports_ground_truth_to_check_context(self, rng):
        end = int(rng.integers(10, 100))
        check = CheckContext()
        ws = WorkShare(0, end, check=check)
        while ws.take(int(rng.integers(1, 5))) is not None:
            pass
        granted = [ev.granted for ev in check.takes if ev.granted is not None]
        assert granted, "no takes recorded"
        assert granted[-1][1] == end
        # the recorded pre-add pointers replay the exact serialization
        assert [ev.before for ev in check.takes[:-1]] == sorted(
            ev.before for ev in check.takes[:-1]
        )
