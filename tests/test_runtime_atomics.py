"""Unit tests for the atomic primitives (sim + real-thread paths)."""

import threading

from repro.runtime.atomics import AtomicCounter, AtomicFloat


class TestAtomicCounter:
    def test_fetch_add_returns_old_value(self):
        c = AtomicCounter(10)
        assert c.fetch_add(5) == 10
        assert c.value == 15

    def test_add_fetch_returns_new_value(self):
        c = AtomicCounter(10)
        assert c.add_fetch(5) == 15

    def test_negative_delta(self):
        c = AtomicCounter(10)
        c.fetch_add(-3)
        assert c.value == 7

    def test_store(self):
        c = AtomicCounter()
        c.store(42)
        assert c.value == 42

    def test_threaded_increments_do_not_lose_updates(self):
        lock = threading.Lock()
        c = AtomicCounter(0, lock)
        n, per = 8, 2000

        def bump():
            for _ in range(per):
                c.fetch_add(1)

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per


class TestAtomicFloat:
    def test_add_returns_new_value(self):
        f = AtomicFloat(1.5)
        assert f.add(0.5) == 2.0
        assert f.value == 2.0

    def test_store(self):
        f = AtomicFloat()
        f.store(3.25)
        assert f.value == 3.25

    def test_threaded_accumulation(self):
        lock = threading.Lock()
        f = AtomicFloat(0.0, lock)
        n, per = 4, 1000

        def bump():
            for _ in range(per):
                f.add(0.25)

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert f.value == n * per * 0.25
