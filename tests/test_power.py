"""Unit tests for the power/energy model."""

import pytest

from repro.amp.presets import dual_speed_platform, odroid_xu4
from repro.errors import ConfigError, ExperimentError
from repro.power.metrics import (
    energy_delay_product,
    normalized_edp,
    normalized_energy,
)
from repro.power.model import CorePower, EnergyBreakdown, PlatformPower, PowerModel
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.workloads.registry import get_program


class TestCorePower:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CorePower(active_w=0.0, idle_w=0.0)
        with pytest.raises(ConfigError):
            CorePower(active_w=1.0, idle_w=2.0)
        with pytest.raises(ConfigError):
            CorePower(active_w=1.0, idle_w=-0.1)


class TestPlatformPower:
    def test_presets_cover_their_platforms(self):
        PowerModel(odroid_xu4())  # does not raise

    def test_missing_type_rejected(self):
        p = dual_speed_platform(2, 2)
        with pytest.raises(ConfigError):
            PowerModel(p)  # no default table for synthetic platforms
        with pytest.raises(ConfigError):
            PowerModel(p, PlatformPower(per_type={}))

    def test_custom_table_accepted(self):
        p = dual_speed_platform(2, 2)
        table = PlatformPower(
            per_type={
                "synth-small": CorePower(1.0, 0.1),
                "synth-big": CorePower(3.0, 0.3),
            }
        )
        PowerModel(p, table)


@pytest.fixture(scope="module")
def ep_run():
    platform = odroid_xu4()
    runner = ProgramRunner(
        platform, OmpEnv(schedule="aid_static", affinity="BS"), trace=True
    )
    result = runner.run(get_program("EP"))
    return platform, runner, result


class TestEnergyAccounting:
    def test_breakdown_positive_and_consistent(self, ep_run):
        platform, runner, result = ep_run
        model = PowerModel(platform)
        e = model.energy_of(result, list(runner.team.mapping.cpu_of_tid))
        assert e.active_j > 0
        assert e.idle_j >= 0
        assert e.uncore_j > 0
        assert e.total_j == pytest.approx(e.active_j + e.idle_j + e.uncore_j)
        assert e.wall_s == pytest.approx(result.completion_time)

    def test_average_power_bounded_by_platform_max(self, ep_run):
        platform, runner, result = ep_run
        model = PowerModel(platform)
        e = model.energy_of(result, list(runner.team.mapping.cpu_of_tid))
        max_w = (
            sum(
                model.power.for_type(c.core_type.name).active_w
                for c in platform.cores
            )
            + model.power.uncore_w
        )
        assert 0 < e.average_power_w <= max_w

    def test_big_cores_dominate_active_energy(self, ep_run):
        platform, runner, result = ep_run
        model = PowerModel(platform)
        e = model.energy_of(result, list(runner.team.mapping.cpu_of_tid))
        assert e.per_type_active_j["cortex-a15"] > e.per_type_active_j["cortex-a7"]

    def test_traceless_approximation_close_to_trace(self):
        platform = odroid_xu4()
        env = OmpEnv(schedule="aid_static", affinity="BS")
        with_trace = ProgramRunner(platform, env, trace=True).run(get_program("EP"))
        without = ProgramRunner(platform, env, trace=False).run(get_program("EP"))
        model = PowerModel(platform)
        cpus = list(range(7, -1, -1))
        e1 = model.energy_of(with_trace, cpus)
        e2 = model.energy_of(without, cpus)
        assert e2.total_j == pytest.approx(e1.total_j, rel=0.15)

    def test_full_team_wins_on_edp(self):
        """Using all 8 cores beats 4 big cores on energy-delay product:
        the small cores add little power but real throughput."""
        platform = odroid_xu4()
        model = PowerModel(platform)
        full = ProgramRunner(
            platform, OmpEnv(schedule="aid_static", affinity="BS"), trace=True
        )
        half = ProgramRunner(
            platform,
            OmpEnv(schedule="aid_static", affinity="BS", num_threads=4),
            trace=True,
        )
        prog = get_program("streamcluster")
        e_full = model.energy_of(full.run(prog), list(full.team.mapping.cpu_of_tid))
        e_half = model.energy_of(half.run(prog), list(half.team.mapping.cpu_of_tid))
        assert energy_delay_product(e_full) < energy_delay_product(e_half)


class TestMetrics:
    def breakdown(self, j, s):
        return EnergyBreakdown(active_j=j, idle_j=0.0, uncore_j=0.0, wall_s=s)

    def test_edp(self):
        assert energy_delay_product(self.breakdown(10.0, 2.0)) == 20.0

    def test_normalized(self):
        base = self.breakdown(10.0, 2.0)
        cand = self.breakdown(5.0, 1.0)
        assert normalized_energy(base, cand) == 0.5
        assert normalized_edp(base, cand) == 0.25

    def test_zero_baseline_rejected(self):
        zero = EnergyBreakdown(0.0, 0.0, 0.0, 1.0)
        with pytest.raises(ExperimentError):
            normalized_energy(zero, zero)
        with pytest.raises(ExperimentError):
            normalized_edp(zero, zero)
        with pytest.raises(ExperimentError):
            EnergyBreakdown(1.0, 0.0, 0.0, 0.0).average_power_w
