"""Tests for the multi-application OS substrate (paper Sec. 4.3)."""

import pytest

from repro.amp.presets import odroid_xu4, tri_type_platform
from repro.errors import ConfigError, ExperimentError
from repro.osched.allocation import Allocation, AllocationTimeline
from repro.osched.info_page import AmpInfoPage
from repro.osched.metrics import antt, stp, unfairness
from repro.osched.multiapp import run_colocated
from repro.osched.policies import cluster_split, fair_mixed, priority_weighted
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.workloads.registry import get_program


class TestAllocation:
    def test_disjointness_enforced(self):
        with pytest.raises(ConfigError):
            Allocation(cpus_of_app=((0, 1), (1, 2)))

    def test_empty_allocation_rejected(self):
        with pytest.raises(ConfigError):
            Allocation(cpus_of_app=((0, 1), ()))

    def test_others(self):
        alloc = Allocation(cpus_of_app=((7, 6), (3, 2, 1)))
        assert alloc.others(0) == (1, 2, 3)
        assert alloc.others(1) == (6, 7)

    def test_big_core_count(self):
        p = odroid_xu4()
        alloc = Allocation(cpus_of_app=((7, 6, 1, 0), (5, 4, 3, 2)))
        assert alloc.big_core_count(p, 0) == 2
        assert alloc.big_core_count(p, 1) == 2

    def test_validate_for(self):
        p = odroid_xu4()
        with pytest.raises(ConfigError):
            Allocation(cpus_of_app=((9,),)).validate_for(p)


class TestTimeline:
    def test_constant(self):
        alloc = Allocation(cpus_of_app=((0, 1),))
        tl = AllocationTimeline.constant(alloc)
        assert tl.at(0.0) is alloc
        assert tl.at(99.0) is alloc
        assert tl.change_times() == []

    def test_piecewise(self):
        a0 = Allocation(cpus_of_app=((0, 1), (2, 3)))
        a1 = Allocation(cpus_of_app=((0,), (1, 2, 3)))
        tl = AllocationTimeline(breakpoints=[(0.0, a0), (1.0, a1)])
        assert tl.at(0.5) is a0
        assert tl.at(1.0) is a1
        assert tl.at(5.0) is a1
        assert tl.change_times() == [1.0]

    def test_validation(self):
        a = Allocation(cpus_of_app=((0,),))
        with pytest.raises(ConfigError):
            AllocationTimeline(breakpoints=[])
        with pytest.raises(ConfigError):
            AllocationTimeline(breakpoints=[(1.0, a)])  # must start at 0
        b = Allocation(cpus_of_app=((0,), (1,)))
        with pytest.raises(ConfigError):
            AllocationTimeline(breakpoints=[(0.0, a), (1.0, b)])  # app count


class TestPolicies:
    def test_cluster_split_gives_whole_types(self):
        p = odroid_xu4()
        alloc = cluster_split(p, 2)
        # App 0: the big cluster; app 1: the small cluster.
        assert set(alloc.cpus(0)) == {4, 5, 6, 7}
        assert set(alloc.cpus(1)) == {0, 1, 2, 3}

    def test_fair_mixed_shares_each_type(self):
        p = odroid_xu4()
        alloc = fair_mixed(p, 2)
        for app in (0, 1):
            assert alloc.big_core_count(p, app) == 2
            assert len(alloc.cpus(app)) == 4
            # Descending CPU order -> BS convention inside the partition.
            assert list(alloc.cpus(app)) == sorted(alloc.cpus(app), reverse=True)

    def test_fair_mixed_on_three_types(self):
        p = tri_type_platform()
        alloc = fair_mixed(p, 2)
        for app in (0, 1):
            assert len(alloc.cpus(app)) == 3

    def test_priority_weighted(self):
        p = odroid_xu4()
        alloc = priority_weighted(p, (3, 1))
        assert alloc.big_core_count(p, 0) == 3
        assert alloc.big_core_count(p, 1) == 1
        with pytest.raises(ConfigError):
            priority_weighted(p, (3, 3))  # sums to 6 != 4

    def test_too_many_apps_rejected(self):
        p = odroid_xu4()
        with pytest.raises(ConfigError):
            cluster_split(p, 3)
        with pytest.raises(ConfigError):
            fair_mixed(p, 5)


class TestInfoPage:
    def test_read_reports_allocation_and_changes(self):
        p = odroid_xu4()
        tl = AllocationTimeline(
            breakpoints=[
                (0.0, fair_mixed(p)),
                (0.5, priority_weighted(p, (3, 1))),
            ]
        )
        page = AmpInfoPage(p, tl, app=0)
        s0 = page.read(0.0)
        assert s0.n_big == 2 and not s0.changed and s0.generation == 0
        s1 = page.read(0.1)
        assert not s1.changed  # same allocation
        s2 = page.read(0.7)
        assert s2.changed and s2.generation == 1 and s2.n_big == 3
        assert page.reads == 3

    def test_background(self):
        p = odroid_xu4()
        page = AmpInfoPage(p, AllocationTimeline.constant(fair_mixed(p)), app=0)
        bg = page.background_at(0.0)
        assert set(bg).isdisjoint(page.read(0.0).cpus)
        assert len(bg) == 4

    def test_bad_app_index(self):
        p = odroid_xu4()
        with pytest.raises(ConfigError):
            AmpInfoPage(p, AllocationTimeline.constant(fair_mixed(p)), app=7)


class TestMetrics:
    def test_values(self):
        assert stp([1.0, 1.0], [2.0, 2.0]) == pytest.approx(1.0)
        assert antt([1.0, 1.0], [2.0, 4.0]) == pytest.approx(3.0)
        assert unfairness([1.0, 1.0], [2.0, 4.0]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            stp([], [])
        with pytest.raises(ExperimentError):
            antt([1.0], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            unfairness([0.0], [1.0])


class TestColocatedRuns:
    @pytest.fixture(scope="class")
    def programs(self):
        return [get_program("streamcluster"), get_program("MG")]

    def test_runs_and_metrics(self, programs):
        p = odroid_xu4()
        result = run_colocated(p, programs, fair_mixed(p), schedule="aid_static")
        assert len(result.shared_times) == 2
        assert all(t > 0 for t in result.shared_times)
        # Space sharing can't beat solo times on half the cores.
        for solo, shared in zip(result.solo_times, result.shared_times):
            assert shared > solo
        assert 0.5 < result.stp < 2.0
        assert result.antt > 1.0
        assert "STP" in result.summary()

    def test_fair_mixed_fairer_than_cluster_split(self, programs):
        p = odroid_xu4()
        fair = run_colocated(p, programs, fair_mixed(p), schedule="aid_static")
        split = run_colocated(p, programs, cluster_split(p), schedule="aid_static")
        assert fair.unfairness < split.unfairness

    def test_aid_helps_on_asymmetric_partitions(self, programs):
        """Every application's partition under fair_mixed is a miniature
        AMP, so AID keeps beating static under co-location."""
        p = odroid_xu4()
        static = run_colocated(p, programs, fair_mixed(p), schedule="static")
        aid = run_colocated(p, programs, fair_mixed(p), schedule="aid_static")
        assert sum(aid.shared_times) < sum(static.shared_times)

    def test_reallocation_mid_run(self, programs):
        """An allocation change lands at the next loop boundary; the AID
        distribution follows the new N_B (the Sec. 4.3 notification)."""
        p = odroid_xu4()
        tl = AllocationTimeline(
            breakpoints=[
                (0.0, fair_mixed(p)),
                (0.01, priority_weighted(p, (3, 1))),
            ]
        )
        result = run_colocated(p, programs, tl, schedule="aid_static")
        assert all(t > 0 for t in result.shared_times)
        # App 0's later loops used 5 threads (3 big + 2 small).
        team_sizes = {
            len(lr.finish_times) for lr in result.results[0].loop_results
        }
        assert 4 in team_sizes and 5 in team_sizes

    def test_program_count_must_match(self, programs):
        p = odroid_xu4()
        with pytest.raises(ConfigError):
            run_colocated(p, programs[:1], fair_mixed(p, 2))

    def test_deterministic(self, programs):
        p = odroid_xu4()
        a = run_colocated(p, programs, fair_mixed(p), schedule="aid_dynamic,1,5")
        b = run_colocated(p, programs, fair_mixed(p), schedule="aid_dynamic,1,5")
        assert a.shared_times == b.shared_times
