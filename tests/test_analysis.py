"""Tests for the analysis package — including simulator-vs-arithmetic
validation (the simulator must agree with closed-form predictions in the
noise-free, zero-overhead regime)."""

import numpy as np
import pytest

from repro.amp.presets import dual_speed_platform, odroid_xu4
from repro.analysis import (
    balanced_makespan,
    breakdown,
    greedy_list_bounds,
    static_makespan,
)
from repro.errors import ExperimentError
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.sched.aid_static import AidStaticSpec
from repro.sched.dynamic import DynamicSpec
from repro.sched.static import StaticSpec
from repro.workloads.registry import get_program

from tests.helpers import run_loop

RATES_FLAT2X = [2.0, 2.0, 1.0, 1.0]  # BS order on the flat 2+2 platform


class TestPredictions:
    def test_static_makespan_formula(self):
        costs = np.ones(400)
        # 100 iterations per thread; slowest threads run at rate 1.
        assert static_makespan(costs, RATES_FLAT2X) == pytest.approx(100.0)

    def test_balanced_makespan_formula(self):
        costs = np.ones(600)
        assert balanced_makespan(costs, RATES_FLAT2X) == pytest.approx(100.0)

    def test_greedy_bounds_order(self):
        costs = np.random.default_rng(0).lognormal(0, 1, 500)
        lo, hi = greedy_list_bounds(costs, RATES_FLAT2X, chunk=4)
        assert lo <= hi
        assert lo == pytest.approx(balanced_makespan(costs, RATES_FLAT2X))

    def test_validation(self):
        with pytest.raises(ExperimentError):
            static_makespan([1.0], [])
        with pytest.raises(ExperimentError):
            balanced_makespan([-1.0], [1.0])
        with pytest.raises(ExperimentError):
            greedy_list_bounds([1.0], [1.0], chunk=0)


class TestSimulatorMatchesArithmetic:
    """Zero-overhead simulator runs must land exactly on the formulas."""

    def test_static_matches_formula(self, flat2x):
        costs = np.full(400, 2.5e-4)
        result = run_loop(flat2x, StaticSpec(), n_iterations=400, costs=costs)
        assert result.duration == pytest.approx(
            static_makespan(costs, RATES_FLAT2X), rel=1e-9
        )

    def test_dynamic_within_greedy_bounds(self, flat2x):
        rng = np.random.default_rng(1)
        costs = rng.lognormal(-9, 0.8, 700)
        result = run_loop(flat2x, DynamicSpec(4), n_iterations=700, costs=costs)
        lo, hi = greedy_list_bounds(costs, RATES_FLAT2X, chunk=4)
        assert lo - 1e-12 <= result.duration <= hi + 1e-12

    def test_aid_static_near_balanced_bound(self, flat2x):
        costs = np.full(800, 2.5e-4)
        result = run_loop(
            flat2x,
            AidStaticSpec(use_offline_sf=True),
            n_iterations=800,
            costs=costs,
            offline_sf={0: 1.0, 1: 2.0},
        )
        bound = balanced_makespan(costs, RATES_FLAT2X)
        assert result.duration == pytest.approx(bound, rel=0.01)

    def test_no_schedule_beats_balanced_bound(self, flat2x):
        rng = np.random.default_rng(2)
        costs = rng.uniform(0.5, 1.5, 500) * 1e-4
        bound = balanced_makespan(costs, RATES_FLAT2X)
        for spec in (StaticSpec(), DynamicSpec(1), AidStaticSpec()):
            result = run_loop(flat2x, spec, n_iterations=500, costs=costs)
            assert result.duration >= bound - 1e-12, spec.name


class TestBreakdown:
    @pytest.fixture(scope="class")
    def result(self):
        runner = ProgramRunner(
            odroid_xu4(), OmpEnv(schedule="dynamic,1", affinity="BS"), trace=True
        )
        return runner.run(get_program("CG"))

    def test_per_loop_aggregation(self, result):
        bd = breakdown(result)
        assert set(bd.loops) == {"cg.spmv", "cg.dot", "cg.axpy1", "cg.axpy2"}
        spmv = bd.loops["cg.spmv"]
        assert spmv.invocations == 8
        assert spmv.iterations == 8 * 2048
        assert spmv.dispatches_per_invocation > 0

    def test_state_accounting(self, result):
        bd = breakdown(result)
        assert bd.compute_s > 0
        assert bd.runtime_s > 0
        assert 0 < bd.runtime_overhead_fraction < 1
        # dynamic(1) on CG: the runtime share is substantial (the paper's
        # overhead story).
        assert bd.runtime_overhead_fraction > 0.1

    def test_hottest_loop_and_table(self, result):
        bd = breakdown(result)
        assert bd.hottest_loop().loop_name in bd.loops
        table = bd.to_table()
        assert "cg.spmv" in table and "disp/inv" in table

    def test_aid_static_much_lower_runtime_share(self):
        runner = ProgramRunner(
            odroid_xu4(), OmpEnv(schedule="aid_static", affinity="BS"), trace=True
        )
        bd_aid = breakdown(runner.run(get_program("CG")))
        runner_dyn = ProgramRunner(
            odroid_xu4(), OmpEnv(schedule="dynamic,1", affinity="BS"), trace=True
        )
        bd_dyn = breakdown(runner_dyn.run(get_program("CG")))
        assert (
            bd_aid.runtime_overhead_fraction
            < bd_dyn.runtime_overhead_fraction / 2
        )

    def test_empty_program_guard(self):
        from repro.analysis.breakdown import ProgramBreakdown

        bd = ProgramBreakdown("x", "s", 1.0, 0.0)
        with pytest.raises(ExperimentError):
            bd.hottest_loop()
