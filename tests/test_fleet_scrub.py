"""Corruption-injection matrix for the cache integrity scrub: truncated
JSON, flipped digest bytes, wrong-shard placement, stale manifests and
stale salts — every injection detected, quarantined (or pruned) and
repaired."""

import json

import pytest

from repro.amp.presets import odroid_xu4
from repro.fleet.cache import LAYOUT_SCHEMA, ResultCache
from repro.fleet.cli import main as fleet_main
from repro.fleet.jobs import JobSpec
from repro.fleet.scrub import SCRUB_SCHEMA, scrub_cache
from repro.obs import Observability
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def make_spec(seed=0):
    return JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        root_seed=seed,
    )


@pytest.fixture()
def seeded_cache(tmp_path):
    """A cache holding three valid entries (plus their specs)."""
    cache = ResultCache(tmp_path / "cache", obs=Observability())
    specs = [make_spec(seed=i) for i in range(3)]
    for spec in specs:
        cache.put(spec.execute())
    return cache, specs


def test_scrub_clean_cache_reports_clean(seeded_cache):
    cache, specs = seeded_cache
    report = scrub_cache(cache)
    assert report.clean
    assert report.scanned == report.ok == len(specs)
    assert report.quarantined == report.pruned == report.stale == 0
    assert not report.manifest_repaired
    assert report.bytes_total == cache.total_bytes() > 0


def test_scrub_quarantines_truncated_json(seeded_cache):
    cache, specs = seeded_cache
    victim = cache.path_for(specs[0].key)
    text = victim.read_text(encoding="utf-8")
    victim.write_text(text[: len(text) // 2], encoding="utf-8")
    report = scrub_cache(cache)
    assert report.quarantined == 1 and report.ok == 2
    assert report.findings[0].reason == "json"
    assert victim.with_name(victim.name + ".corrupt").is_file()
    assert not victim.exists()
    # The other entries still hit; the quarantined one is a miss.
    assert cache.get(specs[0].key) is None
    assert cache.get(specs[1].key) is not None


def test_scrub_detects_flipped_digest_byte(seeded_cache):
    """An entry whose stored digest no longer matches its file name —
    one flipped hex digit — is corruption, not a different entry."""
    cache, specs = seeded_cache
    victim = cache.path_for(specs[0].key)
    doc = json.loads(victim.read_text(encoding="utf-8"))
    d = doc["digest"]
    doc["digest"] = ("0" if d[0] != "0" else "1") + d[1:]
    victim.write_text(json.dumps(doc), encoding="utf-8")
    report = scrub_cache(cache)
    assert report.quarantined == 1
    assert report.findings[0].reason == "digest"
    assert cache.obs.registry.counter(
        "fleet_cache_corrupt_total", reason="digest"
    ).value == 1


def test_scrub_detects_wrong_shard_placement(seeded_cache):
    cache, specs = seeded_cache
    good = cache.path_for(specs[0].key)
    digest = specs[0].key
    wrong_shard = "00" if digest[:2] != "00" else "ff"
    misplaced = cache.root / wrong_shard / good.name
    misplaced.parent.mkdir(parents=True, exist_ok=True)
    misplaced.write_text(good.read_text(encoding="utf-8"), encoding="utf-8")
    report = scrub_cache(cache)
    assert report.quarantined == 1 and report.ok == 3
    assert report.findings[0].reason == "misplaced"
    assert misplaced.with_name(misplaced.name + ".corrupt").is_file()
    # The correctly-placed twin is untouched.
    assert cache.get(specs[0].key) is not None


def test_scrub_quarantines_garbage_file_names(seeded_cache):
    cache, specs = seeded_cache
    shard = cache.path_for(specs[0].key).parent
    (shard / "notes.txt").write_text("hello", encoding="utf-8")
    report = scrub_cache(cache)
    assert report.quarantined == 1
    assert report.findings[0].reason == "name"
    assert (shard / "notes.txt.corrupt").is_file()


def test_scrub_repairs_stale_manifest(seeded_cache):
    cache, specs = seeded_cache
    cache.manifest_path.write_text(
        json.dumps(
            {"schema": LAYOUT_SCHEMA, "layout": "flat/v0", "shard_width": 0}
        ),
        encoding="utf-8",
    )
    fresh = ResultCache(cache.root, obs=Observability())
    report = scrub_cache(fresh)
    assert report.manifest_repaired
    assert fresh.manifest_ok()
    assert report.ok == len(specs)
    # A second scrub is clean: repair converged.
    assert scrub_cache(ResultCache(cache.root)).clean


def test_scrub_counts_stale_salt_and_prunes_on_request(
    seeded_cache, monkeypatch
):
    cache, specs = seeded_cache
    monkeypatch.setattr("repro.fleet.jobs.CODE_SALT", "v999/other")
    monkeypatch.setattr("repro.fleet.scrub.CODE_SALT", "v999/other")
    report = scrub_cache(cache)
    assert report.stale == len(specs) and report.ok == 0
    assert report.quarantined == 0, "staleness is not corruption"
    # Stale entries still occupy budgeted space until pruned.
    assert report.bytes_total > 0
    report = scrub_cache(cache, prune_stale=True)
    assert report.pruned == len(specs)
    assert {f.reason for f in report.findings} == {"stale-salt"}
    assert report.bytes_total == 0
    assert len(cache) == 0


def test_scrub_rebuilds_index_to_survivor_census(seeded_cache):
    cache, specs = seeded_cache
    victim = cache.path_for(specs[0].key)
    victim.write_text("garbage", encoding="utf-8")
    before = cache.total_bytes()
    report = scrub_cache(cache)
    assert report.index_rebuilt
    # The quarantined entry left the index; totals now match disk.
    assert cache.total_bytes() < before
    assert cache.total_bytes() == report.bytes_total
    assert set(cache._load_index()["entries"]) == {
        s.key for s in specs[1:]
    }


def test_scrub_report_payload_and_text(seeded_cache):
    cache, specs = seeded_cache
    cache.path_for(specs[0].key).write_text("junk", encoding="utf-8")
    report = scrub_cache(cache)
    payload = report.to_payload()
    assert payload["schema"] == SCRUB_SCHEMA
    assert payload["scanned"] == 3 and payload["quarantined"] == 1
    assert payload["findings"][0]["action"] == "quarantined"
    text = report.format_text()
    assert "3 scanned" in text and "quarantined" in text


def test_scrub_cli_writes_report_artifact(seeded_cache, tmp_path, capsys):
    cache, specs = seeded_cache
    cache.path_for(specs[0].key).write_text("junk", encoding="utf-8")
    out = tmp_path / "report.json"
    assert fleet_main([
        "scrub", "--cache-dir", str(cache.root), "--json", str(out),
    ]) == 0
    assert "scrub" in capsys.readouterr().out
    doc = json.loads(out.read_text(encoding="utf-8"))
    assert doc["schema"] == SCRUB_SCHEMA
    assert doc["quarantined"] == 1 and doc["ok"] == 2


def test_scrub_cli_requires_cache(capsys):
    assert fleet_main(["scrub", "--no-cache"]) == 2
    assert "scrub needs a cache" in capsys.readouterr().err


def test_scrub_missing_root_is_a_noop(tmp_path):
    report = scrub_cache(ResultCache(tmp_path / "never-written"))
    assert report.scanned == 0 and report.clean
