"""Unit tests for the shared AID sampling machinery."""

import threading

import pytest

from repro.amp.presets import odroid_xu4
from repro.amp.topology import bs_mapping
from repro.errors import ConfigError, SchedulerError
from repro.runtime.context import LoopContext
from repro.runtime.team import Team
from repro.sched.aid_common import SamplingState, aid_targets, offline_sf_table


class TestSamplingState:
    def test_record_counts_completions(self):
        s = SamplingState(n_types=2)
        assert s.record(0, 1.0) == 1
        assert s.record(1, 0.5) == 2
        assert s.record(1, 0.7) == 3

    def test_mean_times(self):
        s = SamplingState(n_types=2)
        s.record(0, 2.0)
        s.record(0, 4.0)
        s.record(1, 1.0)
        assert s.mean_times() == [3.0, 1.0]

    def test_sf_relative_to_slowest_type(self):
        s = SamplingState(n_types=2)
        s.record(0, 3.0)  # small cores: 3 s per chunk
        s.record(1, 1.0)  # big cores: 1 s per chunk
        sf = s.sf_per_type()
        assert sf[0] == 1.0
        assert sf[1] == pytest.approx(3.0)

    def test_unsampled_type_falls_back_to_one(self):
        s = SamplingState(n_types=3)
        s.record(0, 2.0)
        s.record(2, 1.0)
        sf = s.sf_per_type()
        assert sf[1] == 1.0  # type 1 never sampled
        assert sf[2] == pytest.approx(2.0)

    def test_zero_duration_degenerates_to_one(self):
        s = SamplingState(n_types=2)
        s.record(0, 0.0)
        s.record(1, 0.0)
        assert s.sf_per_type() == {0: 1.0, 1: 1.0}

    def test_negative_duration_rejected(self):
        s = SamplingState(n_types=1)
        with pytest.raises(SchedulerError):
            s.record(0, -0.1)

    def test_thread_safe_with_lock(self):
        lock = threading.Lock()
        s = SamplingState(n_types=1, lock=lock)
        n, per = 8, 500

        def bump():
            for _ in range(per):
                s.record(0, 0.001)

        threads = [threading.Thread(target=bump) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.completed.value == n * per
        assert s.mean_times()[0] == pytest.approx(0.001)


class TestAidTargets:
    def test_zero_iterations(self):
        assert aid_targets(0, {0: 1.0, 1: 2.0}, (4, 4)) == [0, 0]

    def test_no_threads_rejected(self):
        with pytest.raises(SchedulerError):
            aid_targets(100, {0: 1.0}, (0,))

    def test_missing_type_defaults_to_sf_one(self):
        targets = aid_targets(120, {0: 1.0}, (2, 2))
        # SF for type 1 defaults to 1 -> even split.
        assert targets == [30, 30]


class TestOfflineTable:
    def make_ctx(self, offline):
        p = odroid_xu4()
        team = Team(p, bs_mapping(p))
        return LoopContext(team, 100, offline_sf=offline)

    def test_normalizes_to_slowest_type(self):
        ctx = self.make_ctx({0: 2.0, 1: 7.0})
        table = offline_sf_table(ctx)
        assert table[0] == 1.0
        assert table[1] == pytest.approx(3.5)

    def test_zero_baseline_rejected(self):
        ctx = self.make_ctx({0: 0.0, 1: 2.0})
        with pytest.raises(SchedulerError):
            offline_sf_table(ctx)

    def test_missing_entry_rejected(self):
        ctx = self.make_ctx({0: 1.0})
        with pytest.raises(ConfigError):
            offline_sf_table(ctx)

    def test_no_table_rejected(self):
        ctx = self.make_ctx(None)
        with pytest.raises(ConfigError):
            offline_sf_table(ctx)
