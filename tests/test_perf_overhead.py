"""Unit tests for the runtime-overhead model."""

import pytest

from repro.amp.presets import CORTEX_A7, CORTEX_A15
from repro.errors import ConfigError
from repro.perfmodel.overhead import ZERO_OVERHEAD, OverheadModel


def test_defaults_are_positive():
    m = OverheadModel()
    assert m.dispatch(CORTEX_A7) > 0
    assert m.loop_start(CORTEX_A7) > 0
    assert m.barrier(CORTEX_A7) > 0
    assert m.timestamp(CORTEX_A7) > 0


def test_big_cores_dispatch_faster():
    m = OverheadModel()
    assert m.dispatch(CORTEX_A15) < m.dispatch(CORTEX_A7)
    # Exactly by the runtime_call_speedup ratio.
    assert m.dispatch(CORTEX_A7) / m.dispatch(CORTEX_A15) == pytest.approx(
        CORTEX_A15.runtime_call_speedup / CORTEX_A7.runtime_call_speedup
    )


def test_atomic_contention_grows_with_team():
    m = OverheadModel(atomic_contention=0.1e-6)
    assert m.dispatch(CORTEX_A7, n_threads=8) > m.dispatch(CORTEX_A7, n_threads=1)


def test_timestamp_is_much_cheaper_than_dispatch():
    """The paper stresses the sampling phase is cheap: vsyscall clock
    reads, no syscalls."""
    m = OverheadModel()
    assert m.timestamp(CORTEX_A7) < m.dispatch(CORTEX_A7) / 5


def test_scaled():
    m = OverheadModel().scaled(2.0)
    assert m.dispatch_cost == pytest.approx(OverheadModel().dispatch_cost * 2)
    assert m.atomic_service == pytest.approx(OverheadModel().atomic_service * 2)
    assert m.wake_jitter == pytest.approx(OverheadModel().wake_jitter * 2)


def test_scaled_rejects_negative():
    with pytest.raises(ConfigError):
        OverheadModel().scaled(-1.0)


def test_zero_overhead_is_all_zero():
    assert ZERO_OVERHEAD.dispatch(CORTEX_A7, 8) == 0.0
    assert ZERO_OVERHEAD.barrier(CORTEX_A7) == 0.0
    assert ZERO_OVERHEAD.atomic_service == 0.0


def test_negative_cost_rejected():
    with pytest.raises(ConfigError):
        OverheadModel(dispatch_cost=-1e-9)
    with pytest.raises(ConfigError):
        OverheadModel(atomic_service=-1e-9)
