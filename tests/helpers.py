"""Test helpers: compact drivers around the loop executor."""

from __future__ import annotations

import numpy as np

from repro.amp.platform import Platform
from repro.amp.topology import bs_mapping
from repro.perfmodel.kernel import KernelProfile
from repro.perfmodel.locality import LocalityModel
from repro.perfmodel.overhead import ZERO_OVERHEAD, OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.executor import LoopExecutor, LoopResult
from repro.runtime.team import Team
from repro.sched.base import ScheduleSpec
from repro.workloads.costmodels import UniformCost
from repro.workloads.loopspec import LoopSpec

#: A bland kernel: compute-ish, tiny working set, identical everywhere.
PLAIN_KERNEL = KernelProfile(
    name="test-plain", compute_weight=1.0, ilp=0.0, working_set_mb=0.0
)


def make_loop(n_iterations: int, work: float = 1e-4, kernel=PLAIN_KERNEL) -> LoopSpec:
    return LoopSpec(
        name=f"test.loop{n_iterations}",
        n_iterations=n_iterations,
        cost=UniformCost(work),
        kernel=kernel,
    )


def run_loop(
    platform: Platform,
    spec: ScheduleSpec,
    n_iterations: int = 256,
    costs: np.ndarray | None = None,
    work: float = 1e-4,
    overhead: OverheadModel | None = None,
    n_threads: int | None = None,
    offline_sf=None,
    kernel=PLAIN_KERNEL,
    trace=None,
    obs=None,
) -> LoopResult:
    """Run one loop on the simulator and return its result."""
    team = Team(platform, bs_mapping(platform, n_threads))
    loop = make_loop(n_iterations, work, kernel)
    if costs is None:
        costs = np.full(n_iterations, work)
    executor = LoopExecutor(
        team,
        PerfModel(platform),
        overhead if overhead is not None else ZERO_OVERHEAD,
        recorder=trace,
        locality=LocalityModel(enabled=False),
        obs=obs,
    )
    return executor.run(loop, costs, spec, offline_sf=offline_sf)


def assert_valid_partition(result: LoopResult, n_iterations: int) -> None:
    """Every iteration executed exactly once — the core invariant."""
    seen = np.zeros(n_iterations, dtype=int)
    for _tid, lo, hi in result.ranges:
        assert 0 <= lo < hi <= n_iterations
        seen[lo:hi] += 1
    assert seen.min() == 1 and seen.max() == 1, (
        f"iterations executed {seen.min()}..{seen.max()} times"
    )
    assert sum(result.iterations) == n_iterations
