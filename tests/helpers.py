"""Test helpers: compact drivers around the loop executor.

The loop/platform builders live in :mod:`repro.check.generators` — the
conformance layer and the unit suite drive the exact same factories, so
a fuzz counterexample replays byte-identically inside a unit test.
"""

from __future__ import annotations

import numpy as np

from repro.check.generators import (  # noqa: F401 — re-exported test API
    PLAIN_KERNEL,
    make_loop,
    preset_platform,
    run_loop,
)
from repro.runtime.executor import LoopResult


def assert_valid_partition(result: LoopResult, n_iterations: int) -> None:
    """Every iteration executed exactly once — the core invariant."""
    seen = np.zeros(n_iterations, dtype=int)
    for _tid, lo, hi in result.ranges:
        assert 0 <= lo < hi <= n_iterations
        seen[lo:hi] += 1
    assert seen.min() == 1 and seen.max() == 1, (
        f"iterations executed {seen.min()}..{seen.max()} times"
    )
    assert sum(result.iterations) == n_iterations
