"""Unit tests for the environment-variable front end."""

import pytest

from repro.errors import ConfigError
from repro.runtime.env import OmpEnv
from repro.sched import (
    AidDynamicSpec,
    AidHybridSpec,
    AidStaticSpec,
    DynamicSpec,
    StaticSpec,
)


def test_defaults():
    env = OmpEnv()
    assert env.schedule == "static"
    assert env.affinity == "BS"
    assert isinstance(env.schedule_spec(), StaticSpec)


def test_bad_schedule_fails_eagerly():
    with pytest.raises(ConfigError):
        OmpEnv(schedule="fifo")


def test_bad_affinity_rejected():
    with pytest.raises(ConfigError):
        OmpEnv(affinity="ZZ")


def test_bad_thread_count_rejected():
    with pytest.raises(ConfigError):
        OmpEnv(num_threads=0)


def test_from_vars_parses_environment():
    env = OmpEnv.from_vars(
        {
            "OMP_SCHEDULE": "aid_dynamic,2,10",
            "OMP_NUM_THREADS": "6",
            "GOMP_AMP_AFFINITY": "SB",
            "PATH": "/usr/bin",  # unknown keys ignored
        }
    )
    assert env.num_threads == 6
    assert env.affinity == "SB"
    spec = env.schedule_spec()
    assert isinstance(spec, AidDynamicSpec)
    assert (spec.minor_chunk, spec.major_chunk) == (2, 10)


def test_from_vars_defaults():
    env = OmpEnv.from_vars({})
    assert env.schedule == "static"
    assert env.num_threads is None
    assert env.affinity == "BS"


def test_team_size_defaults_to_all_cores(platform_a):
    assert OmpEnv().team_size(platform_a) == 8
    assert OmpEnv(num_threads=5).team_size(platform_a) == 5


def test_oversubscription_rejected(platform_a):
    with pytest.raises(ConfigError):
        OmpEnv(num_threads=16).team_size(platform_a)


def test_mapping_matches_affinity(platform_a):
    bs = OmpEnv(affinity="BS").mapping(platform_a)
    sb = OmpEnv(affinity="SB").mapping(platform_a)
    assert bs.cpu_of_tid[0] == 7
    assert sb.cpu_of_tid[0] == 0


@pytest.mark.parametrize(
    "text,kind",
    [
        ("aid_static", AidStaticSpec),
        ("aid_hybrid,60", AidHybridSpec),
        ("dynamic,8", DynamicSpec),
    ],
)
def test_schedule_spec_kinds(text, kind):
    assert isinstance(OmpEnv(schedule=text).schedule_spec(), kind)
