"""Tests for the extension experiment modules (energy, multiapp) and the
Fig. 6/7/Table 2 modules on reduced program sets."""

import pytest

from repro.experiments import energy, fig67, multiapp, table2
from repro.workloads.registry import get_program


class TestEnergyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return energy.run(programs=("IS", "streamcluster"))

    def test_cells_complete(self, result):
        assert set(result.cells) == {"IS", "streamcluster"}
        for row in result.cells.values():
            assert len(row) == 7
            for t, e in row.values():
                assert t > 0 and e.total_j > 0

    def test_baseline_normalizes_to_one(self, result):
        for program in result.cells:
            assert result.normalized_energy(
                program, "static(SB)", "static(SB)"
            ) == pytest.approx(1.0)

    def test_aid_wins_edp(self, result):
        for program in result.cells:
            assert result.normalized_edp(program, "AID-static", "static(SB)") < 0.95

    def test_report_renders(self, result):
        text = energy.format_report(result)
        assert "EDP" in text and "IS" in text


class TestMultiAppExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return multiapp.run(programs=("streamcluster", "MG"))

    def test_all_policy_schedule_cells(self, result):
        policies = {p for p, _ in result.cells}
        schedules = {s for _, s in result.cells}
        assert policies == {"cluster-split", "fair-mixed", "priority(3,1)"}
        assert schedules == {"static", "aid_static", "aid_dynamic,1,5"}

    def test_fairness_ordering(self, result):
        fair = result.cells[("fair-mixed", "aid_static")]
        split = result.cells[("cluster-split", "aid_static")]
        assert fair.unfairness < split.unfairness

    def test_realloc_present(self, result):
        assert result.realloc is not None
        assert all(t > 0 for t in result.realloc.shared_times)

    def test_report_renders(self, result):
        text = multiapp.format_report(result)
        assert "STP" in text and "realloc" in text


class TestReducedGrids:
    def test_fig67_on_subset(self):
        programs = [get_program("EP"), get_program("IS")]
        result = fig67.run(programs=programs)
        assert set(result.platform_a.times) == {"EP", "IS"}
        assert set(result.platform_b.times) == {"EP", "IS"}
        report = fig67.format_report(result)
        assert "Fig. 6" in report and "Fig. 7" in report

    def test_table2_from_precomputed_grids(self):
        programs = [get_program("EP"), get_program("streamcluster")]
        grids = fig67.run(programs=programs)
        result = table2.run(fig67=grids)
        assert set(result.gains) == {"Platform A", "Platform B"}
        for rows in result.gains.values():
            assert len(rows) == 3
        assert "paper mean" in table2.format_report(result)
