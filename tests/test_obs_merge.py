"""Tests for cross-process snapshot merging (repro.obs.merge):
decision-log digests, the merge algebra (counters/buckets sum, gauges
last-wins), label augmentation, schema/bounds validation, and the
volatile-field stripping that the determinism tests build on."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import DecisionLog, MetricsRegistry, Observability
from repro.obs.merge import (
    JOB_SCHEMA,
    VOLATILE_META,
    WALL_CLOCK_METRICS,
    MergedSnapshot,
    comparable_snapshot,
    job_snapshot,
    job_snapshot_json,
    merge,
    summarize_decisions,
)
from repro.obs.snapshot import SCHEMA as SNAPSHOT_SCHEMA


def make_obs(dispatches=3, chunk_values=(1.0, 4.0), gauge=0.5):
    """A small but fully populated Observability bundle."""
    obs = Observability()
    for _ in range(dispatches):
        obs.registry.counter("dispatches_total", loop="L", tid=0).inc()
    obs.registry.gauge("loop_last_imbalance", loop="L").set(gauge)
    hist = obs.registry.histogram(
        "chunk_size_iterations", buckets=(1.0, 4.0, 16.0), loop="L"
    )
    for v in chunk_values:
        hist.observe(v)
    obs.decisions.record(
        loop="L", scheduler="aid_hybrid", tid=0, t=0.0, event="sample_start"
    )
    obs.decisions.record(
        loop="L", scheduler="aid_hybrid", tid=0, t=0.1,
        event="publish_targets",
    )
    return obs


# -- decision summaries ------------------------------------------------------


class TestSummarizeDecisions:
    def test_counts_per_scheduler_event_and_loop(self):
        records = [
            {"scheduler": "aid_hybrid", "event": "sample_start", "loop": "a"},
            {"scheduler": "aid_hybrid", "event": "sample_start", "loop": "a"},
            {"scheduler": "aid_hybrid", "event": "publish_targets", "loop": "a"},
            {"scheduler": "aid_dynamic", "event": "phase_join", "loop": "b"},
        ]
        summary = summarize_decisions(records)
        assert summary["total"] == 4
        assert summary["schedulers"]["aid_hybrid"] == {
            "total": 3,
            "events": {"publish_targets": 1, "sample_start": 2},
        }
        assert summary["schedulers"]["aid_dynamic"]["total"] == 1
        assert summary["loops"] == {"a": 3, "b": 1}

    def test_empty_log_digests_to_zero(self):
        assert summarize_decisions([]) == {
            "total": 0, "schedulers": {}, "loops": {}
        }

    def test_key_order_is_deterministic(self):
        fwd = [
            {"scheduler": "b", "event": "y", "loop": "m"},
            {"scheduler": "a", "event": "x", "loop": "k"},
        ]
        a = json.dumps(summarize_decisions(fwd), sort_keys=False)
        b = json.dumps(summarize_decisions(list(reversed(fwd))), sort_keys=False)
        assert a == b


# -- the per-job document ----------------------------------------------------


class TestJobSnapshot:
    def test_document_shape(self):
        doc = job_snapshot(make_obs())
        assert doc["schema"] == JOB_SCHEMA
        assert doc["metrics"]["counters"]
        # Decision records are digested, never shipped raw.
        assert doc["decisions"]["total"] == 2
        assert "records" not in doc["decisions"]

    def test_canonical_json_is_deterministic(self):
        assert job_snapshot_json(make_obs()) == job_snapshot_json(make_obs())

    def test_json_round_trips_exactly(self):
        text = job_snapshot_json(make_obs())
        rebuilt = json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )
        assert rebuilt == text


# -- the merge algebra -------------------------------------------------------


class TestMergedSnapshot:
    def test_counters_and_histogram_buckets_sum(self):
        merged = merge([
            job_snapshot(make_obs(dispatches=3, chunk_values=(1.0,))),
            job_snapshot(make_obs(dispatches=5, chunk_values=(4.0, 16.0))),
        ])
        snap = merged.registry.snapshot()
        (counter,) = [
            c for c in snap["counters"] if c["name"] == "dispatches_total"
        ]
        assert counter["value"] == 8.0
        (hist,) = snap["histograms"]
        assert hist["count"] == 3
        assert hist["sum"] == 21.0
        assert merged.jobs == 2

    def test_gauges_are_last_wins_in_merge_order(self):
        a = job_snapshot(make_obs(gauge=0.25))
        b = job_snapshot(make_obs(gauge=0.75))
        forward = merge([a, b]).registry.value(
            "loop_last_imbalance", loop="L"
        )
        backward = merge([b, a]).registry.value(
            "loop_last_imbalance", loop="L"
        )
        assert forward == 0.75
        assert backward == 0.25

    def test_extra_labels_keep_jobs_distinguishable(self):
        merged = MergedSnapshot()
        merged.add_job(job_snapshot(make_obs(dispatches=2)), program="EP")
        merged.add_job(job_snapshot(make_obs(dispatches=7)), program="IS")
        reg = merged.registry
        assert reg.value("dispatches_total", loop="L", tid=0, program="EP") == 2
        assert reg.value("dispatches_total", loop="L", tid=0, program="IS") == 7

    def test_decision_summaries_accumulate(self):
        merged = merge([job_snapshot(make_obs()), job_snapshot(make_obs())])
        summary = merged.decision_summary()
        assert summary["total"] == 4
        assert summary["schedulers"]["aid_hybrid"]["events"] == {
            "publish_targets": 2, "sample_start": 2,
        }

    def test_merge_can_extend_an_existing_registry(self):
        registry = MetricsRegistry()
        registry.counter("fleet_jobs_submitted").inc(2)
        merged = merge([job_snapshot(make_obs())], registry=registry)
        assert merged.registry is registry
        assert registry.value("fleet_jobs_submitted") == 2

    def test_rejects_foreign_schema(self):
        with pytest.raises(ObsError, match="job-snapshot"):
            MergedSnapshot().add_job({"schema": "something/else"})

    def test_rejects_histogram_bounds_mismatch(self):
        merged = MergedSnapshot()
        merged.add_job(job_snapshot(make_obs()))
        other = Observability()
        other.registry.histogram(
            "chunk_size_iterations", buckets=(2.0, 8.0), loop="L"
        ).observe(1.0)
        with pytest.raises(ObsError, match="bucket mismatch"):
            merged.add_job(job_snapshot(other))

    def test_to_snapshot_is_a_report_readable_document(self):
        merged = merge([job_snapshot(make_obs())])
        doc = merged.to_snapshot(meta={"grids": "smoke"})
        assert doc["schema"] == SNAPSHOT_SCHEMA
        assert doc["meta"] == {"grids": "smoke"}
        assert doc["decisions"] == []
        assert doc["decision_summary"]["total"] == 2
        assert doc["merged_jobs"] == 1

    def test_empty_merge_yields_an_empty_snapshot(self):
        doc = MergedSnapshot().to_snapshot()
        assert doc["merged_jobs"] == 0
        assert doc["metrics"] == {
            "counters": [], "gauges": [], "histograms": [],
            "timeseries": [], "digests": [],
        }


# -- comparable_snapshot -----------------------------------------------------


class TestComparableSnapshot:
    def make_doc(self):
        obs = Observability(decisions=DecisionLog())
        obs.registry.counter("dispatches_total", loop="L").inc(4)
        obs.registry.histogram(
            "fleet_job_duration_seconds", buckets=(1.0,)
        ).observe(0.5)
        obs.registry.gauge(
            "fleet_duration_estimate_seconds", profile="EP|static|BS|A"
        ).set(0.3)
        merged = merge([job_snapshot(obs)])
        return merged.to_snapshot(
            meta={"grids": "smoke", "jobs": 4, "wall_clock_seconds": 1.23}
        )

    def test_strips_wall_clock_metrics_and_volatile_meta(self):
        doc = comparable_snapshot(self.make_doc())
        names = {
            m["name"]
            for kind in ("counters", "gauges", "histograms")
            for m in doc["metrics"][kind]
        }
        assert names.isdisjoint(WALL_CLOCK_METRICS)
        assert "dispatches_total" in names
        assert set(doc["meta"]).isdisjoint(VOLATILE_META)
        assert doc["meta"] == {"grids": "smoke"}

    def test_is_a_deep_copy(self):
        original = self.make_doc()
        copy = comparable_snapshot(original)
        copy["meta"]["grids"] = "tampered"
        copy["metrics"]["counters"][0]["value"] = -1
        assert original["meta"]["grids"] == "smoke"
        assert original["metrics"]["counters"][0]["value"] != -1

    def test_identical_docs_stay_identical(self):
        a = comparable_snapshot(self.make_doc())
        b = comparable_snapshot(self.make_doc())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
