"""Unit tests for AID-dynamic (the Fig. 5 state machine)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.perfmodel.overhead import OverheadModel
from repro.sched.aid_dynamic import AidDynamicSpec
from repro.sched.dynamic import DynamicSpec

from tests.helpers import assert_valid_partition, run_loop


def test_name_and_validation():
    assert AidDynamicSpec().name == "aid_dynamic,1,5"
    assert AidDynamicSpec(2, 20).name == "aid_dynamic,2,20"
    assert "no-endgame" in AidDynamicSpec(endgame=False).name
    assert "no-smoothing" in AidDynamicSpec(smoothing=False).name
    assert AidDynamicSpec().requires_bs_mapping
    with pytest.raises(ConfigError):
        AidDynamicSpec(minor_chunk=0)
    with pytest.raises(ConfigError):
        AidDynamicSpec(minor_chunk=4, major_chunk=2)  # M must be >= m


def test_partitions_iterations(platform_a):
    for m, M in ((1, 5), (1, 10), (2, 20), (5, 5)):
        result = run_loop(
            platform_a, AidDynamicSpec(m, M), n_iterations=1111
        )
        assert_valid_partition(result, 1111)


def test_tiny_loops_terminate(flat2x):
    for n in (1, 3, 7, 8, 9):
        result = run_loop(flat2x, AidDynamicSpec(1, 5), n_iterations=n)
        assert sum(result.iterations) == n


def test_fewer_dispatches_than_dynamic(flat2x):
    """The design goal: big-core threads remove R*M iterations at once,
    so the pool is touched far less often than with dynamic(m)."""
    aid = run_loop(flat2x, AidDynamicSpec(1, 5), n_iterations=2000)
    dyn = run_loop(flat2x, DynamicSpec(1), n_iterations=2000)
    assert aid.dispatches < dyn.dispatches / 2


def test_big_core_threads_take_more(flat2x):
    result = run_loop(flat2x, AidDynamicSpec(1, 5), n_iterations=2000)
    big = sum(result.iterations[:2])
    small = sum(result.iterations[2:])
    assert big / small == pytest.approx(2.0, rel=0.25)


def test_phase_allotments_follow_ratio(flat2x):
    """During AID phases big threads should receive ~R*M-sized ranges."""
    result = run_loop(flat2x, AidDynamicSpec(1, 10), n_iterations=4000)
    big_ranges = [hi - lo for tid, lo, hi in result.ranges if tid in (0, 1)]
    # Ignore the m-sized sampling/wait steals; the large allotments
    # should cluster around R*M = 2*10.
    large = [s for s in big_ranges if s > 10]
    assert large, "big threads never received an AID allotment"
    assert np.median(large) == pytest.approx(20, rel=0.3)


def test_ratio_converges_on_flat_platform(flat2x):
    result = run_loop(flat2x, AidDynamicSpec(1, 5), n_iterations=4000)
    sched = result.extra["scheduler"]
    ratio = sched.current_ratio()
    assert ratio is not None
    assert ratio[1] == pytest.approx(2.0, rel=0.25)
    assert sched.phases_run >= 2


def test_endgame_switch_reduces_tail_imbalance(flat2x):
    """Fig. 5's optimization: with large M and no endgame, one thread can
    drain the pool and leave others idle; the switch to dynamic(m)
    removes that."""
    n = 800
    with_endgame = run_loop(
        flat2x, AidDynamicSpec(1, 50, endgame=True), n_iterations=n
    )
    without = run_loop(
        flat2x, AidDynamicSpec(1, 50, endgame=False), n_iterations=n
    )
    assert with_endgame.end_time <= without.end_time * 1.001


def test_less_chunk_sensitive_than_dynamic(flat2x):
    """Fig. 8's message, in miniature: growing the Major chunk hurts
    AID-dynamic far less than growing dynamic's chunk hurts dynamic."""
    n = 1000
    overhead = OverheadModel()
    work = 1e-4  # coarse enough that dispatch overhead is negligible

    def span(spec):
        return run_loop(
            flat2x, spec, n_iterations=n, work=work, overhead=overhead
        ).end_time

    # Sensitivity = how much worse the large-chunk setting is than the
    # small-chunk one. Large dynamic chunks cause end-of-loop imbalance;
    # AID-dynamic's endgame removes exactly that failure mode.
    dyn_spread = span(DynamicSpec(100)) / span(DynamicSpec(1))
    aid_spread = span(AidDynamicSpec(2, 100)) / span(AidDynamicSpec(1, 5))
    assert dyn_spread > 1.03
    assert aid_spread < dyn_spread


def test_smoothing_tracks_changing_costs(flat2x):
    """With drifting costs the resmoothed R should track reality better
    than a frozen R (no worse completion, usually better)."""
    n = 3000
    costs = np.linspace(0.5, 2.0, n) * 1e-4
    smooth = run_loop(
        flat2x, AidDynamicSpec(1, 10, smoothing=True), n_iterations=n, costs=costs
    )
    frozen = run_loop(
        flat2x, AidDynamicSpec(1, 10, smoothing=False), n_iterations=n, costs=costs
    )
    assert smooth.end_time <= frozen.end_time * 1.05


def test_three_core_types(tri_platform):
    result = run_loop(tri_platform, AidDynamicSpec(1, 5), n_iterations=1500)
    assert_valid_partition(result, 1500)
    assert min(result.iterations[0:2]) > max(result.iterations[4:6])
