"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.amp.presets import (
    dual_speed_platform,
    odroid_xu4,
    tri_type_platform,
    xeon_emulated,
)
from repro.amp.topology import bs_mapping, sb_mapping
from repro.perfmodel.overhead import ZERO_OVERHEAD, OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.team import Team


@pytest.fixture
def platform_a():
    return odroid_xu4()


@pytest.fixture
def platform_b():
    return xeon_emulated()


@pytest.fixture
def flat2x():
    """A 2+2 AMP whose big cores are exactly 2x faster for all code —
    analytic expectations are exact on it."""
    return dual_speed_platform(n_small=2, n_big=2, big_speedup=2.0)


@pytest.fixture
def flat2x_team(flat2x):
    return Team(flat2x, bs_mapping(flat2x))


@pytest.fixture
def tri_platform():
    return tri_type_platform()


@pytest.fixture
def team_a_bs(platform_a):
    return Team(platform_a, bs_mapping(platform_a))


@pytest.fixture
def team_a_sb(platform_a):
    return Team(platform_a, sb_mapping(platform_a))


@pytest.fixture
def zero_overhead():
    return ZERO_OVERHEAD


@pytest.fixture
def default_overhead():
    return OverheadModel()


@pytest.fixture
def perf_a(platform_a):
    return PerfModel(platform_a)
