"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amp.topology import bs_mapping, sb_mapping
from repro.check.generators import preset_platform
from repro.perfmodel.overhead import ZERO_OVERHEAD, OverheadModel
from repro.perfmodel.speed import PerfModel
from repro.runtime.team import Team
from repro.sim.rng import stable_seed


@pytest.fixture
def platform_a():
    return preset_platform("odroid_xu4")


@pytest.fixture
def platform_b():
    return preset_platform("xeon_emulated")


@pytest.fixture
def flat2x():
    """A 2+2 AMP whose big cores are exactly 2x faster for all code —
    analytic expectations are exact on it."""
    return preset_platform("dual:2:2")


@pytest.fixture
def flat2x_team(flat2x):
    return Team(flat2x, bs_mapping(flat2x))


@pytest.fixture
def tri_platform():
    return preset_platform("tri")


@pytest.fixture
def team_a_bs(platform_a):
    return Team(platform_a, bs_mapping(platform_a))


@pytest.fixture
def team_a_sb(platform_a):
    return Team(platform_a, sb_mapping(platform_a))


@pytest.fixture
def zero_overhead():
    return ZERO_OVERHEAD


@pytest.fixture
def default_overhead():
    return OverheadModel()


@pytest.fixture
def perf_a(platform_a):
    return PerfModel(platform_a)


@pytest.fixture
def rng(request):
    """Seeded per-test RNG, announcing its seed for replay.

    The seed is stable-hashed from the test's node id, so reruns of one
    test are deterministic while distinct tests get distinct streams.
    Override with ``REPRO_TEST_SEED=<n> pytest ...`` to replay a stream
    in a different test; the print only surfaces in pytest's captured
    output when the test fails.
    """
    import os

    override = os.environ.get("REPRO_TEST_SEED")
    if override is not None:
        seed = int(override)
    else:
        seed = stable_seed("tests", request.node.nodeid)
    print(f"rng fixture seed: {seed} (REPRO_TEST_SEED={seed} to replay)")
    return np.random.default_rng(seed)
