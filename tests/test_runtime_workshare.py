"""Unit tests for the work-share iteration pool."""

import threading

import pytest

from repro.errors import WorkShareError
from repro.runtime.workshare import WorkShare


def test_initial_state():
    ws = WorkShare(0, 100)
    assert ws.n_iterations == 100
    assert ws.remaining == 100
    assert not ws.exhausted
    assert ws.dispatch_count == 0


def test_invalid_range_rejected():
    with pytest.raises(WorkShareError):
        WorkShare(10, 5)


def test_take_removes_chunk():
    ws = WorkShare(0, 10)
    assert ws.take(4) == (0, 4)
    assert ws.take(4) == (4, 8)
    assert ws.remaining == 2


def test_take_clamps_at_end():
    ws = WorkShare(0, 10)
    ws.take(8)
    assert ws.take(8) == (8, 10)
    assert ws.exhausted


def test_take_from_empty_returns_none():
    ws = WorkShare(0, 4)
    ws.take(4)
    assert ws.take(1) is None
    assert ws.take(100) is None


def test_empty_pool_from_start():
    ws = WorkShare(5, 5)
    assert ws.n_iterations == 0
    assert ws.take(1) is None


def test_nonzero_start():
    ws = WorkShare(100, 110)
    assert ws.take(5) == (100, 105)


def test_take_rejects_nonpositive_chunk():
    ws = WorkShare(0, 10)
    with pytest.raises(WorkShareError):
        ws.take(0)
    with pytest.raises(WorkShareError):
        ws.take(-3)


def test_dispatch_count_tracks_successes_only():
    ws = WorkShare(0, 5)
    ws.take(3)
    ws.take(3)  # clamped but successful
    ws.take(3)  # empty -> not counted
    assert ws.dispatch_count == 2


def test_take_all():
    ws = WorkShare(0, 10)
    ws.take(3)
    assert ws.take_all() == (3, 10)
    assert ws.exhausted


def test_concurrent_takes_partition_the_pool():
    """Under real threads the pool must hand out each iteration exactly
    once — the fetch-and-add guarantee."""
    lock = threading.Lock()
    n = 20_000
    ws = WorkShare(0, n, lock)
    got: list[list[tuple[int, int]]] = [[] for _ in range(8)]

    def worker(slot: int) -> None:
        while True:
            r = ws.take(7)
            if r is None:
                return
            got[slot].append(r)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seen = [0] * n
    for ranges in got:
        for lo, hi in ranges:
            for i in range(lo, hi):
                seen[i] += 1
    assert all(c == 1 for c in seen)
