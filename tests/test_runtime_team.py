"""Unit tests for teams and the BS convention check."""

import pytest

from repro.amp.presets import odroid_xu4, tri_type_platform
from repro.amp.topology import bs_mapping, custom_mapping, sb_mapping
from repro.errors import PlatformError
from repro.runtime.team import Team


def test_bs_team_shape(team_a_bs):
    assert team_a_bs.n_threads == 8
    assert team_a_bs.n_types == 2
    assert team_a_bs.n_big == 4
    assert team_a_bs.n_small == 4
    # BS: threads 0-3 on big cores (type index 1).
    assert [team_a_bs.type_index_of(t) for t in range(8)] == [1] * 4 + [0] * 4
    assert team_a_bs.threads_of_type(1) == (0, 1, 2, 3)
    assert team_a_bs.threads_of_type(0) == (4, 5, 6, 7)


def test_sb_team_shape(team_a_sb):
    assert [team_a_sb.type_index_of(t) for t in range(8)] == [0] * 4 + [1] * 4


def test_type_counts_two_types(team_a_bs):
    assert team_a_bs.type_counts() == (4, 4)


def test_core_type_of(team_a_bs):
    assert team_a_bs.core_type_of(0).name == "cortex-a15"
    assert team_a_bs.core_type_of(7).name == "cortex-a7"


def test_bs_convention_accepts_bs(team_a_bs):
    team_a_bs.assert_bs_convention()  # no raise


def test_bs_convention_rejects_sb(team_a_sb):
    with pytest.raises(PlatformError):
        team_a_sb.assert_bs_convention()


def test_bs_convention_rejects_interleaved():
    p = odroid_xu4()
    team = Team(p, custom_mapping("mix", [7, 0, 6, 1]))
    with pytest.raises(PlatformError):
        team.assert_bs_convention()


def test_partial_team():
    p = odroid_xu4()
    team = Team(p, bs_mapping(p, 3))
    assert team.n_threads == 3
    assert team.type_counts() == (0, 3)
    team.assert_bs_convention()


def test_tri_type_team():
    p = tri_type_platform()
    team = Team(p, bs_mapping(p))
    assert team.n_types == 3
    assert team.type_counts() == (2, 2, 2)
    # BS on a tri-type platform: types descend with TID.
    types = [team.type_index_of(t) for t in range(6)]
    assert types == [2, 2, 1, 1, 0, 0]
    team.assert_bs_convention()
