"""Property-based fuzz of the schedulers under *real* threads.

Smaller scale than the simulator fuzz (real threads are slow), but this
is the test that would catch a race in the scheduler state machines:
every policy, random team sizes and trip counts, genuine interleavings.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec_real import ThreadTeam
from repro.sched import (
    AidAutoSpec,
    AidStealSpec,
    AidDynamicSpec,
    AidHybridSpec,
    AidStaticSpec,
    DynamicSpec,
    GuidedSpec,
    StaticSpec,
)

real_specs = st.one_of(
    st.just(StaticSpec()),
    st.integers(1, 16).map(lambda c: StaticSpec(chunk=c)),
    st.integers(1, 16).map(lambda c: DynamicSpec(chunk=c)),
    st.integers(1, 8).map(lambda c: GuidedSpec(chunk=c)),
    st.just(AidStaticSpec()),
    st.floats(20.0, 100.0).map(lambda p: AidHybridSpec(percentage=p)),
    st.tuples(st.integers(1, 4), st.integers(0, 12)).map(
        lambda mm: AidDynamicSpec(mm[0], mm[0] + mm[1])
    ),
    st.just(AidAutoSpec()),
    st.integers(1, 16).map(lambda c: AidStealSpec(serve_chunk=c)),
)


@settings(max_examples=25, deadline=None)
@given(
    spec=real_specs,
    n_threads=st.integers(1, 6),
    n_iterations=st.integers(0, 400),
)
def test_real_threads_execute_exactly_once(spec, n_threads, n_iterations):
    team = ThreadTeam(n_threads)
    counter = np.zeros(max(1, n_iterations), dtype=np.int64)

    def body(tid: int, lo: int, hi: int) -> None:
        # Plain += is not atomic across threads, but ranges are disjoint
        # by the invariant under test, so no slot is written twice.
        counter[lo:hi] += 1

    stats = team.parallel_for(n_iterations, body, spec)
    assert sum(stats.iterations_per_thread) == n_iterations
    if n_iterations:
        assert counter[:n_iterations].sum() == n_iterations
        assert counter[:n_iterations].max() <= 1
    # Ranges reported must partition the space as well.
    seen = np.zeros(max(1, n_iterations), dtype=np.int64)
    for _tid, lo, hi in stats.ranges:
        seen[lo:hi] += 1
    if n_iterations:
        assert seen[:n_iterations].min() == 1
        assert seen[:n_iterations].max() == 1
