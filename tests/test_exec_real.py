"""Real-thread executor tests: functional correctness under concurrency."""

import threading

import numpy as np
import pytest

from repro.amp.presets import odroid_xu4
from repro.errors import ConfigError, SchedulerError
from repro.exec_real import ThreadTeam, parallel_map
from repro.sched import (
    AidDynamicSpec,
    AidHybridSpec,
    AidStaticSpec,
    DynamicSpec,
    GuidedSpec,
    StaticSpec,
)

ALL_SPECS = [
    StaticSpec(),
    StaticSpec(chunk=5),
    DynamicSpec(3),
    GuidedSpec(2),
    AidStaticSpec(),
    AidHybridSpec(percentage=80),
    AidDynamicSpec(1, 5),
]


@pytest.fixture(scope="module")
def team():
    return ThreadTeam(4)


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
def test_every_iteration_once(team, spec):
    n = 2000
    counter = np.zeros(n, dtype=np.int64)

    def body(tid, lo, hi):
        counter[lo:hi] += 1

    stats = team.parallel_for(n, body, spec)
    assert counter.sum() == n
    assert counter.max() == 1
    assert sum(stats.iterations_per_thread) == n


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
def test_with_contended_shared_accumulator(team, spec):
    """Workers updating a shared value under their own lock must still
    see a correct total (exercise real interleavings)."""
    n = 1500
    total = [0]
    lock = threading.Lock()

    def body(tid, lo, hi):
        s = sum(range(lo, hi))
        with lock:
            total[0] += s

    team.parallel_for(n, body, spec)
    assert total[0] == n * (n - 1) // 2


def test_empty_loop(team):
    stats = team.parallel_for(0, lambda tid, lo, hi: None, DynamicSpec(1))
    assert stats.iterations_per_thread == [0, 0, 0, 0]


def test_single_iteration(team):
    hits = []
    team.parallel_for(1, lambda tid, lo, hi: hits.append((lo, hi)), StaticSpec())
    assert hits == [(0, 1)]


def test_worker_exception_propagates(team):
    def body(tid, lo, hi):
        if lo >= 50:
            raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        team.parallel_for(200, body, DynamicSpec(10))


def test_negative_trip_count_rejected(team):
    with pytest.raises(ConfigError):
        team.parallel_for(-1, lambda *a: None, StaticSpec())


def test_team_validation():
    with pytest.raises(ConfigError):
        ThreadTeam(0)
    with pytest.raises(ConfigError):
        ThreadTeam(16, odroid_xu4())  # oversubscribes the 8-core platform


def test_on_modeled_platform():
    team = ThreadTeam(8, odroid_xu4())
    n = 3000
    counter = np.zeros(n, dtype=np.int64)

    def body(tid, lo, hi):
        counter[lo:hi] += 1

    stats = team.parallel_for(n, body, AidDynamicSpec(1, 5))
    assert counter.sum() == n and counter.max() == 1
    assert stats.dispatches > 0


def test_offline_sf_under_real_threads():
    team = ThreadTeam(4)
    n = 400
    counter = np.zeros(n, dtype=np.int64)

    def body(tid, lo, hi):
        counter[lo:hi] += 1

    team.parallel_for(
        n, body, AidStaticSpec(use_offline_sf=True), offline_sf={0: 1.0, 1: 2.0}
    )
    assert counter.sum() == n and counter.max() == 1


def test_parallel_map_preserves_order():
    out = parallel_map(lambda i: i * i, 300, DynamicSpec(7), n_threads=4)
    assert out == [i * i for i in range(300)]


def test_parallel_map_with_aid():
    out = parallel_map(str, 100, AidHybridSpec(60), n_threads=3)
    assert out == [str(i) for i in range(100)]


def test_ranges_cover_space(team):
    n = 512
    stats = team.parallel_for(n, lambda tid, lo, hi: None, GuidedSpec(4))
    seen = np.zeros(n, dtype=int)
    for _tid, lo, hi in stats.ranges:
        seen[lo:hi] += 1
    assert seen.min() == 1 and seen.max() == 1
