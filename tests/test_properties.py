"""Property-based tests (hypothesis) over core invariants.

The load-bearing invariant of the whole system: *every scheduling policy
executes every iteration of every loop exactly once*, for any platform
shape, trip count, chunking and cost profile. Plus structural properties
of the building blocks (event ordering, pool partitioning, static
blocks, AID target arithmetic, cost-model sanity).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amp.presets import dual_speed_platform
from repro.perfmodel.overhead import OverheadModel
from repro.sched import aid_common as ac
from repro.sched.aid_auto import AidAutoSpec
from repro.sched.aid_dynamic import AidDynamicSpec
from repro.sched.aid_hybrid import AidHybridSpec
from repro.sched.aid_static import AidStaticSpec
from repro.sched.aid_steal import AidStealSpec
from repro.sched.dynamic import DynamicSpec
from repro.sched.guided import GuidedSpec
from repro.sched.static import StaticSpec, static_block
from repro.sim.events import EventQueue
from repro.runtime.workshare import WorkShare
from repro.workloads.costmodels import (
    BimodalCost,
    JitteredCost,
    LognormalCost,
    RampCost,
)

from tests.helpers import assert_valid_partition, run_loop

# -- strategies ---------------------------------------------------------------

schedule_specs = st.one_of(
    st.just(StaticSpec()),
    st.integers(1, 64).map(lambda c: StaticSpec(chunk=c)),
    st.integers(1, 64).map(lambda c: DynamicSpec(chunk=c)),
    st.integers(1, 32).map(lambda c: GuidedSpec(chunk=c)),
    st.integers(1, 8).map(lambda c: AidStaticSpec(sampling_chunk=c)),
    st.floats(10.0, 100.0).map(lambda p: AidHybridSpec(percentage=p)),
    st.tuples(st.integers(1, 8), st.integers(0, 40)).map(
        lambda mm: AidDynamicSpec(mm[0], mm[0] + mm[1])
    ),
    st.tuples(st.integers(1, 4), st.integers(0, 20)).map(
        lambda mm: AidAutoSpec(mm[0], mm[0] + mm[1])
    ),
    st.integers(1, 32).map(lambda c: AidStealSpec(serve_chunk=c)),
)

platforms = st.tuples(
    st.integers(1, 4), st.integers(1, 4), st.floats(1.0, 6.0)
).map(lambda t: dual_speed_platform(t[0], t[1], big_speedup=t[2]))


# -- the big one ----------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(
    spec=schedule_specs,
    platform=platforms,
    n_iterations=st.integers(1, 700),
    seed=st.integers(0, 2**16),
)
def test_every_schedule_partitions_every_loop(spec, platform, n_iterations, seed):
    rng = np.random.default_rng(seed)
    costs = rng.lognormal(-9.0, 0.8, size=n_iterations)
    result = run_loop(
        platform,
        spec,
        n_iterations=n_iterations,
        costs=costs,
        overhead=OverheadModel(),
    )
    assert_valid_partition(result, n_iterations)


@settings(max_examples=60, deadline=None)
@given(
    spec=schedule_specs,
    n_iterations=st.integers(1, 400),
)
def test_finish_times_never_precede_start(spec, n_iterations):
    platform = dual_speed_platform(2, 2)
    result = run_loop(platform, spec, n_iterations=n_iterations)
    assert all(t >= result.start_time for t in result.finish_times)
    assert result.end_time == max(result.finish_times)


# -- static blocks ---------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(n=st.integers(0, 10_000), nt=st.integers(1, 64))
def test_static_block_partitions(n, nt):
    cursor = 0
    for tid in range(nt):
        lo, hi = static_block(n, nt, tid)
        assert lo == cursor
        assert hi >= lo
        cursor = hi
    assert cursor == n


@settings(max_examples=200, deadline=None)
@given(n=st.integers(1, 10_000), nt=st.integers(1, 64))
def test_static_block_sizes_differ_by_at_most_one(n, nt):
    sizes = [hi - lo for lo, hi in (static_block(n, nt, t) for t in range(nt))]
    assert max(sizes) - min(sizes) <= 1


# -- work share -------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(0, 2000),
    chunks=st.lists(st.integers(1, 97), min_size=1, max_size=400),
)
def test_workshare_takes_partition(n, chunks):
    ws = WorkShare(0, n)
    taken = []
    i = 0
    while not ws.exhausted:
        r = ws.take(chunks[i % len(chunks)])
        i += 1
        if r is None:
            break
        taken.append(r)
    cursor = 0
    for lo, hi in taken:
        assert lo == cursor
        cursor = hi
    assert cursor == n


# -- event queue ---------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(times=st.lists(st.floats(0.0, 1e6), min_size=0, max_size=200))
def test_event_queue_pops_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (ev := q.pop()) is not None:
        popped.append(ev.time)
    assert popped == sorted(times)


# -- AID target arithmetic --------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    ni=st.integers(0, 100_000),
    sf=st.floats(1.0, 16.0),
    n_small=st.integers(1, 16),
    n_big=st.integers(1, 16),
)
def test_aid_targets_sum_close_to_ni(ni, sf, n_small, n_big):
    targets = ac.aid_targets(ni, {0: 1.0, 1: sf}, (n_small, n_big))
    total = n_small * targets[0] + n_big * targets[1]
    # Rounding: at most half an iteration of error per thread.
    assert abs(total - ni) <= (n_small + n_big)
    assert all(t >= 0 for t in targets)


@settings(max_examples=100, deadline=None)
@given(
    ni=st.integers(1, 100_000),
    sfs=st.lists(st.floats(1.0, 10.0), min_size=1, max_size=5),
)
def test_aid_targets_monotone_in_sf(ni, sfs):
    sf_map = {0: 1.0}
    counts = [2]
    for j, s in enumerate(sfs, start=1):
        sf_map[j] = s
        counts.append(2)
    targets = ac.aid_targets(ni, sf_map, tuple(counts))
    for j, s in enumerate(sfs, start=1):
        if s >= 1.0:
            assert targets[j] >= targets[0] - 1  # allow rounding slack


# -- cost models ---------------------------------------------------------------------------


cost_models = st.one_of(
    st.floats(0.0, 10.0).map(lambda w: JitteredCost(w, jitter=0.3)),
    st.tuples(st.floats(0.0, 5.0), st.floats(0.0, 5.0)).map(
        lambda t: RampCost(*t)
    ),
    st.floats(0.01, 10.0).map(lambda m: LognormalCost(m, sigma=0.9)),
    st.tuples(st.floats(0, 2), st.floats(0, 8), st.floats(0, 1)).map(
        lambda t: BimodalCost(t[0], t[1], t[2])
    ),
)


@settings(max_examples=150, deadline=None)
@given(model=cost_models, n=st.integers(1, 2000), seed=st.integers(0, 2**20))
def test_cost_models_produce_valid_vectors(model, n, seed):
    costs = model.generate(n, np.random.default_rng(seed))
    assert len(costs) == n
    assert np.all(costs >= 0)
    assert np.all(np.isfinite(costs))


@settings(max_examples=50, deadline=None)
@given(model=cost_models, n=st.integers(1, 500), seed=st.integers(0, 2**20))
def test_cost_models_deterministic(model, n, seed):
    a = model.generate(n, np.random.default_rng(seed))
    b = model.generate(n, np.random.default_rng(seed))
    np.testing.assert_array_equal(a, b)
