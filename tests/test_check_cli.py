"""Tests for the ``python -m repro.check`` command line."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check.cli import build_parser, main

GOLDEN_DIR = str(Path(__file__).parent / "golden")


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fuzz", "--cases", "3", "--seed", "9"])
        assert args.cases == 3 and args.seed == 9

    def test_fuzz_defaults_match_acceptance_run(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.cases == 200 and args.seed == 1

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFuzzCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--cases", "5", "--seed", "2"]) == 0
        assert "zero violations" in capsys.readouterr().out

    def test_mutant_campaign_exits_nonzero_and_writes_artifact(
        self, tmp_path, capsys
    ):
        out = tmp_path / "counterexamples.json"
        rc = main(
            [
                "fuzz",
                "--cases",
                "25",
                "--seed",
                "1",
                "--variant",
                "aid_dynamic",
                "--mutant",
                "aid-dynamic-chunk-decrement",
                "--max-failures",
                "1",
                "--out",
                str(out),
            ]
        )
        assert rc == 1
        artifact = json.loads(out.read_text(encoding="utf-8"))
        assert artifact["schema"] == "repro.check.counterexamples/v1"
        assert artifact["failures"]
        shrunk = artifact["failures"][0]["shrunk"]
        assert shrunk["n_iterations"] <= 8


class TestVerifyCommand:
    def test_valid_grid_payload_passes(self, tmp_path, capsys):
        payload = {
            "programs": {
                "p": [
                    {
                        "scheme": "a",
                        "completion_time": 1.0,
                        "normalized_performance": 1.0,
                    }
                ]
            },
            "schemes": ["a"],
            "baseline": "a",
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert main(["verify", str(path)]) == 0

    def test_invalid_payload_fails(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}", encoding="utf-8")
        assert main(["verify", str(path)]) == 1

    def test_unreadable_payload_is_a_usage_error(self, tmp_path):
        assert main(["verify", str(tmp_path / "absent.json")]) == 2


class TestMutantCommand:
    def test_default_mutant_smoke_passes(self, capsys):
        assert main(["mutant"]) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "shrunk reproducer" in out


class TestGoldenCommand:
    def test_committed_goldens_match(self, capsys):
        assert main(["golden", "--dir", GOLDEN_DIR]) == 0

    def test_missing_dir_fails(self, tmp_path):
        assert main(["golden", "--dir", str(tmp_path / "nope")]) == 1

    def test_update_then_check_roundtrip(self, tmp_path):
        d = str(tmp_path / "golden")
        assert main(["golden", "--dir", d, "--update"]) == 0
        assert main(["golden", "--dir", d]) == 0


class TestDiffCommand:
    def test_diff_exits_zero_on_clean_runs(self, capsys):
        rc = main(
            [
                "diff",
                "--platform",
                "dual:2:2",
                "--iterations",
                "48",
                "--no-real",
            ]
        )
        assert rc == 0
        assert "differential:" in capsys.readouterr().out
