"""Unit tests for the loop context."""

import pytest

from repro.amp.presets import odroid_xu4, tri_type_platform
from repro.amp.topology import bs_mapping, sb_mapping
from repro.errors import ConfigError
from repro.runtime.context import LoopContext
from repro.runtime.team import Team


@pytest.fixture
def ctx_bs(platform_a):
    return LoopContext(Team(platform_a, bs_mapping(platform_a)), 128)


def test_shape(ctx_bs):
    assert ctx_bs.n_threads == 8
    assert ctx_bs.n_types == 2
    assert ctx_bs.type_counts() == (4, 4)
    assert ctx_bs.type_of(0) == 1  # BS: thread 0 on a big core
    assert ctx_bs.type_of(7) == 0


def test_thread_views(ctx_bs):
    views = ctx_bs.threads
    assert len(views) == 8
    assert views[0].cpu_id == 7 and views[0].type_index == 1
    assert views[7].cpu_id == 0 and views[7].type_index == 0


def test_workshare_matches_trip_count(ctx_bs):
    assert ctx_bs.workshare.n_iterations == 128
    assert ctx_bs.workshare.take(128) == (0, 128)


def test_validation(platform_a):
    team = Team(platform_a, sb_mapping(platform_a))
    with pytest.raises(ConfigError):
        LoopContext(team, -1)
    with pytest.raises(ConfigError):
        LoopContext(team, 10, default_chunk=0)


def test_lock_is_noop_in_simulation(ctx_bs):
    with ctx_bs.lock:
        with ctx_bs.lock:  # nullcontext: re-entry is fine
            pass
    assert ctx_bs.make_lock() is None


def test_charge_timestamp_forwards(platform_a):
    charged = []
    team = Team(platform_a, bs_mapping(platform_a))
    ctx = LoopContext(team, 10, charge_timestamp=charged.append)
    ctx.charge_timestamp(3)
    ctx.charge_timestamp(3)
    assert charged == [3, 3]
    # No callback installed -> silently ignored.
    LoopContext(team, 10).charge_timestamp(0)


def test_offline_sf_lookup(platform_a):
    team = Team(platform_a, bs_mapping(platform_a))
    ctx = LoopContext(team, 10, offline_sf={0: 1.0, 1: 2.5})
    assert ctx.offline_sf_for_type(1) == 2.5
    with pytest.raises(ConfigError):
        ctx.offline_sf_for_type(2)
    with pytest.raises(ConfigError):
        LoopContext(team, 10).offline_sf_for_type(0)


def test_three_type_context(tri_platform):
    ctx = LoopContext(Team(tri_platform, bs_mapping(tri_platform)), 60)
    assert ctx.n_types == 3
    assert ctx.type_counts() == (2, 2, 2)
