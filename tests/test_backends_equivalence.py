"""The vectorized backend's byte-identity contract, plus the diff tools.

The acceptance property of the backend subsystem: for every schedule the
grids run — static, dynamic, guided and all five AID variants — the
vectorized engine produces the *same bytes* as the reference simulator:
equal :class:`LoopResult` fields and an equal canonical decision log.
The 200-case CI campaigns (``python -m repro.check backends``) cover the
random space; these tests pin the named configurations and the fallback
wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.check.backend_diff import (
    DEFAULT_BACKENDS,
    decision_bytes,
    diff_case,
    diff_fuzz,
    result_key,
)
from repro.check.generators import FuzzCase, preset_platform, run_loop
from repro.faults.model import plan_from_tuples
from repro.obs import Observability
from repro.sched.registry import parse_schedule

#: Every schedule kind the experiment grids exercise, incl. all five AID
#: variants (the ISSUE's acceptance list).
ALL_SCHEDULES = (
    "static",
    "static,7",
    "dynamic,1",
    "dynamic,4",
    "guided,1",
    "aid_static",
    "aid_hybrid,80",
    "aid_dynamic,1,5",
    "aid_auto,1,5",
    "aid_steal,8",
)


def _run(backend, platform, schedule, ni, costs, rng_seed=None):
    obs = Observability()
    rng = (
        np.random.default_rng(rng_seed) if rng_seed is not None else None
    )
    result = run_loop(
        platform, parse_schedule(schedule), n_iterations=ni, costs=costs,
        obs=obs, rng=rng, backend=backend,
    )
    return result_key(result), decision_bytes(obs)


class TestByteIdentity:
    @pytest.mark.parametrize("schedule", ALL_SCHEDULES)
    def test_odroid_nonuniform_costs(self, schedule):
        rng = np.random.default_rng(42)
        ni = 197  # odd on purpose: uneven remainders everywhere
        costs = rng.lognormal(mean=np.log(1e-4), sigma=0.6, size=ni)
        ref = _run("reference", odroid_xu4(), schedule, ni, costs)
        vec = _run("vectorized", odroid_xu4(), schedule, ni, costs)
        assert ref == vec

    @pytest.mark.parametrize(
        "schedule", ["dynamic,1", "aid_dynamic,1,5", "aid_steal,8"]
    )
    def test_xeon_with_wake_jitter(self, schedule):
        # A wake-jitter RNG draws once per run in prepare_run; both
        # backends must consume the stream identically.
        costs = np.full(256, 1e-4)
        ref = _run(
            "reference", xeon_emulated(), schedule, 256, costs, rng_seed=7
        )
        vec = _run(
            "vectorized", xeon_emulated(), schedule, 256, costs, rng_seed=7
        )
        assert ref == vec

    @pytest.mark.parametrize("ni", [1, 2, 7, 8, 9])
    def test_tiny_trip_counts(self, ni):
        costs = np.full(ni, 1e-4)
        for schedule in ("dynamic,1", "aid_dynamic,1,5"):
            ref = _run("reference", odroid_xu4(), schedule, ni, costs)
            vec = _run("vectorized", odroid_xu4(), schedule, ni, costs)
            assert ref == vec, schedule


class TestFallbacks:
    def test_faulted_run_delegates_and_matches(self):
        platform = preset_platform("dual:2:2")
        costs = np.full(64, 1e-4)
        plan = plan_from_tuples((("throttle", 0, 0.001, 0.004, 0.25),))
        spec = parse_schedule("aid_dynamic,1,5")

        obs = Observability()
        vec = run_loop(
            platform, spec, n_iterations=64, costs=costs, faults=plan,
            obs=obs, backend="vectorized",
        )
        ref = run_loop(
            platform, spec, n_iterations=64, costs=costs, faults=plan,
            backend="reference",
        )
        assert result_key(vec) == result_key(ref)
        # The delegation is observable, not silent.
        assert obs.registry.value(
            "backend_fallbacks_total", backend="vectorized", reason="faults"
        ) == 1.0

    def test_empty_fault_plan_does_not_delegate(self):
        from repro.errors import ObsError

        platform = preset_platform("dual:2:2")
        obs = Observability()
        run_loop(
            platform, parse_schedule("dynamic,1"), n_iterations=32,
            faults=plan_from_tuples(()), obs=obs, backend="vectorized",
        )
        # The fallback counter is only minted when a fallback happens.
        with pytest.raises(ObsError, match="backend_fallbacks_total"):
            obs.registry.value(
                "backend_fallbacks_total",
                backend="vectorized", reason="faults",
            )

    def test_traced_run_delegates(self):
        from repro.tracing.trace import TraceRecorder

        obs = Observability()
        run_loop(
            odroid_xu4(), parse_schedule("dynamic,1"), n_iterations=32,
            trace=TraceRecorder(), obs=obs, backend="vectorized",
        )
        assert obs.registry.value(
            "backend_fallbacks_total", backend="vectorized", reason="trace"
        ) == 1.0


class TestRealBackendSmoke:
    def test_real_threads_execute_every_iteration(self):
        # Wall-clock execution: non-deterministic timing, but the
        # iteration accounting must still be exact.
        result = run_loop(
            preset_platform("dual:1:1"), parse_schedule("dynamic,2"),
            n_iterations=24, work=1e-5, backend="real",
        )
        assert sum(result.iterations) == 24
        assert result.dispatches > 0


class TestDiffTools:
    def test_diff_case_clean(self):
        case = FuzzCase(
            seed=11, schedule="aid_hybrid,80", platform="odroid_xu4",
            n_iterations=120,
        )
        assert diff_case(case, DEFAULT_BACKENDS) is None

    def test_diff_case_detects_a_lying_backend(self, monkeypatch):
        # Sabotage: register a backend that reruns reference but then
        # doubles the reported dispatch count.
        from repro.backends import ReferenceBackend, register_backend
        from repro.backends.core import _REGISTRY

        class Liar(ReferenceBackend):
            name = "liar"

            def run_scheduled(self, executor, req):
                result = super().run_scheduled(executor, req)
                result.dispatches *= 2
                return result

        register_backend("liar", Liar)
        try:
            case = FuzzCase(
                seed=5, schedule="dynamic,1", platform="dual:2:2",
                n_iterations=40,
            )
            mismatch = diff_case(case, ("reference", "liar"))
            assert mismatch is not None
            assert mismatch.field_name == "dispatches"
        finally:
            _REGISTRY.pop("liar", None)

    def test_diff_fuzz_small_campaign_clean(self):
        result = diff_fuzz(12, seed=9)
        assert result.ok
        assert "byte-identical" in result.render()

    def test_diff_fuzz_faulted_campaign_clean(self):
        result = diff_fuzz(6, seed=13, faults="sim")
        assert result.ok
