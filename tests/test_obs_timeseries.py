"""Tests for the time-resolved telemetry layer (repro.obs.timeseries):
windowed samplers, quantile digests, their merge semantics, the runtime
instrumentation that feeds them, and the timeline/fault visibility the
PR promises (a mid-loop throttle shows up as a rate step and a p99
tail-latency regression)."""

import json

import numpy as np
import pytest

from repro.check.fuzz import fuzz, obs_violations
from repro.check.generators import run_loop
from repro.errors import ObsError
from repro.faults.model import plan_from_tuples
from repro.metrics.imbalance import thread_utilization
from repro.obs import Observability
from repro.obs.diff import diff_snapshots
from repro.obs.registry import MetricsRegistry
from repro.obs.report import timeline
from repro.obs.timeseries import (
    QuantileDigest,
    TimeSeries,
    digest_quantile,
    series_values,
    utilization,
)
from repro.sim.rng import stable_seed


def series(mode="sample", window=1.0, capacity=256, norm=1.0):
    return TimeSeries("s", (), mode=mode, window=window, capacity=capacity,
                      norm=norm)


class TestUtilization:
    def test_fraction(self):
        assert utilization(0.5, 2.0) == 0.25

    def test_non_positive_span_raises(self):
        with pytest.raises(ObsError):
            utilization(1.0, 0.0)


class TestTimeSeriesSampling:
    def test_sample_mode_buckets_by_time(self):
        ts = series(window=1.0)
        ts.observe(0.5, 10.0)
        ts.observe(0.6, 20.0)
        ts.observe(2.5, 5.0)
        assert ts.points == {0: [30.0, 2.0, 10.0, 20.0], 2: [5.0, 1.0, 5.0, 5.0]}

    def test_busy_span_splits_across_windows(self):
        ts = series(mode="busy", window=1.0)
        ts.observe_span(0.5, 2.25)
        assert ts.points[0][0] == pytest.approx(0.5)
        assert ts.points[1][0] == pytest.approx(1.0)
        assert ts.points[2][0] == pytest.approx(0.25)

    def test_mode_mismatch_raises(self):
        with pytest.raises(ObsError):
            series(mode="busy").observe(0.0, 1.0)
        with pytest.raises(ObsError):
            series(mode="sample").observe_span(0.0, 1.0)

    def test_busy_window_never_overflows_capacity(self):
        ts = series(mode="busy", window=1.0)
        ts.observe_span(0.0, 7.5)
        for idx, (s, _c, _lo, _hi) in ts.points.items():
            assert s <= ts.window + 1e-12

    def test_coalescing_doubles_window_and_preserves_mass(self):
        ts = series(window=1.0, capacity=4)
        for i in range(10):
            ts.observe(i + 0.5, 1.0)
        assert ts.level >= 1
        assert ts.window == 2.0 ** ts.level
        assert len(ts.points) <= 4
        total = sum(p[0] for p in ts.points.values())
        count = sum(p[1] for p in ts.points.values())
        assert total == pytest.approx(10.0)
        assert count == pytest.approx(10.0)

    def test_coalescing_is_deterministic_in_the_observation_sequence(self):
        a, b = series(capacity=8), series(capacity=8)
        for i in range(1000):
            t = i * 3.7e-5
            a.observe(t, float(i))
            b.observe(t, float(i))
        assert a.as_dict() == b.as_dict()


class TestTimeSeriesMerge:
    def test_merge_identical_levels_adds_pointwise(self):
        a, b = series(window=1.0), series(window=1.0)
        a.observe(0.5, 1.0)
        b.observe(0.5, 3.0)
        a.merge_doc(b.as_dict())
        assert a.points[0] == [4.0, 2.0, 1.0, 3.0]

    def test_merge_rescales_to_the_coarser_level(self):
        fine = series(window=1.0, capacity=4)
        coarse = series(window=1.0, capacity=4)
        for i in range(10):  # forces coarse past capacity -> level >= 1
            coarse.observe(i + 0.5, 1.0)
        fine.observe(0.25, 2.0)
        level = coarse.level
        coarse.merge_doc(fine.as_dict())
        assert coarse.level >= level
        total = sum(p[0] for p in coarse.points.values())
        assert total == pytest.approx(12.0)

    def test_merge_mode_mismatch_raises(self):
        a = series(mode="busy", window=1.0)
        with pytest.raises(ObsError):
            a.merge_doc(series(mode="sample", window=1.0).as_dict())

    def test_merge_norm_mismatch_raises(self):
        a = series(norm=4.0)
        with pytest.raises(ObsError):
            a.merge_doc(series(norm=2.0).as_dict())

    def test_self_merge_doubles(self):
        a = series(window=1.0)
        for i in range(6):
            a.observe(float(i), 2.0)
        doc = a.as_dict()
        a.merge_doc(doc)
        for idx, (s, c, _lo, _hi) in a.points.items():
            assert s == pytest.approx(4.0)
            assert c == pytest.approx(2.0)


class TestQuantileDigest:
    def test_quantiles_track_the_distribution_within_gamma(self):
        d = QuantileDigest("d", (), gamma=1.02)
        rng = np.random.default_rng(7)
        values = rng.exponential(1e-3, size=5000)
        for v in values:
            d.observe(float(v))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            assert d.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_extrema_clamp(self):
        d = QuantileDigest("d", ())
        d.observe(1.0)
        assert d.quantile(0.0) == 1.0
        assert d.quantile(1.0) == 1.0

    def test_zero_bucket(self):
        d = QuantileDigest("d", ())
        for _ in range(9):
            d.observe(0.0)
        d.observe(5.0)
        assert d.quantile(0.5) == 0.0
        assert d.quantile(1.0) == 5.0

    def test_merge_doubles_counts_and_keeps_quantiles(self):
        d = QuantileDigest("d", ())
        for v in (1.0, 2.0, 3.0, 4.0):
            d.observe(v)
        q99 = d.quantile(0.99)
        d.merge_doc(d.as_dict())
        assert d.count == 8
        assert d.quantile(0.99) == q99

    def test_gamma_mismatch_raises(self):
        d = QuantileDigest("d", (), gamma=1.02)
        with pytest.raises(ObsError):
            d.merge_doc(QuantileDigest("d", (), gamma=1.05).as_dict())

    def test_serialized_walk_matches_live(self):
        d = QuantileDigest("d", ())
        rng = np.random.default_rng(3)
        for v in rng.lognormal(-7, 1, size=800):
            d.observe(float(v))
        doc = json.loads(json.dumps(d.as_dict()))
        for q in (0.5, 0.99, 0.999):
            assert digest_quantile(doc, q) == d.quantile(q)


class TestSeriesValues:
    def test_busy_mode_renders_utilization(self):
        ts = series(mode="busy", window=2.0, norm=4.0)
        ts.observe_span(0.0, 2.0)
        assert series_values(ts.as_dict()) == [(0, pytest.approx(0.25))]

    def test_sample_mode_renders_means(self):
        ts = series(window=1.0)
        ts.observe(0.1, 2.0)
        ts.observe(0.2, 4.0)
        assert series_values(ts.as_dict()) == [(0, pytest.approx(3.0))]


def seeded_run(obs, schedule="aid_hybrid,80", faults=None, seed=11):
    from repro.amp.presets import odroid_xu4
    from repro.sched.registry import parse_schedule

    n = 512
    costs = np.full(n, 2e-4)
    return run_loop(
        odroid_xu4(),
        parse_schedule(schedule),
        n_iterations=n,
        costs=costs,
        obs=obs,
        rng=np.random.default_rng(stable_seed("obs-ts-test", seed)),
        faults=faults,
    )


class TestRuntimeInstrumentation:
    def test_run_emits_all_promised_series_and_digests(self):
        obs = Observability()
        seeded_run(obs)
        snap = obs.registry.snapshot()
        ts_names = {m["name"] for m in snap["timeseries"]}
        assert {"core_utilization", "runnable_iterations", "worker_rate",
                "chunk_size", "sf_estimate"} <= ts_names
        dg_names = {m["name"] for m in snap["digests"]}
        assert {"dispatch_overhead_seconds", "chunk_compute_seconds",
                "chunk_size_iters"} <= dg_names

    def test_cost_attribution_counters_are_disjoint_and_cover_busy_time(self):
        obs = Observability()
        result = seeded_run(obs)
        snap = obs.registry.snapshot()
        by_cat = {}
        for m in snap["counters"]:
            if m["name"] == "sim_time_seconds_total":
                cat = m["labels"]["category"]
                by_cat[cat] = by_cat.get(cat, 0.0) + m["value"]
        compute = sum(
            m["value"] for m in snap["counters"]
            if m["name"] == "compute_seconds_total"
        )
        assert by_cat["compute"] == pytest.approx(compute)
        assert by_cat.get("overhead", 0.0) >= 0.0

    def test_utilization_sampler_agrees_with_thread_utilization(self):
        # Satellite: one busy/span definition. On the inline static
        # path the sampler records exactly [start, finish) per thread,
        # so summed series busy time must equal the scalar metric's
        # per-thread busy fractions times the loop span.
        obs = Observability()
        result = seeded_run(obs, schedule="static")
        snap = obs.registry.snapshot()
        busy_total = sum(
            p[0]
            for m in snap["timeseries"]
            if m["name"] == "core_utilization"
            for p in m["points"].values()
        )
        util = thread_utilization(result)
        assert busy_total == pytest.approx(
            sum(util) * result.duration, rel=1e-9
        )

    def test_snapshot_round_trips_and_passes_obs_invariants(self):
        obs = Observability()
        seeded_run(obs)
        assert obs_violations(obs.registry.snapshot()) == []

    def test_identical_runs_snapshot_identically(self):
        a, b = Observability(), Observability()
        seeded_run(a)
        seeded_run(b)
        assert json.dumps(a.registry.snapshot(), sort_keys=True) == \
            json.dumps(b.registry.snapshot(), sort_keys=True)


THROTTLE = plan_from_tuples(
    # Quarter-speed all four big cores (cpus 4-7 on odroid_xu4) from
    # mid-loop on: the healthy run takes ~7.5ms, so t0=3ms lands inside.
    [("throttle", cpu, 0.003, 10.0, 0.25) for cpu in (4, 5, 6, 7)]
)


class TestFaultVisibility:
    """A PR-5 mid-loop throttle must be visible as a rate step in the
    timeline and flip the tail-latency diff class on p99."""

    def run_pair(self):
        healthy, faulted = Observability(), Observability()
        seeded_run(healthy, schedule="dynamic,4")
        seeded_run(faulted, schedule="dynamic,4", faults=THROTTLE)
        return healthy, faulted

    def test_throttle_is_a_worker_rate_step(self):
        _healthy, faulted = self.run_pair()
        snap = faulted.registry.snapshot()
        stepped = 0
        for m in snap["timeseries"]:
            if m["name"] != "worker_rate":
                continue
            vals = [v for _i, v in series_values(m)]
            if len(vals) >= 2 and min(vals) < 0.5 * max(vals):
                stepped += 1
        assert stepped > 0, "throttled workers must show a rate drop"

    def test_timeline_renders_the_faulted_run(self):
        _healthy, faulted = self.run_pair()
        snapshot = {"metrics": faulted.registry.snapshot()}
        text = timeline(snapshot, metric="worker_rate")
        assert "worker_rate" in text
        assert "|" in text  # sparkline lanes rendered

    def test_throttle_flips_the_tail_latency_diff_class(self):
        healthy, faulted = self.run_pair()
        a = {"metrics": healthy.registry.snapshot(), "decisions": []}
        b = {"metrics": faulted.registry.snapshot(), "decisions": []}
        diff = diff_snapshots(a, b)
        tail = [e for e in diff.regressions if e.kind == "tail-latency"]
        assert any(
            e.name == "chunk_compute_seconds" for e in tail
        ), f"expected a chunk_compute_seconds p99 regression, got {tail}"


class TestFuzzObsChecks:
    def test_small_campaign_is_clean(self):
        assert fuzz(4, seed=21).ok

    def test_small_campaign_with_sim_faults_is_clean(self):
        assert fuzz(4, seed=22, faults="sim").ok

    def test_obs_violations_flags_nan(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("nan"))
        assert any("JSON" in v for v in obs_violations(reg.snapshot()))

    def test_obs_violations_flags_busy_overrun(self):
        reg = MetricsRegistry()
        ts = reg.timeseries("t", mode="busy", window=1.0)
        ts.points[0] = [5.0, 1.0, 5.0, 5.0]  # 5s busy in a 1s window
        assert any("overrun" in v for v in obs_violations(reg.snapshot()))
