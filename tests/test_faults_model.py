"""Tests for the declarative fault model: validation, JSON and tuple
round-trips, seeded random plans, horizon scaling."""

import dataclasses

import pytest

from repro.errors import FaultError, ReproError
from repro.faults import (
    CoreOfflineEvent,
    CoreOnlineEvent,
    FaultPlan,
    OverheadSpikeEvent,
    ThrottleEvent,
    WorkerStallEvent,
    plan_from_tuples,
    random_plan,
)
from repro.faults.model import EMPTY_PLAN, event_from_tuple, event_to_tuple

ONE_OF_EACH = (
    ThrottleEvent(cpu=3, t0=0.1, t1=0.5, factor=0.25),
    CoreOfflineEvent(cpu=1, t=0.2),
    CoreOnlineEvent(cpu=1, t=0.6),
    WorkerStallEvent(tid=0, t=0.3, seconds=0.05),
    OverheadSpikeEvent(t0=0.4, t1=0.7, factor=8.0),
)


def test_empty_plan_is_empty():
    assert EMPTY_PLAN.is_empty
    assert FaultPlan().is_empty
    assert not FaultPlan(ONE_OF_EACH).is_empty


def test_json_round_trip_every_kind():
    plan = FaultPlan(ONE_OF_EACH)
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.to_json() == plan.to_json()


def test_tuple_round_trip_every_kind():
    plan = FaultPlan(ONE_OF_EACH)
    assert plan_from_tuples(plan.to_tuples()) == plan
    for event in ONE_OF_EACH:
        assert event_from_tuple(event_to_tuple(event)) == event


@pytest.mark.parametrize(
    "bad",
    [
        ThrottleEvent(cpu=-1, t0=0.0, t1=1.0, factor=0.5),
        ThrottleEvent(cpu=0, t0=0.5, t1=0.5, factor=0.5),
        ThrottleEvent(cpu=0, t0=0.0, t1=1.0, factor=0.0),
        CoreOfflineEvent(cpu=0, t=-0.1),
        CoreOnlineEvent(cpu=-2, t=0.1),
        WorkerStallEvent(tid=0, t=0.1, seconds=0.0),
        OverheadSpikeEvent(t0=0.2, t1=0.1, factor=2.0),
    ],
)
def test_invalid_events_are_rejected(bad):
    with pytest.raises(FaultError):
        FaultPlan((bad,))


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all",
        "[]",
        '{"schema": "other/v1", "events": []}',
        '{"schema": "repro.faults.plan/v1"}',
        '{"schema": "repro.faults.plan/v1", "events": [{"kind": "nope"}]}',
        '{"schema": "repro.faults.plan/v1", "events": [{"kind": "stall"}]}',
    ],
)
def test_malformed_payloads_raise_fault_error(payload):
    with pytest.raises(FaultError) as exc:
        FaultPlan.from_json(payload)
    assert isinstance(exc.value, ReproError)


def test_scaled_multiplies_every_time_field_including_stall_seconds():
    plan = FaultPlan(ONE_OF_EACH).scaled(10.0)
    throttle, offline, online, stall, spike = plan.events
    assert (throttle.t0, throttle.t1) == (1.0, 5.0)
    assert throttle.factor == 0.25  # factors are dimensionless
    assert offline.t == 2.0 and online.t == 6.0
    assert stall.t == 3.0
    # A stall's duration lives on the same clock as its firing time:
    # fractional plans must carry fractional stalls.
    assert stall.seconds == 0.5
    assert (spike.t0, spike.t1, spike.factor) == (4.0, 7.0, 8.0)
    with pytest.raises(FaultError):
        plan.scaled(0.0)


def test_random_plan_is_seed_deterministic_and_valid():
    a = random_plan(7, n_cpus=8, intensity=0.6)
    b = random_plan(7, n_cpus=8, intensity=0.6)
    assert a == b and not a.is_empty
    assert random_plan(8, n_cpus=8, intensity=0.6) != a
    # Round-trips survive and every event validates by construction.
    assert FaultPlan.from_json(a.to_json()) == a
    for event in a.events:
        event.validate()


def test_random_plan_rejects_bad_parameters():
    with pytest.raises(FaultError):
        random_plan(0, n_cpus=0)
    with pytest.raises(FaultError):
        random_plan(0, n_cpus=4, intensity=0.0)
    with pytest.raises(FaultError):
        random_plan(0, n_cpus=4, kinds=("nope",))


def test_events_are_frozen_value_types():
    event = ThrottleEvent(cpu=0, t0=0.0, t1=1.0, factor=0.5)
    with pytest.raises(dataclasses.FrozenInstanceError):
        event.factor = 1.0
