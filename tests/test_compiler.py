"""Unit tests for the compiler model (Sec. 4.1)."""

import pytest

from repro.compiler.lowering import LoweringKind, compile_program
from repro.compiler.symbols import nm_output, undefined_symbols
from repro.errors import CompilerError
from repro.perfmodel.kernel import KernelProfile
from repro.sched.dynamic import DynamicSpec
from repro.workloads.costmodels import UniformCost
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program
from repro.workloads.registry import get_program

KERNEL = KernelProfile(name="k", compute_weight=1.0, ilp=0.0, working_set_mb=0.0)


def program_with_clause():
    return Program(
        name="mixed",
        suite="test",
        body=(
            LoopSpec("plain", 10, UniformCost(1e-5), KERNEL),
            LoopSpec(
                "clause", 10, UniformCost(1e-5), KERNEL, schedule_clause="dynamic,4"
            ),
        ),
        timesteps=1,
    )


def test_vanilla_inlines_clause_less_loops():
    compiled = compile_program(get_program("BT"), modified=False)
    for cl in compiled.lowered.values():
        assert cl.kind is LoweringKind.INLINE_STATIC
        assert not cl.makes_runtime_calls
    assert compiled.runtime_controllable_fraction == 0.0
    assert compiled.compiler == "gcc-8.3-vanilla"


def test_modified_defaults_to_runtime():
    compiled = compile_program(get_program("BT"), modified=True)
    for cl in compiled.lowered.values():
        assert cl.kind is LoweringKind.RUNTIME
        assert cl.makes_runtime_calls
    assert compiled.runtime_controllable_fraction == 1.0


def test_clause_preserved_by_both_compilers():
    for modified in (False, True):
        compiled = compile_program(program_with_clause(), modified=modified)
        cl = compiled.lowered["clause"]
        assert cl.kind is LoweringKind.CLAUSE
        assert cl.clause_spec == DynamicSpec(chunk=4)


def test_unknown_loop_lookup_raises():
    compiled = compile_program(get_program("EP"), modified=True)
    stray = LoopSpec("stray", 5, UniformCost(1e-5), KERNEL)
    with pytest.raises(CompilerError):
        compiled.lowering_of(stray)


class TestSymbols:
    def test_vanilla_symbols_match_paper_listing(self):
        """Paper Sec. 4.1: vanilla bt.B references only barrier+parallel."""
        compiled = compile_program(get_program("BT"), modified=False)
        assert undefined_symbols(compiled) == [
            "GOMP_barrier@GOMP_1.0",
            "GOMP_parallel@GOMP_4.0",
        ]

    def test_modified_symbols_match_paper_listing(self):
        compiled = compile_program(get_program("BT"), modified=True)
        assert undefined_symbols(compiled) == [
            "GOMP_barrier@GOMP_1.0",
            "GOMP_loop_end@GOMP_1.0",
            "GOMP_loop_end_nowait@GOMP_1.0",
            "GOMP_loop_runtime_next@GOMP_1.0",
            "GOMP_loop_runtime_start@GOMP_1.0",
            "GOMP_parallel@GOMP_4.0",
        ]

    def test_clause_loops_emit_their_own_family(self):
        compiled = compile_program(program_with_clause(), modified=False)
        syms = undefined_symbols(compiled)
        assert "GOMP_loop_dynamic_next@GOMP_1.0" in syms
        assert "GOMP_loop_dynamic_start@GOMP_1.0" in syms

    def test_nm_output_format(self):
        compiled = compile_program(get_program("EP"), modified=True)
        text = nm_output(compiled)
        assert all(line.strip().startswith("U ") for line in text.splitlines())
