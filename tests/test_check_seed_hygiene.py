"""Seed hygiene: every randomized test threads an explicit seed.

An unseeded ``default_rng()`` (or legacy ``np.random.*`` global-state
call) makes a failure unreproducible — the one property the whole
conformance layer is built on. This test greps the test tree and the
``repro`` sources and fails on any new offender, with the file:line to
fix. Tests that want fresh-but-replayable streams use the ``rng``
fixture from ``conftest.py``, which derives its seed from the test's
node id and prints it on failure.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Unseeded generator construction: `default_rng()` with no arguments.
_UNSEEDED = re.compile(r"default_rng\(\s*\)")

#: Legacy numpy global-state draws (np.random.rand etc.). Seeded
#: Generator methods like rng.random() don't match: the pattern requires
#: the np.random prefix.
_GLOBAL_STATE = re.compile(
    r"np\.random\.(?:rand|randn|randint|random|choice|shuffle|uniform|"
    r"normal|lognormal|seed)\("
)

#: Directories whose python files must be hygienic.
_SCANNED = ("tests", "src/repro", "benchmarks", "examples")


def _offenders(pattern: re.Pattern) -> list[str]:
    out: list[str] = []
    for base in _SCANNED:
        for path in sorted((REPO / base).rglob("*.py")):
            if path.name == Path(__file__).name:
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if pattern.search(line) and "# seed-hygiene: ok" not in line:
                    out.append(f"{path.relative_to(REPO)}:{lineno}: {line.strip()}")
    return out


def test_no_unseeded_default_rng():
    offenders = _offenders(_UNSEEDED)
    assert not offenders, (
        "unseeded default_rng() calls found — thread an explicit seed "
        "(tests: use the `rng` fixture) or annotate `# seed-hygiene: ok`:\n"
        + "\n".join(offenders)
    )


def test_no_numpy_global_state_draws():
    offenders = _offenders(_GLOBAL_STATE)
    assert not offenders, (
        "numpy global-state RNG calls found — construct a seeded "
        "Generator instead, or annotate `# seed-hygiene: ok`:\n"
        + "\n".join(offenders)
    )
