"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.errors import ObsError
from repro.obs import NULL_OBS, Observability
from repro.obs.registry import (
    POW2_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    label_key,
)


class TestLabelKey:
    def test_sorted_and_stringified(self):
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_order_independent(self):
        assert label_key({"x": 1, "y": 2}) == label_key({"y": 2, "x": 1})


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("dispatches_total", loop="L", tid=3)
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert reg.value("dispatches_total", loop="L", tid=3) == 3.5

    def test_rejects_decrease(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ObsError, match="cannot decrease"):
            c.inc(-1.0)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c", a=1) is reg.counter("c", a=1)
        assert reg.counter("c", a=1) is not reg.counter("c", a=2)
        assert len(reg) == 2


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("team_size")
        g.set(8)
        g.add(-2)
        assert reg.value("team_size") == 6.0


class TestHistogram:
    def test_bucketing_and_totals(self):
        reg = MetricsRegistry()
        h = reg.histogram("chunk", buckets=(1.0, 4.0, 16.0))
        for v in (1, 3, 4, 100):
            h.observe(v)
        d = h.as_dict()
        assert [b["le"] for b in d["buckets"]] == [1.0, 4.0, 16.0, "+Inf"]
        assert [b["count"] for b in d["buckets"]] == [1, 2, 0, 1]
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(108.0)

    def test_default_buckets_are_pow2(self):
        h = MetricsRegistry().histogram("chunk")
        assert h.bounds == POW2_BUCKETS

    def test_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError):
            reg.histogram("h1", buckets=())
        with pytest.raises(ObsError):
            reg.histogram("h2", buckets=(1.0, 1.0, 2.0))

    def test_value_refuses_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,))
        with pytest.raises(ObsError, match="histogram"):
            reg.value("h")


class TestKindConsistency:
    def test_same_name_other_kind_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", a=1)
        with pytest.raises(ObsError, match="already registered"):
            reg.gauge("m", a=1)
        with pytest.raises(ObsError, match="already registered"):
            reg.histogram("m", a=1)

    def test_missing_metric_raises(self):
        with pytest.raises(ObsError, match="no metric"):
            MetricsRegistry().value("nope")


class TestSnapshot:
    def test_sorted_regardless_of_creation_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x", tid=0).inc()
        a.counter("x", tid=1).inc(2)
        b.counter("x", tid=1).inc(2)
        b.counter("x", tid=0).inc()
        assert a.snapshot() == b.snapshot()

    def test_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {
            "counters", "gauges", "histograms", "timeseries", "digests"
        }
        assert [m["name"] for m in snap["counters"]] == ["c"]
        assert [m["name"] for m in snap["gauges"]] == ["g"]
        assert [m["name"] for m in snap["histograms"]] == ["h"]


class TestNullRegistry:
    def test_disabled_and_empty(self):
        reg = NullRegistry()
        assert reg.enabled is False
        assert reg.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
            "timeseries": [], "digests": [],
        }

    def test_instruments_are_shared_noops(self):
        reg = NullRegistry()
        c = reg.counter("c", tid=1)
        assert c is reg.gauge("g") is reg.histogram("h")
        c.inc()
        c.set(5)
        c.add(1)
        c.observe(3)
        assert len(reg) == 0


class TestObservabilityBundle:
    def test_default_is_enabled(self):
        obs = Observability()
        assert obs.enabled
        assert obs.registry.enabled
        assert obs.decisions.enabled

    def test_null_bundle_disabled(self):
        assert NULL_OBS.enabled is False
        assert Observability.disabled().enabled is False
