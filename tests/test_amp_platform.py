"""Unit tests for core types, platforms and presets."""

import pytest

from repro.amp.cache import LLCDomain
from repro.amp.core import Core, CoreType
from repro.amp.platform import Platform, build_platform
from repro.amp.presets import (
    CORTEX_A7,
    CORTEX_A15,
    dual_speed_platform,
    odroid_xu4,
    tri_type_platform,
    xeon_emulated,
)
from repro.errors import PlatformError


class TestCoreType:
    def test_effective_frequency_applies_duty_cycle(self):
        ct = CoreType(name="t", freq_ghz=2.0, duty_cycle=0.5)
        assert ct.effective_freq_ghz == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"freq_ghz": 0.0},
            {"freq_ghz": -1.0},
            {"freq_ghz": 1.0, "duty_cycle": 0.0},
            {"freq_ghz": 1.0, "duty_cycle": 1.5},
            {"freq_ghz": 1.0, "uarch_speedup": 0.0},
            {"freq_ghz": 1.0, "cache_bw": -1.0},
            {"freq_ghz": 1.0, "dram_stream_bw": 0.0},
            {"freq_ghz": 1.0, "dram_latency_bw": 0.0},
            {"freq_ghz": 1.0, "runtime_call_speedup": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(PlatformError):
            CoreType(name="bad", **kwargs)


class TestLLCDomain:
    def test_share_is_fair(self):
        dom = LLCDomain(index=0, size_mb=2.0, associativity=16, cpu_ids=(0, 1))
        assert dom.share_for(4) == 0.5
        assert dom.share_for(1) == 2.0
        assert dom.share_for(0) == 2.0  # clamped

    def test_validation(self):
        with pytest.raises(PlatformError):
            LLCDomain(index=0, size_mb=0, associativity=8, cpu_ids=(0,))
        with pytest.raises(PlatformError):
            LLCDomain(index=0, size_mb=1, associativity=0, cpu_ids=(0,))
        with pytest.raises(PlatformError):
            LLCDomain(index=0, size_mb=1, associativity=8, cpu_ids=())
        with pytest.raises(PlatformError):
            LLCDomain(index=0, size_mb=1, associativity=8, cpu_ids=(0, 0))


class TestPlatformValidation:
    def test_core_numbering_must_be_dense(self):
        small = CoreType(name="s", freq_ghz=1.0)
        with pytest.raises(PlatformError):
            Platform(
                name="bad",
                core_types=(small,),
                cores=(Core(0, small, 0), Core(2, small, 0)),
                llc_domains=(
                    LLCDomain(index=0, size_mb=1, associativity=8, cpu_ids=(0, 2)),
                ),
            )

    def test_llc_must_cover_all_cores(self):
        small = CoreType(name="s", freq_ghz=1.0)
        with pytest.raises(PlatformError):
            Platform(
                name="bad",
                core_types=(small,),
                cores=(Core(0, small, 0), Core(1, small, 0)),
                llc_domains=(
                    LLCDomain(index=0, size_mb=1, associativity=8, cpu_ids=(0,)),
                ),
            )

    def test_build_platform_rejects_empty(self):
        with pytest.raises(PlatformError):
            build_platform("empty", [])


class TestPresets:
    def test_platform_a_layout(self):
        p = odroid_xu4()
        assert p.n_cores == 8
        assert p.n_core_types == 2
        # Paper convention: CPUs 0-3 small, 4-7 big.
        assert p.core(0).core_type == CORTEX_A7
        assert p.core(7).core_type == CORTEX_A15
        assert p.type_counts() == (4, 4)
        # Per-cluster LLCs: 512 KB (A7) and 2 MB (A15), as in Table 1.
        assert p.llc_of(0).size_mb == 0.5
        assert p.llc_of(4).size_mb == 2.0

    def test_platform_b_shared_llc(self):
        p = xeon_emulated()
        assert p.n_cores == 8
        assert len(p.llc_domains) == 1
        assert p.llc_domains[0].size_mb == 20.0
        assert p.llc_of(0) is p.llc_of(7)

    def test_platform_b_effective_frequency_ratio(self):
        p = xeon_emulated()
        slow, fast = p.core_types
        # 2.1 GHz full duty vs 1.2 GHz at 87.5% -> exactly 2x.
        assert fast.effective_freq_ghz / slow.effective_freq_ghz == pytest.approx(2.0)

    def test_core_types_ordered_slowest_first(self):
        for p in (odroid_xu4(), xeon_emulated(), tri_type_platform()):
            freqs = [ct.effective_freq_ghz for ct in p.core_types]
            assert freqs == sorted(freqs)

    def test_dual_speed_is_flat(self):
        p = dual_speed_platform(2, 2, big_speedup=3.0)
        small, big = p.core_types
        assert big.freq_ghz / small.freq_ghz == pytest.approx(3.0)
        assert big.cache_bw / small.cache_bw == pytest.approx(3.0)

    def test_tri_type_has_three_types(self):
        p = tri_type_platform()
        assert p.n_core_types == 3
        assert p.n_cores == 6

    def test_queries(self):
        p = odroid_xu4()
        assert len(p.cores_of_type("cortex-a15")) == 4
        assert p.type_index("cortex-a7") == 0
        assert p.type_index(CORTEX_A15) == 1
        with pytest.raises(PlatformError):
            p.type_index("epyc")
        with pytest.raises(PlatformError):
            p.core(99)
        assert not p.is_symmetric
        assert "Odroid" in p.describe()
