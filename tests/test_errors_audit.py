"""Audit: domain failures raised anywhere in ``repro`` use the
:class:`~repro.errors.ReproError` hierarchy.

Callers are promised a single except clause catches every library
failure while programming errors (``TypeError`` and friends) still
propagate. That promise only holds if no module quietly raises a bare
builtin for a domain condition — so this test greps the entire source
tree for ``raise <Name>(...)`` statements and checks every name against
the hierarchy.
"""

import re
from pathlib import Path

import repro.errors as errors_mod
from repro.errors import FaultError, ReproError, WatchdogTimeout

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

_RAISE = re.compile(r"\braise\s+([A-Za-z_][A-Za-z0-9_.]*)\s*\(")

#: The chaos harness deliberately raises *foreign* exception types —
#: OSError from an injected disk fault, a crash sentinel standing in for
#: a SIGKILLed worker — precisely because it models the outside world
#: the fleet must survive, not domain conditions the library reports.
#: Those raise sites carry this pragma, and the audit only honours it
#: inside ``fleet/chaos.py`` so the exemption cannot spread silently.
_FOREIGN_PRAGMA = "# chaos: injected foreign failure"
_FOREIGN_FILES = {"fleet/chaos.py"}


def _repro_error_names():
    return {
        name
        for name, obj in vars(errors_mod).items()
        if isinstance(obj, type) and issubclass(obj, ReproError)
    }


def test_every_module_raises_only_repro_errors():
    allowed = _repro_error_names()
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        for match in _RAISE.finditer(text):
            name = match.group(1).split(".")[-1]
            if name not in allowed:
                line = text[: match.start()].count("\n") + 1
                if (
                    rel in _FOREIGN_FILES
                    and _FOREIGN_PRAGMA in lines[line - 1]
                ):
                    continue
                offenders.append(f"{rel}:{line}: raise {match.group(1)}")
    assert not offenders, (
        "domain failures must raise ReproError subclasses:\n"
        + "\n".join(offenders)
    )


def test_hierarchy_is_rooted_at_repro_error():
    names = _repro_error_names()
    # Every public exception class in repro.errors is part of the tree.
    for name, obj in vars(errors_mod).items():
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, ReproError), name
    assert {"ConfigError", "FaultError", "WatchdogTimeout"} <= names
    assert issubclass(WatchdogTimeout, FaultError)


def test_errors_are_catchable_as_repro_error():
    from repro.faults.model import FaultPlan

    try:
        FaultPlan.from_json("not json")
    except ReproError as exc:
        assert isinstance(exc, FaultError)
    else:  # pragma: no cover
        raise AssertionError("malformed plan must raise")
