"""Unit tests for whole-program execution."""

import pytest

from repro.compiler.lowering import compile_program
from repro.errors import ConfigError
from repro.perfmodel.kernel import KernelProfile
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.sched.aid_static import AidStaticSpec
from repro.workloads.costmodels import UniformCost
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program, SerialPhase

KERNEL = KernelProfile(name="k", compute_weight=1.0, ilp=0.0, working_set_mb=0.0)
SERIAL_KERNEL = KernelProfile(
    name="sk", compute_weight=1.0, ilp=0.0, working_set_mb=0.0
)


def tiny_program(timesteps=2, serial_work=1e-3):
    return Program(
        name="tiny",
        suite="test",
        setup=(SerialPhase("init", work=serial_work, kernel=SERIAL_KERNEL),),
        body=(
            LoopSpec("loop_a", 64, UniformCost(1e-4), KERNEL),
            SerialPhase("glue", work=serial_work / 10, kernel=SERIAL_KERNEL),
            LoopSpec("loop_b", 32, UniformCost(2e-4), KERNEL),
        ),
        timesteps=timesteps,
    )


def test_runs_all_phases(flat2x):
    runner = ProgramRunner(flat2x, OmpEnv(schedule="dynamic,1", affinity="BS"))
    result = runner.run(tiny_program(timesteps=3))
    assert result.completion_time > 0
    assert len(result.loop_results) == 6  # 2 loops x 3 timesteps
    assert result.serial_time > 0
    names = [r.loop_name for r in result.loop_results]
    assert names == ["loop_a", "loop_b"] * 3


def test_deterministic(flat2x):
    env = OmpEnv(schedule="aid_dynamic,1,5", affinity="BS")
    t1 = ProgramRunner(flat2x, env, root_seed=3).run(tiny_program())
    t2 = ProgramRunner(flat2x, env, root_seed=3).run(tiny_program())
    assert t1.completion_time == t2.completion_time


def test_seed_changes_results(flat2x):
    env = OmpEnv(schedule="dynamic,1", affinity="BS")
    t1 = ProgramRunner(flat2x, env, root_seed=1).run(tiny_program())
    t2 = ProgramRunner(flat2x, env, root_seed=2).run(tiny_program())
    # Same workload costs (UniformCost) but different wake jitter; the
    # completion time may coincide, the assignments should not.
    r1 = t1.loop_results[0].ranges
    r2 = t2.loop_results[0].ranges
    assert r1 != r2


def test_serial_phase_faster_with_bs_master(platform_a):
    slow = ProgramRunner(
        platform_a, OmpEnv(schedule="static", affinity="SB")
    ).run(tiny_program(serial_work=50e-3))
    fast = ProgramRunner(
        platform_a, OmpEnv(schedule="static", affinity="BS")
    ).run(tiny_program(serial_work=50e-3))
    assert fast.completion_time < slow.completion_time


def test_aid_requires_bs(platform_a):
    with pytest.raises(ConfigError):
        ProgramRunner(platform_a, OmpEnv(schedule="aid_static", affinity="SB"))


def test_vanilla_compiled_program_ignores_omp_schedule(flat2x):
    """Vanilla lowering inlines static: the runtime cannot intervene, so
    OMP_SCHEDULE has no effect — the Sec. 4.1 motivation."""
    program = tiny_program()
    vanilla = compile_program(program, modified=False)
    t_static = ProgramRunner(
        flat2x, OmpEnv(schedule="static", affinity="BS")
    ).run(vanilla)
    t_dynamic = ProgramRunner(
        flat2x, OmpEnv(schedule="dynamic,1", affinity="BS")
    ).run(vanilla)
    assert t_static.completion_time == pytest.approx(t_dynamic.completion_time)
    assert t_static.total_dispatches == 0


def test_modified_compiled_program_obeys_omp_schedule(flat2x):
    program = tiny_program()
    modified = compile_program(program, modified=True)
    t_dynamic = ProgramRunner(
        flat2x, OmpEnv(schedule="dynamic,1", affinity="BS")
    ).run(modified)
    assert t_dynamic.total_dispatches > 0


def test_schedule_clause_overrides_runtime_schedule(flat2x):
    """A loop with an explicit clause keeps its schedule regardless of
    OMP_SCHEDULE."""
    program = Program(
        name="clause",
        suite="test",
        body=(
            LoopSpec(
                "forced_dynamic",
                64,
                UniformCost(1e-4),
                KERNEL,
                schedule_clause="dynamic,2",
            ),
        ),
        timesteps=1,
    )
    result = ProgramRunner(
        flat2x, OmpEnv(schedule="static", affinity="BS")
    ).run(program)
    assert result.loop_results[0].dispatches >= 64 // 2


def test_schedule_override(flat2x):
    """schedule_override replaces the parsed OMP_SCHEDULE spec."""
    runner = ProgramRunner(
        flat2x,
        OmpEnv(schedule="aid_static", affinity="BS"),
        offline_sf_tables={"loop_a": {0: 1.0, 1: 2.0}, "loop_b": {0: 1.0, 1: 2.0}},
        schedule_override=AidStaticSpec(use_offline_sf=True),
    )
    result = runner.run(tiny_program())
    # Offline-SF variant samples nothing, so no SF estimates are logged.
    assert all(r.estimated_sf is None for r in result.loop_results)


def test_offline_sf_missing_table_raises(flat2x):
    runner = ProgramRunner(
        flat2x,
        OmpEnv(schedule="aid_static", affinity="BS"),
        offline_sf_tables={"loop_a": {0: 1.0, 1: 2.0}},  # loop_b missing
        schedule_override=AidStaticSpec(use_offline_sf=True),
    )
    with pytest.raises(ConfigError):
        runner.run(tiny_program())


def test_trace_covers_whole_run(flat2x):
    runner = ProgramRunner(
        flat2x, OmpEnv(schedule="dynamic,1", affinity="BS"), trace=True
    )
    result = runner.run(tiny_program())
    assert result.trace is not None
    result.trace.validate_non_overlapping()
    assert result.trace.t_end == pytest.approx(result.completion_time)


def test_estimated_sf_series(flat2x):
    runner = ProgramRunner(flat2x, OmpEnv(schedule="aid_static", affinity="BS"))
    result = runner.run(tiny_program(timesteps=3))
    series = result.estimated_sf_series("loop_a")
    assert len(series) == 3
    for sf in series:
        assert sf[1] == pytest.approx(2.0, rel=0.2)
