"""End-to-end integration tests: the paper's decision-relevant claims.

These run whole programs through the full stack (workload model ->
compiler lowering -> runtime -> schedulers -> performance model) and
assert the conclusions a practitioner would act on.
"""

import pytest

from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.experiments.harness import default_configs, run_grid
from repro.metrics.stats import summarize_gains
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.workloads.registry import all_programs, get_program


@pytest.fixture(scope="module")
def grid_a():
    return run_grid(odroid_xu4())


@pytest.fixture(scope="module")
def grid_b():
    return run_grid(xeon_emulated())


class TestHeadlineClaims:
    """The abstract's numbers, as shapes."""

    def test_aid_static_and_hybrid_replace_static(self, grid_a, grid_b):
        """Abstract: AID-static/hybrid outperform static across the
        board, by up to 56%."""
        for grid in (grid_a, grid_b):
            s = summarize_gains(grid.column("AID-static"), grid.column("static(BS)"))
            h = summarize_gains(grid.column("AID-hybrid"), grid.column("static(BS)"))
            assert 0.08 < s["mean"] < 0.35
            assert 0.12 < h["mean"] < 0.45
            assert h["mean"] > s["mean"]

    def test_peak_hybrid_gain_in_paper_range(self, grid_a):
        """Paper: up to 56% over static (streamcluster, AID-hybrid)."""
        gains = [
            grid_a.time(p, "static(BS)") / grid_a.time(p, "AID-hybrid") - 1
            for p in grid_a.times
            if p != "particlefilter"
        ]
        assert 0.3 < max(gains) < 0.8

    def test_aid_dynamic_replaces_dynamic(self, grid_a, grid_b):
        d_a = summarize_gains(grid_a.column("AID-dynamic"), grid_a.column("dynamic(BS)"))
        d_b = summarize_gains(grid_b.column("AID-dynamic"), grid_b.column("dynamic(BS)"))
        assert d_a["mean"] > 0
        assert d_b["mean"] > d_a["mean"]  # the platform asymmetry

    def test_dynamic_generally_beats_static_on_amps(self, grid_a):
        """Sec. 3 / [13]: dynamic is in general superior to static on
        AMPs — but not universally (the overhead cases)."""
        wins = sum(
            1
            for p in grid_a.times
            if grid_a.time(p, "dynamic(BS)") < grid_a.time(p, "static(BS)")
        )
        assert wins >= 0.6 * len(grid_a.times)


class TestCrossCuttingInvariants:
    def test_all_21_programs_run_under_all_configs(self, grid_a):
        assert len(grid_a.times) == 21
        for row in grid_a.times.values():
            assert len(row) == len(default_configs())

    def test_results_strictly_deterministic(self):
        p = odroid_xu4()
        env = OmpEnv(schedule="aid_dynamic,1,5", affinity="BS")
        prog = get_program("FT")
        a = ProgramRunner(p, env, root_seed=7).run(prog)
        b = ProgramRunner(p, env, root_seed=7).run(prog)
        assert a.completion_time == b.completion_time
        assert [r.iterations for r in a.loop_results] == [
            r.iterations for r in b.loop_results
        ]

    def test_iteration_conservation_whole_programs(self):
        """Across a whole multi-loop program, every loop's iterations are
        fully executed under every AID schedule."""
        p = odroid_xu4()
        for schedule in ("aid_static", "aid_hybrid,80", "aid_dynamic,1,5"):
            runner = ProgramRunner(p, OmpEnv(schedule=schedule, affinity="BS"))
            result = runner.run(get_program("SP"))
            for lr in result.loop_results:
                loop = next(
                    l for l in get_program("SP").loops() if l.name == lr.loop_name
                )
                assert sum(lr.iterations) == loop.n_iterations

    def test_traces_consistent_for_every_schedule(self):
        p = odroid_xu4()
        for schedule in ("static", "dynamic,1", "guided,1", "aid_static",
                         "aid_hybrid,80", "aid_dynamic,1,5"):
            runner = ProgramRunner(
                p, OmpEnv(schedule=schedule, affinity="BS"), trace=True
            )
            result = runner.run(get_program("MG"))
            result.trace.validate_non_overlapping()
            assert result.trace.t_end == pytest.approx(result.completion_time)

    def test_every_program_faster_with_more_cores(self):
        """8 threads beat (or at worst match) 4 big-core threads for
        every program under AID-static. blackscholes is the boundary
        case: its coherence traffic grows with co-runners, so the extra
        small cores buy almost nothing (the paper's contention story).
        """
        p = odroid_xu4()
        for program in all_programs():
            t8 = ProgramRunner(
                p, OmpEnv(schedule="aid_static", affinity="BS")
            ).run(program).completion_time
            t4 = ProgramRunner(
                p, OmpEnv(schedule="aid_static", affinity="BS", num_threads=4)
            ).run(program).completion_time
            assert t8 <= t4 * 1.03, program.name


class TestSimulatorVsRealThreadAgreement:
    """The two backends run the same scheduler code: distributions must
    agree qualitatively."""

    def test_aid_static_distribution_matches(self):
        import numpy as np

        from repro.amp.presets import dual_speed_platform
        from repro.exec_real import ThreadTeam
        from repro.sched.aid_static import AidStaticSpec

        from tests.helpers import run_loop

        platform = dual_speed_platform(2, 2, big_speedup=2.0)
        sim = run_loop(platform, AidStaticSpec(use_offline_sf=True),
                       n_iterations=600, offline_sf={0: 1.0, 1: 2.0})

        team = ThreadTeam(4, platform)

        # Give every worker time to claim its allotment before the pool
        # drains (with an instant body, whichever thread the OS runs
        # first would mop up everything).
        import time

        def body(tid: int, lo: int, hi: int) -> None:
            time.sleep(0.002)

        real = team.parallel_for(
            600,
            body,
            AidStaticSpec(use_offline_sf=True),
            offline_sf={0: 1.0, 1: 2.0},
        )
        # Same offline tables -> identical targets on both backends.
        assert sim.iterations == real.iterations_per_thread
