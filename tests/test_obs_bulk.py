"""Bulk instrument paths vs their scalar twins.

The vectorized execution backend publishes metrics through the column
entry points (``observe_many`` / ``observe_spans``); byte-identity of
its observability snapshots depends on those folds landing exactly where
per-element calls would. Each test here feeds the same data down both
paths and compares the resulting instrument state.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs.merge import summarize_decisions
from repro.obs.registry import MetricsRegistry, label_key
from repro.obs.timeseries import QuantileDigest, TimeSeries

SEED = 20260808


def _hist_pair():
    reg = MetricsRegistry()
    bounds = (0.001, 0.01, 0.1, 1.0)
    return (
        reg.histogram("a", buckets=bounds),
        reg.histogram("b", buckets=bounds),
    )


class TestHistogramBulk:
    def test_matches_sequential_observe(self):
        rng = np.random.default_rng(SEED)
        values = rng.lognormal(mean=-4.0, sigma=2.0, size=500)
        bulk, scalar = _hist_pair()
        bulk.observe_many(values)
        for v in values:
            scalar.observe(float(v))
        assert bulk.counts == scalar.counts
        assert bulk.count == scalar.count
        # The cumsum chain reproduces left-to-right += rounding exactly.
        assert bulk.sum == scalar.sum

    def test_values_on_bucket_edges(self):
        # searchsorted side="left" must agree with bisect_left: a value
        # exactly equal to a bound lands in the bucket *at* that bound.
        bulk, scalar = _hist_pair()
        edges = [0.001, 0.01, 0.1, 1.0, 0.0, 2.0]
        bulk.observe_many(edges)
        for v in edges:
            scalar.observe(v)
        assert bulk.counts == scalar.counts

    def test_empty_column_is_a_noop(self):
        bulk, _ = _hist_pair()
        bulk.observe_many([])
        assert bulk.count == 0 and bulk.sum == 0.0


class TestDigestBulk:
    def test_matches_sequential_observe(self):
        rng = np.random.default_rng(SEED)
        values = np.concatenate([
            rng.lognormal(mean=-6.0, sigma=3.0, size=400),
            np.zeros(7),
            [-1e-9, 5.0],
        ])
        rng.shuffle(values)
        bulk = QuantileDigest("d", ())
        scalar = QuantileDigest("d", ())
        bulk.observe_many(values)
        for v in values:
            scalar.observe(float(v))
        assert bulk.counts == scalar.counts
        assert bulk.zero == scalar.zero
        assert bulk.count == scalar.count
        assert bulk.min == scalar.min and bulk.max == scalar.max
        # sum accumulates in a different reduction order — close, not
        # bitwise.
        assert bulk.sum == pytest.approx(scalar.sum, rel=1e-12)


def _series(mode="sample", window=1.0, capacity=256, norm=1.0):
    return TimeSeries("s", (), mode=mode, window=window,
                      capacity=capacity, norm=norm)


class TestTimeSeriesBulk:
    @pytest.mark.parametrize("n", [5, 23, 24, 200])
    def test_observe_many_matches_scalar(self, n):
        # n straddles the scalar/numpy switchover (< 24 runs the scalar
        # branch); with ample capacity neither path coalesces, so the
        # window contents must agree exactly.
        rng = np.random.default_rng(SEED + n)
        ts = np.sort(rng.uniform(0.0, 40.0, size=n))
        vals = rng.uniform(0.0, 1.0, size=n)
        bulk, scalar = _series(), _series()
        bulk.observe_many(ts, vals)
        for t, v in zip(ts, vals):
            scalar.observe(float(t), float(v))
        assert bulk.as_dict() == scalar.as_dict()

    @pytest.mark.parametrize("n", [5, 23, 24, 200])
    def test_observe_spans_matches_scalar(self, n):
        rng = np.random.default_rng(SEED + n)
        t0 = np.sort(rng.uniform(0.0, 40.0, size=n))
        t1 = t0 + rng.uniform(0.0, 3.0, size=n)
        bulk = _series(mode="busy", norm=4.0)
        scalar = _series(mode="busy", norm=4.0)
        bulk.observe_spans(t0, t1)
        for a, b in zip(t0, t1):
            scalar.observe_span(float(a), float(b))
        bd, sd = bulk.as_dict(), scalar.as_dict()
        assert bd["level"] == sd["level"]
        assert set(bd["points"]) == set(sd["points"])
        for k, slot in bd["points"].items():
            assert slot == pytest.approx(sd["points"][k], abs=1e-12)

    def test_zero_length_spans_are_dropped(self):
        bulk = _series(mode="busy")
        bulk.observe_spans([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert bulk.points == {}

    def test_mode_mismatch_raises(self):
        from repro.errors import ObsError

        with pytest.raises(ObsError, match="busy-mode"):
            _series(mode="busy").observe_many([1.0], [1.0])
        with pytest.raises(ObsError, match="sample-mode"):
            _series().observe_spans([0.0], [1.0])

    def test_ragged_columns_raise(self):
        from repro.errors import ObsError

        with pytest.raises(ObsError, match="observe_many"):
            _series().observe_many([1.0, 2.0], [1.0])


class TestCoalesceBulk:
    @pytest.mark.parametrize("n_points", [40, 100])
    def test_bulk_fold_matches_sequential_fold(self, n_points):
        # n > 48 takes the numpy reduceat fold, n <= 48 the dict loop;
        # both must produce the same level-(k+1) windows. The expected
        # fold is recomputed here from first principles.
        rng = np.random.default_rng(SEED + n_points)
        ts = _series(capacity=1 << 20)
        for i in rng.choice(5000, size=n_points, replace=False):
            idx = int(i)
            ts.points[idx] = [
                float(rng.uniform(0, 10)), float(rng.integers(1, 5)),
                float(rng.uniform(0, 1)), float(rng.uniform(1, 2)),
            ]
        expected: dict[int, list[float]] = {}
        for idx, (s, c, lo, hi) in ts.points.items():
            slot = expected.get(idx >> 1)
            if slot is None:
                expected[idx >> 1] = [s, c, lo, hi]
            else:
                slot[0] += s
                slot[1] += c
                slot[2] = min(slot[2], lo)
                slot[3] = max(slot[3], hi)
        ts._coalesce()
        assert ts.level == 1
        assert set(ts.points) == set(expected)
        for k, slot in ts.points.items():
            assert slot == pytest.approx(expected[k], abs=0.0)

    def test_repeated_coalesce_reaches_capacity(self):
        ts = _series(capacity=4)
        for i in range(200):
            ts.observe(float(i), 1.0)
        assert len(ts.points) <= 4
        assert math.isclose(
            sum(s for s, _, _, _ in ts.points.values()), 200.0
        )


def _records(n=60):
    out = []
    for i in range(n):
        out.append({
            "scheduler": f"aid_{i % 3}",
            "event": ("dispatch", "adapt")[i % 2],
            "loop": f"loop{i % 4}",
            "payload": {"mean": i * 0.5},
        })
    return out


class TestSummarizeDecisionsPaths:
    def test_fast_path_equals_slow_path(self):
        complete = _records()
        fast = summarize_decisions(complete)
        # Forcing the slow path: drop a key from ONE record so the
        # comprehension raises, then restore semantics with the same
        # value via .get's default handling — instead, compare against
        # records where one has an extra missing field replaced by the
        # literal the slow path would synthesize.
        degraded = [dict(r) for r in complete]
        degraded.append({"event": "dispatch"})  # missing scheduler/loop
        slow = summarize_decisions(degraded)
        assert slow["total"] == fast["total"] + 1
        assert slow["schedulers"]["?"]["total"] == 1
        # The shared portion of the two summaries agrees.
        for name, entry in fast["schedulers"].items():
            assert slow["schedulers"][name] == entry

    def test_non_string_keys_fall_back_and_coerce(self):
        records = [
            {"scheduler": 7, "event": "dispatch", "loop": 1},
            {"scheduler": 7, "event": "dispatch", "loop": 1},
        ]
        doc = summarize_decisions(records)
        assert doc["schedulers"]["7"]["total"] == 2
        assert doc["loops"]["1"] == 2

    def test_empty_log(self):
        assert summarize_decisions([]) == {
            "total": 0, "schedulers": {}, "loops": {},
        }


class TestLabelKey:
    def test_order_independent(self):
        assert label_key({"b": 1, "a": 2}) == label_key({"a": 2, "b": 1})

    def test_values_stringify(self):
        assert label_key({"n": 3}) == (("n", "3"),)
