"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py", "EP")
    assert "Platform A" in out and "aid_hybrid" in out


def test_trace_gallery_runs():
    out = run_example("trace_gallery.py", "60")
    assert "aid_static" in out and "#" in out


def test_custom_scheduler_runs():
    out = run_example("custom_scheduler.py")
    assert "trapezoid" in out


def test_three_core_types_runs():
    out = run_example("three_core_types.py")
    assert "sampled SF per core type" in out


def test_real_threads_blackscholes_runs():
    out = run_example("real_threads_blackscholes.py", "5000")
    assert "identical prices" in out


def test_colocated_apps_runs():
    out = run_example("colocated_apps.py")
    assert "STP" in out and "team sizes" in out


def test_energy_comparison_runs():
    out = run_example("energy_comparison.py", "IS")
    assert "EDP" in out
