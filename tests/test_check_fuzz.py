"""Tests for the deterministic fuzzer, shrinking and mutant detection."""

from __future__ import annotations

import dataclasses

import pytest

from repro.check.fuzz import fuzz, run_case, shrink
from repro.check.generators import FuzzCase, generate_case
from repro.check.mutants import MUTANTS, apply_mutant
from repro.errors import ConfigError


class TestRunCase:
    def test_clean_case_passes(self):
        case = FuzzCase(
            seed=1,
            schedule="aid_dynamic,1,5",
            platform="odroid_xu4",
            n_iterations=64,
        )
        result = run_case(case)
        assert result.ok, result.render()
        assert result.report.n_iterations == 64

    def test_case_replays_identically(self):
        case = generate_case(99)
        a = run_case(case)
        b = run_case(case)
        assert a.check.executed_ranges() == b.check.executed_ranges()
        assert [r for r in a.check.decisions.records] == [
            r for r in b.check.decisions.records
        ]

    def test_crash_is_folded_into_the_report(self):
        case = FuzzCase(
            seed=1,
            schedule="aid_static,3",
            platform="dual:1:1",
            n_iterations=2,
            overhead_scale=0.0,
        )
        result = run_case(case, mutant="workshare-no-clamp")
        assert not result.ok
        assert result.report.error is not None


class TestFuzzCampaign:
    def test_small_campaign_is_clean(self):
        result = fuzz(25, 7)
        assert result.ok, result.render()
        assert "zero violations" in result.render()

    def test_campaign_is_deterministic(self):
        a = fuzz(10, 3)
        b = fuzz(10, 3)
        assert a.ok == b.ok and a.n_cases == b.n_cases

    def test_max_failures_stops_early(self):
        result = fuzz(
            40,
            1,
            variants=("aid_dynamic",),
            mutant="aid-dynamic-chunk-decrement",
            shrink_failures=False,
            max_failures=1,
        )
        assert len(result.failures) == 1


class TestMutantDetection:
    def test_chunk_decrement_mutant_detected_and_shrinks_small(self):
        result = fuzz(
            25,
            1,
            variants=("aid_dynamic",),
            mutant="aid-dynamic-chunk-decrement",
            max_failures=1,
        )
        assert not result.ok, "oracle failed to detect the planted bug"
        failure = result.failures[0]
        assert failure.shrunk.n_iterations <= 8, failure.render()
        assert not run_case(
            failure.shrunk, mutant="aid-dynamic-chunk-decrement"
        ).ok

    def test_no_clamp_mutant_detected(self):
        result = fuzz(
            25,
            1,
            variants=("aid_static", "aid_steal,8"),
            mutant="workshare-no-clamp",
            max_failures=1,
        )
        assert not result.ok
        names = {
            v.invariant
            for v in result.failures[0].result.report.violations
        }
        assert "workshare-replay" in names

    def test_mutants_restore_cleanly(self):
        # After a mutant campaign the pristine runtime must fuzz clean.
        fuzz(5, 1, mutant="workshare-no-clamp", shrink_failures=False)
        assert fuzz(5, 1).ok

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ConfigError):
            with apply_mutant("not-a-mutant"):
                pass

    def test_mutant_catalog_documented(self):
        assert "aid-dynamic-chunk-decrement" in MUTANTS
        for m in MUTANTS.values():
            assert m.description


class TestShrink:
    def test_shrink_reaches_fixpoint(self):
        case = generate_case(5)
        # synthetic predicate: fails whenever ni >= 3
        fails = lambda c: c.n_iterations >= 3  # noqa: E731
        if not fails(case):
            case = dataclasses.replace(case, n_iterations=50)
        shrunk = shrink(case, fails=fails)
        assert shrunk.n_iterations == 3
        assert fails(shrunk)

    def test_shrink_keeps_passing_case_unchanged(self):
        case = generate_case(6)
        assert shrink(case, fails=lambda c: False) == case
