"""Golden decision-log regression tests.

Each AID variant's canonical run on the odroid preset must reproduce
the committed decision log byte-for-byte. A digest change means the
scheduler's decision sequence changed — fail with the oracle-rendered
divergence; if intentional, regenerate with
``python -m repro.check golden --update``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check.golden import (
    GOLDEN_VARIANTS,
    check_golden,
    digest,
    golden_jsonl,
    render_divergence,
    run_golden,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("key", sorted(GOLDEN_VARIANTS))
def test_decision_log_matches_golden(key):
    path = GOLDEN_DIR / f"{key}.jsonl"
    assert path.exists(), (
        f"golden file {path} missing; run `python -m repro.check golden "
        f"--update` and commit the result"
    )
    expected = path.read_text(encoding="utf-8")
    actual = golden_jsonl(key)
    assert expected == actual, render_divergence(key, expected, actual)


def test_golden_runs_are_deterministic():
    key = "aid_dynamic_1_5"
    assert golden_jsonl(key) == golden_jsonl(key)


def test_golden_runs_pass_the_oracle():
    from repro.check.oracle import verify_loop

    for key in GOLDEN_VARIANTS:
        report = verify_loop(run_golden(key))
        assert report.ok, f"{key}: {report.render()}"


def test_check_golden_flags_tampered_file(tmp_path):
    for key in GOLDEN_VARIANTS:
        (tmp_path / f"{key}.jsonl").write_text(
            golden_jsonl(key), encoding="utf-8"
        )
    assert check_golden(tmp_path) == {}
    # tamper: flip one record's tid
    victim = tmp_path / "aid_static.jsonl"
    lines = victim.read_text(encoding="utf-8").splitlines()
    rec = json.loads(lines[1])
    rec["tid"] = 99
    lines[1] = json.dumps(rec, sort_keys=True)
    victim.write_text("\n".join(lines) + "\n", encoding="utf-8")
    problems = check_golden(tmp_path)
    assert set(problems) == {"aid_static"}
    assert "first divergence at record 1" in problems["aid_static"]
    assert "--update" in problems["aid_static"]


def test_check_golden_flags_missing_file(tmp_path):
    problems = check_golden(tmp_path)
    assert set(problems) == set(GOLDEN_VARIANTS)
    assert all("missing" in p for p in problems.values())


def test_digest_is_stable_and_short():
    assert digest("x") == digest("x")
    assert len(digest("x")) == 16
    assert digest("x") != digest("y")
