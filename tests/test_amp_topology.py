"""Unit tests for affinity mappings (SB/BS conventions)."""

import pytest

from repro.amp.presets import odroid_xu4
from repro.amp.topology import AffinityMapping, bs_mapping, custom_mapping, sb_mapping
from repro.errors import PlatformError


def test_sb_puts_master_on_small_core():
    p = odroid_xu4()
    m = sb_mapping(p)
    assert m.name == "SB"
    assert m.cpu_of_tid[0] == 0  # CPU 0 is a small core
    assert p.core(m.cpu_of_tid[0]).core_type.name == "cortex-a7"


def test_bs_puts_master_on_big_core():
    p = odroid_xu4()
    m = bs_mapping(p)
    assert m.name == "BS"
    assert p.core(m.cpu_of_tid[0]).core_type.name == "cortex-a15"
    # Lowest TIDs on big cores, descending CPU numbers.
    assert m.cpu_of_tid == (7, 6, 5, 4, 3, 2, 1, 0)


def test_partial_team_sizes():
    p = odroid_xu4()
    assert sb_mapping(p, 4).cpu_of_tid == (0, 1, 2, 3)
    assert bs_mapping(p, 4).cpu_of_tid == (7, 6, 5, 4)


def test_too_many_threads_rejected():
    p = odroid_xu4()
    with pytest.raises(PlatformError):
        sb_mapping(p, 9)
    with pytest.raises(PlatformError):
        bs_mapping(p, 0)


def test_oversubscription_rejected():
    with pytest.raises(PlatformError):
        AffinityMapping(name="dup", cpu_of_tid=(0, 0))


def test_negative_cpu_rejected():
    with pytest.raises(PlatformError):
        AffinityMapping(name="neg", cpu_of_tid=(-1,))


def test_empty_mapping_rejected():
    with pytest.raises(PlatformError):
        AffinityMapping(name="none", cpu_of_tid=())


def test_validate_for_checks_cpu_range():
    p = odroid_xu4()
    m = custom_mapping("weird", [0, 12])
    with pytest.raises(PlatformError):
        m.validate_for(p)
