"""Unit tests for OMP_SCHEDULE-string parsing."""

import pytest

from repro.errors import ConfigError
from repro.sched import (
    AidDynamicSpec,
    AidHybridSpec,
    AidStaticSpec,
    DynamicSpec,
    GuidedSpec,
    StaticSpec,
    available_schedules,
    parse_schedule,
)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("static", StaticSpec()),
        ("static,16", StaticSpec(chunk=16)),
        ("dynamic", DynamicSpec(chunk=1)),
        ("dynamic,4", DynamicSpec(chunk=4)),
        ("guided", GuidedSpec(chunk=1)),
        ("guided,2", GuidedSpec(chunk=2)),
        ("aid_static", AidStaticSpec()),
        ("aid_static,2", AidStaticSpec(sampling_chunk=2)),
        ("aid_hybrid", AidHybridSpec(percentage=80)),
        ("aid_hybrid,60", AidHybridSpec(percentage=60)),
        ("aid_hybrid,60,4", AidHybridSpec(percentage=60, dynamic_chunk=4)),
        ("aid_dynamic", AidDynamicSpec(minor_chunk=1, major_chunk=5)),
        ("aid_dynamic,2,20", AidDynamicSpec(minor_chunk=2, major_chunk=20)),
    ],
)
def test_parse(text, expected):
    assert parse_schedule(text) == expected


def test_whitespace_and_case_tolerated():
    assert parse_schedule("  DYNAMIC , 4 ") == DynamicSpec(chunk=4)


@pytest.mark.parametrize(
    "text",
    [
        "",
        "fifo",
        "static,1,2",
        "dynamic,x",
        "dynamic,0",
        "aid_dynamic,5",  # needs zero or two args
        "aid_dynamic,5,1",  # M < m
        "aid_hybrid,0",
        "aid_hybrid,150",
        "guided,1,2",
    ],
)
def test_invalid_rejected(text):
    with pytest.raises(ConfigError):
        parse_schedule(text)


def test_available_schedules_all_parse():
    for name in available_schedules():
        assert parse_schedule(name) is not None


def test_spec_names_round_trip():
    """A spec's canonical name parses back to an equal spec."""
    specs = [
        StaticSpec(),
        StaticSpec(chunk=3),
        DynamicSpec(7),
        GuidedSpec(2),
        AidStaticSpec(sampling_chunk=2),
        AidHybridSpec(percentage=70),
        AidDynamicSpec(2, 9),
    ]
    for spec in specs:
        assert parse_schedule(spec.name) == spec
