"""Tests for nowait work-sharing semantics.

A ``nowait`` loop skips the implicit barrier: each thread flows into the
next work-sharing construct as soon as its own share is done — the
``GOMP_loop_end_nowait`` path whose symbol the compiler model emits.
"""

import numpy as np
import pytest

from repro.amp.presets import dual_speed_platform, odroid_xu4
from repro.errors import SimulationError
from repro.perfmodel.kernel import KernelProfile
from repro.perfmodel.overhead import ZERO_OVERHEAD
from repro.perfmodel.speed import PerfModel
from repro.perfmodel.locality import LocalityModel
from repro.amp.topology import bs_mapping
from repro.runtime.env import OmpEnv
from repro.runtime.executor import LoopExecutor
from repro.runtime.program_runner import ProgramRunner
from repro.runtime.team import Team
from repro.sched.dynamic import DynamicSpec
from repro.workloads.costmodels import RampCost, UniformCost
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program

K = KernelProfile(name="k", compute_weight=1.0, ilp=0.0, working_set_mb=0.0)


def make_executor(platform):
    team = Team(platform, bs_mapping(platform))
    return LoopExecutor(
        team,
        PerfModel(platform),
        ZERO_OVERHEAD,
        locality=LocalityModel(enabled=False),
    )


class TestExecutorStartTimes:
    def test_staggered_entries_respected(self, flat2x):
        ex = make_executor(flat2x)
        loop = LoopSpec("l", 40, UniformCost(1e-4), K)
        costs = np.full(40, 1e-4)
        entries = [0.0, 0.005, 0.01, 0.015]
        result = ex.run(loop, costs, DynamicSpec(1), start_times=entries)
        # No thread can finish before it even entered.
        for tid, entry in enumerate(entries):
            assert result.finish_times[tid] >= entry
        assert result.start_time == 0.0

    def test_wrong_length_rejected(self, flat2x):
        ex = make_executor(flat2x)
        loop = LoopSpec("l", 10, UniformCost(1e-4), K)
        with pytest.raises(SimulationError):
            ex.run(
                loop, np.full(10, 1e-4), DynamicSpec(1), start_times=[0.0, 1.0]
            )

    def test_late_threads_may_get_nothing(self, flat2x):
        """If the pool drains before a very late thread arrives, it simply
        finds the pool empty — and must still terminate."""
        ex = make_executor(flat2x)
        loop = LoopSpec("l", 20, UniformCost(1e-5), K)
        result = ex.run(
            loop,
            np.full(20, 1e-5),
            DynamicSpec(1),
            start_times=[0.0, 0.0, 0.0, 10.0],
        )
        assert sum(result.iterations) == 20
        assert result.iterations[3] == 0


def chain_program(nowait: bool):
    """Two complementary ramped loops: threads that finish loop A early
    get the expensive front of loop B — nowait overlap pays."""
    return Program(
        name=f"chain-{nowait}",
        suite="test",
        body=(
            LoopSpec("a", 400, RampCost(2e-4, 0.5e-4), K, nowait=nowait),
            LoopSpec("b", 400, RampCost(2e-4, 0.5e-4), K),
        ),
        timesteps=3,
    )


class TestNowaitChaining:
    def test_iterations_conserved(self, flat2x):
        runner = ProgramRunner(flat2x, OmpEnv(schedule="dynamic,1", affinity="BS"))
        result = runner.run(chain_program(nowait=True))
        for lr in result.loop_results:
            assert sum(lr.iterations) == 400

    def test_nowait_never_slower_than_barrier(self, flat2x):
        env = OmpEnv(schedule="static", affinity="BS")
        with_barrier = ProgramRunner(flat2x, env).run(chain_program(False))
        without = ProgramRunner(flat2x, env).run(chain_program(True))
        assert without.completion_time <= with_barrier.completion_time

    def test_nowait_overlaps_imbalance(self, flat2x):
        """Under static on an AMP, loop A's big-core threads finish early;
        with nowait they bite into loop B meanwhile."""
        env = OmpEnv(schedule="dynamic,1", affinity="BS")
        with_barrier = ProgramRunner(flat2x, env).run(chain_program(False))
        without = ProgramRunner(flat2x, env).run(chain_program(True))
        # At minimum the saved barrier costs show up; with dynamic
        # stealing across the seam the gain is real.
        assert without.completion_time < with_barrier.completion_time

    def test_trace_remains_consistent(self, flat2x):
        runner = ProgramRunner(
            flat2x, OmpEnv(schedule="dynamic,1", affinity="BS"), trace=True
        )
        result = runner.run(chain_program(True))
        result.trace.validate_non_overlapping()

    def test_trailing_nowait_joins_at_program_end(self, flat2x):
        program = Program(
            name="tail",
            suite="test",
            body=(LoopSpec("only", 100, RampCost(2e-4, 0.5e-4), K, nowait=True),),
            timesteps=1,
        )
        runner = ProgramRunner(flat2x, OmpEnv(schedule="static", affinity="BS"))
        result = runner.run(program)
        assert result.completion_time == pytest.approx(
            max(result.loop_results[0].finish_times)
        )

    def test_serial_phase_joins_first(self, flat2x):
        from repro.workloads.program import SerialPhase

        program = Program(
            name="join",
            suite="test",
            body=(
                LoopSpec("a", 100, RampCost(2e-4, 0.5e-4), K, nowait=True),
                SerialPhase("glue", 1e-3, K),
            ),
            timesteps=2,
        )
        runner = ProgramRunner(flat2x, OmpEnv(schedule="static", affinity="BS"))
        result = runner.run(program)  # must not crash; serial joins the team
        assert result.serial_time > 0

    def test_aid_schedules_work_across_nowait(self, platform_a):
        for schedule in ("aid_static", "aid_dynamic,1,5", "aid_auto"):
            runner = ProgramRunner(
                platform_a, OmpEnv(schedule=schedule, affinity="BS")
            )
            result = runner.run(chain_program(True))
            for lr in result.loop_results:
                assert sum(lr.iterations) == 400
