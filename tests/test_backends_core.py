"""The execution-backend protocol: registry, selection, capabilities."""

from __future__ import annotations

import pytest

from repro.amp.presets import odroid_xu4
from repro.backends import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendCapabilities,
    ExecutionBackend,
    RealBackend,
    ReferenceBackend,
    VectorizedBackend,
    backend_names,
    create_backend,
    resolve_backend,
    resolve_backend_name,
)
from repro.check.generators import run_loop
from repro.errors import BackendError, ReproError
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.sched.registry import parse_schedule
from repro.workloads.registry import get_program


class TestRegistry:
    def test_builtins_registered(self):
        assert backend_names() == ("real", "reference", "vectorized")

    def test_create_by_name(self):
        assert isinstance(create_backend("reference"), ReferenceBackend)
        assert isinstance(create_backend("vectorized"), VectorizedBackend)
        assert isinstance(create_backend("real"), RealBackend)

    def test_create_unknown_is_typed_error(self):
        with pytest.raises(BackendError, match="registered backends"):
            create_backend("turbo")

    def test_backend_error_is_a_repro_error(self):
        assert issubclass(BackendError, ReproError)


class TestSelection:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend_name(None) == DEFAULT_BACKEND == "reference"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert resolve_backend_name(None) == "vectorized"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorized")
        assert resolve_backend_name("reference") == "reference"

    def test_invalid_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectorised")
        with pytest.raises(BackendError, match=ENV_VAR):
            resolve_backend_name(None)

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert resolve_backend_name(None) == DEFAULT_BACKEND

    def test_resolve_backend_passthrough(self):
        live = ReferenceBackend()
        assert resolve_backend(live) is live

    def test_resolve_backend_builds_from_name(self):
        assert isinstance(resolve_backend("vectorized"), VectorizedBackend)


class TestCapabilities:
    def test_reference_is_the_full_simulator(self):
        caps = ReferenceBackend().capabilities()
        assert caps.simulated and caps.deterministic
        assert caps.supports_faults and caps.supports_trace
        assert caps.supports_check
        assert not caps.batched

    def test_vectorized_batches_and_delegates_the_rest(self):
        caps = VectorizedBackend().capabilities()
        assert caps.simulated and caps.deterministic and caps.batched
        # Faults and tracing are supported — by delegating those runs to
        # reference semantics, so the flags are honestly True.
        assert caps.supports_faults and caps.supports_trace

    def test_real_is_wall_clock(self):
        caps = RealBackend().capabilities()
        assert not caps.simulated
        assert not caps.deterministic

    def test_defaults_are_conservative(self):
        caps = BackendCapabilities()
        assert caps.simulated and caps.deterministic
        assert not (caps.supports_faults or caps.batched)


class TestThreading:
    """The selector flows from every entry point down to the executor."""

    def test_run_loop_accepts_backend_name(self):
        result = run_loop(
            odroid_xu4(), parse_schedule("dynamic,1"), n_iterations=32,
            backend="vectorized",
        )
        assert sum(result.iterations) == 32

    def test_run_loop_accepts_live_instance(self):
        backend = VectorizedBackend()
        result = run_loop(
            odroid_xu4(), parse_schedule("dynamic,1"), n_iterations=32,
            backend=backend,
        )
        assert sum(result.iterations) == 32
        assert isinstance(backend, ExecutionBackend)

    def test_program_runner_invalid_backend_fails_at_construction(self):
        with pytest.raises(BackendError):
            ProgramRunner(odroid_xu4(), OmpEnv(), backend="nope")

    def test_program_runner_invalid_env_fails_at_construction(
        self, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "nope")
        with pytest.raises(BackendError, match=ENV_VAR):
            ProgramRunner(odroid_xu4(), OmpEnv())

    def test_program_runner_backend_matches_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        program = get_program("EP")
        env = OmpEnv(schedule="dynamic,1", affinity="SB")
        ref = ProgramRunner(odroid_xu4(), env, backend="reference")
        vec = ProgramRunner(odroid_xu4(), env, backend="vectorized")
        assert (
            ref.run(program).completion_time
            == vec.run(program).completion_time
        )
