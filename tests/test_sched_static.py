"""Unit tests for static scheduling (block and round-robin)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sched.static import StaticSpec, static_block

from tests.helpers import assert_valid_partition, run_loop


class TestStaticBlock:
    def test_even_split(self):
        blocks = [static_block(100, 4, t) for t in range(4)]
        assert blocks == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_remainder_goes_to_first_threads(self):
        # libgomp: first n % NT threads get one extra iteration.
        blocks = [static_block(10, 4, t) for t in range(4)]
        sizes = [hi - lo for lo, hi in blocks]
        assert sizes == [3, 3, 2, 2]

    def test_partition_is_contiguous_and_complete(self):
        for n, nt in [(1, 1), (7, 3), (100, 8), (5, 8)]:
            blocks = [static_block(n, nt, t) for t in range(nt)]
            cursor = 0
            for lo, hi in blocks:
                assert lo == cursor
                cursor = hi
            assert cursor == n

    def test_more_threads_than_iterations(self):
        blocks = [static_block(3, 8, t) for t in range(8)]
        sizes = [hi - lo for lo, hi in blocks]
        assert sizes == [1, 1, 1, 0, 0, 0, 0, 0]


class TestStaticSpec:
    def test_name(self):
        assert StaticSpec().name == "static"
        assert StaticSpec(chunk=16).name == "static,16"

    def test_invalid_chunk(self):
        with pytest.raises(ConfigError):
            StaticSpec(chunk=0)

    def test_block_execution_partitions(self, platform_a):
        result = run_loop(platform_a, StaticSpec(), n_iterations=100)
        assert_valid_partition(result, 100)
        # Block static: exactly one range per thread with work.
        assert len(result.ranges) == 8

    def test_chunked_execution_partitions(self, platform_a):
        result = run_loop(platform_a, StaticSpec(chunk=7), n_iterations=100)
        assert_valid_partition(result, 100)

    def test_chunked_round_robin_ownership(self, platform_a):
        result = run_loop(platform_a, StaticSpec(chunk=5), n_iterations=200)
        for tid, lo, hi in result.ranges:
            assert (lo // 5) % 8 == tid
            assert hi - lo <= 5

    def test_static_makes_no_pool_dispatches(self, platform_a):
        result = run_loop(platform_a, StaticSpec(), n_iterations=64)
        assert result.dispatches == 0

    def test_big_cores_finish_first_on_amp(self, platform_a, flat2x):
        """The Fig. 1 effect: under an even split big-core threads reach
        the barrier long before small-core threads."""
        result = run_loop(flat2x, StaticSpec(), n_iterations=400)
        # BS: threads 0-1 big, threads 2-3 small, 2x speed difference.
        big = max(result.finish_times[:2])
        small = min(result.finish_times[2:])
        assert big < small
        assert result.imbalance > 0.4

    def test_single_thread_gets_everything(self, platform_a):
        result = run_loop(platform_a, StaticSpec(), n_iterations=50, n_threads=1)
        assert result.iterations == [50]
