"""Unit tests for the invariant catalog on hand-crafted observations."""

from __future__ import annotations

import pytest

from repro.check.invariants import INVARIANTS, run_invariants
from repro.check.recording import CheckContext


def _base_obs(ni: int = 4, nt: int = 2) -> CheckContext:
    """An observation skeleton the individual tests corrupt."""
    obs = CheckContext()
    obs.on_loop_begin(loop_name="t.loop", n_iterations=ni, spec_name="s")
    obs.on_team(
        {
            "n_threads": nt,
            "n_types": 1,
            "cpu_of_tid": list(range(nt)),
            "type_of_tid": [0] * nt,
            "type_counts": [nt],
            "bs_convention": True,
        }
    )
    return obs


def _names(violations) -> set[str]:
    return {v.invariant for v in violations}


class TestCatalog:
    def test_catalog_is_nonempty_and_documented(self):
        assert len(INVARIANTS) >= 10
        for inv in INVARIANTS:
            assert inv.name and inv.description, inv

    def test_empty_observation_is_clean(self):
        assert run_invariants(CheckContext()) == []

    def test_clean_sequential_run_passes(self):
        obs = _base_obs(ni=4)
        obs.on_take(2, 0, (0, 2))
        obs.on_take(2, 2, (2, 4))
        obs.on_take(2, 4, None)
        obs.on_dispatch(0, 0.0, (0, 2))
        obs.on_dispatch(1, 0.0, (2, 4))
        assert run_invariants(obs) == []


class TestWorkShareReplay:
    def test_under_advanced_pointer_is_flagged(self):
        obs = _base_obs(ni=6)
        obs.on_take(3, 0, (0, 3))
        obs.on_take(3, 2, (2, 5))  # pointer should be 3, not 2
        assert "workshare-replay" in _names(run_invariants(obs))

    def test_unclamped_grant_is_flagged(self):
        obs = _base_obs(ni=4)
        obs.on_take(3, 2, (2, 5))  # hi must clamp to 4
        assert "workshare-replay" in _names(run_invariants(obs))

    def test_out_of_order_real_thread_takes_are_fine(self):
        # Under real threads the append order of the take log can differ
        # from the atomic's serialization; replay must sort by `before`.
        obs = _base_obs(ni=4)
        obs.on_take(2, 2, (2, 4))
        obs.on_take(2, 0, (0, 2))
        obs.on_dispatch(0, 0.0, (2, 4))
        obs.on_dispatch(1, 0.0, (0, 2))
        assert run_invariants(obs) == []


class TestExactOnce:
    def test_duplicate_iteration_is_flagged(self):
        obs = _base_obs(ni=4)
        obs.on_take(2, 0, (0, 2))
        obs.on_take(2, 2, (2, 4))
        obs.on_dispatch(0, 0.0, (0, 2))
        obs.on_dispatch(1, 0.0, (1, 3))  # 1 and 2 executed twice
        names = _names(run_invariants(obs))
        assert "exact-once" in names

    def test_missing_iteration_is_flagged(self):
        obs = _base_obs(ni=4)
        obs.on_take(4, 0, (0, 4))
        obs.on_dispatch(0, 0.0, (0, 3))  # iteration 3 never executed
        assert "exact-once" in _names(run_invariants(obs))


class TestClockMonotone:
    def test_backwards_clock_is_flagged(self):
        obs = _base_obs(ni=4)
        obs.on_take(2, 0, (0, 2))
        obs.on_take(2, 2, (2, 4))
        obs.on_dispatch(0, 1.0, (0, 2))
        obs.on_dispatch(0, 0.5, (2, 4))  # same tid, time went backwards
        assert "clock-monotone" in _names(run_invariants(obs))

    def test_interleaved_tids_may_overlap_in_time(self):
        obs = _base_obs(ni=4)
        obs.on_take(2, 0, (0, 2))
        obs.on_take(2, 2, (2, 4))
        obs.on_dispatch(0, 1.0, (0, 2))
        obs.on_dispatch(1, 0.5, (2, 4))  # different tid: fine
        assert run_invariants(obs) == []


class TestStateMachine:
    # Recorded state events are transition *targets*: threads start in
    # the implicit START state, which is never re-entered.
    @pytest.mark.parametrize(
        "scheduler,bad",
        [
            ("aid_static", ["DRAIN"]),
            ("aid_dynamic", ["AID"]),
            ("aid_steal", ["SAMPLING", "AID"]),
        ],
    )
    def test_illegal_transition_is_flagged(self, scheduler, bad):
        obs = _base_obs()
        for state in bad:
            obs.on_state(0, state, scheduler)
        assert "state-machine" in _names(run_invariants(obs))

    def test_legal_aid_static_walk_passes(self):
        obs = _base_obs()
        for state in ["SAMPLING", "SAMPLING_WAIT", "AID", "DRAIN", "DONE"]:
            obs.on_state(0, state, "aid_static")
        assert "state-machine" not in _names(run_invariants(obs))

    def test_non_done_final_state_flagged_when_result_present(self):
        obs = _base_obs()
        obs.on_state(0, "SAMPLING", "aid_static")
        obs.on_loop_end(object())
        assert "state-machine" in _names(run_invariants(obs))


class TestDispatchPoolConsistency:
    def test_dispatch_without_pool_removal_is_flagged(self):
        obs = _base_obs(ni=4)
        obs.on_take(2, 0, (0, 2))
        obs.on_dispatch(0, 0.0, (0, 2))
        obs.on_dispatch(1, 0.0, (2, 4))  # never came out of the pool
        assert "dispatch-pool-consistency" in _names(run_invariants(obs))


class TestViolationRendering:
    def test_render_carries_invariant_tid_and_seq(self):
        obs = _base_obs(ni=4)
        obs.on_take(2, 0, (0, 2))
        obs.on_take(2, 2, (2, 4))
        obs.on_dispatch(3, 1.0, (0, 2))
        obs.on_dispatch(3, 0.5, (2, 4))
        violations = run_invariants(obs)
        assert violations
        rendered = [v.render() for v in violations]
        assert any("clock-monotone" in r and "tid=3" in r for r in rendered)

    def test_violation_flood_is_capped_per_invariant(self):
        obs = _base_obs(ni=100)
        obs.on_take(100, 0, (0, 100))
        for i in range(50):  # 50 duplicate dispatches
            obs.on_dispatch(0, float(i), (i, i + 1))
            obs.on_dispatch(0, float(i), (i, i + 1))
        per_invariant: dict[str, int] = {}
        for v in run_invariants(obs):
            per_invariant[v.invariant] = per_invariant.get(v.invariant, 0) + 1
        assert all(count <= 6 for count in per_invariant.values()), per_invariant
