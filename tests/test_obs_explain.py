"""The makespan "explain" engine: pairwise critical-path diffs, fault-
window attribution, the throttle A/B acceptance, and the report CLI
surface (critpath/explain subcommands)."""

import copy
import json

import pytest

from repro.errors import ObsError
from repro.experiments.resilience import throttle_ab_snapshots
from repro.obs import Observability, SpanRecorder
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    explain,
    explain_pair,
    format_explain,
)
from repro.obs.report import main as report_main
from repro.obs.snapshot import build_snapshot
from repro.sched.registry import parse_schedule
from repro.workloads.registry import get_program  # noqa: F401

from .helpers import preset_platform, run_loop


@pytest.fixture(scope="module")
def ab_pair():
    """The PR-5 throttle A/B as span-bearing snapshots (module-cached —
    the scenario is deterministic)."""
    return throttle_ab_snapshots(n_iterations=1024)


def traced_snapshot(schedule: str, **kw):
    obs = Observability(spans=SpanRecorder(context="test"))
    run_loop(
        preset_platform("odroid_xu4"), parse_schedule(schedule), obs=obs,
        **kw
    )
    return build_snapshot(obs, meta={})


class TestExplainPair:
    def test_identical_docs_have_zero_delta_and_no_contributors(self):
        snap = traced_snapshot("aid_hybrid")
        report = explain_pair(snap["spans"], copy.deepcopy(snap["spans"]))
        assert report["schema"] == EXPLAIN_SCHEMA
        assert report["makespan_delta"] == 0.0
        assert report["contributors"] == []

    def test_contributor_deltas_are_consistent(self, ab_pair):
        snap_a, snap_b = ab_pair
        report = explain_pair(snap_a["spans"], snap_b["spans"])
        assert report["makespan_after"] > report["makespan_before"]
        for c in report["contributors"]:
            assert c["kind"] in ("category", "fault-window")
            assert c["delta"] == pytest.approx(c["after"] - c["before"])
        # Category deltas alone telescope to the makespan delta.
        cat_delta = sum(
            c["delta"] for c in report["contributors"]
            if c["kind"] == "category"
        )
        assert cat_delta == pytest.approx(
            report["makespan_delta"], abs=1e-9
        )

    def test_acceptance_throttle_window_is_the_top_contributor(
        self, ab_pair
    ):
        """Acceptance: `report explain` on the throttled vs unthrottled
        resilience pair names the throttle window as the largest
        makespan contributor."""
        snap_a, snap_b = ab_pair
        report = explain_pair(snap_a["spans"], snap_b["spans"])
        top = report["contributors"][0]
        assert top["kind"] == "fault-window"
        assert "throttle" in top["name"]
        assert top["delta"] > 0.0

    def test_format_lists_ranked_contributors(self, ab_pair):
        snap_a, snap_b = ab_pair
        report = explain(snap_a, snap_b)
        text = format_explain(report)
        assert "makespan:" in text
        assert "[fault-window] throttle" in text
        # --top truncates.
        assert len(format_explain(report, top=1).splitlines()) < len(
            text.splitlines()
        )


class TestExplainSnapshots:
    def test_single_run_snapshots_pair_positionally(self, ab_pair):
        snap_a, snap_b = ab_pair
        report = explain(snap_a, snap_b)
        pairs = report.get("pairs") or [report]
        assert len(pairs) == 1
        assert pairs[0]["contributors"]

    def test_merged_snapshots_pair_by_label(self):
        snap = traced_snapshot("aid_hybrid")
        doc = snap["spans"]
        merged = copy.deepcopy(snap)
        merged["spans"] = [
            {"labels": {"program": "EP"}, "doc": doc},
            {"labels": {"program": "IS"}, "doc": doc},
        ]
        report = explain(merged, copy.deepcopy(merged))
        assert [p["pair"] for p in report["pairs"]] == [
            ["EP", "EP"], ["IS", "IS"]
        ]
        assert all(p["makespan_delta"] == 0.0 for p in report["pairs"])

    def test_job_filter_restricts_the_pairs(self):
        snap = traced_snapshot("aid_hybrid")
        doc = snap["spans"]
        merged = copy.deepcopy(snap)
        merged["spans"] = [
            {"labels": {"program": "EP"}, "doc": doc},
            {"labels": {"program": "IS"}, "doc": doc},
        ]
        report = explain(merged, copy.deepcopy(merged), job="IS")
        assert [p["pair"] for p in report["pairs"]] == [["IS", "IS"]]

    def test_span_free_snapshots_raise_obs_error(self):
        with pytest.raises(ObsError):
            explain({"schema": "repro.obs.snapshot/v1"}, {"schema": "x"})


class TestReportCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_critpath_subcommand_prints_and_writes_json(
        self, tmp_path, capsys
    ):
        snap = traced_snapshot("aid_hybrid")
        src = self.write(tmp_path, "snap.json", snap)
        out = tmp_path / "critpath.json"
        assert report_main(["critpath", src, "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "critical path:" in text
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.obs.critpath/v1"
        assert payload["paths"]

    def test_explain_subcommand_names_the_throttle_window(
        self, tmp_path, capsys, ab_pair
    ):
        snap_a, snap_b = ab_pair
        a = self.write(tmp_path, "a.json", snap_a)
        b = self.write(tmp_path, "b.json", snap_b)
        out = tmp_path / "explain.json"
        assert report_main(["explain", a, b, "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "[fault-window] throttle" in text
        payload = json.loads(out.read_text())
        pairs = payload.get("pairs") or [payload]
        top = pairs[0]["contributors"][0]
        assert top["kind"] == "fault-window" and "throttle" in top["name"]

    def test_diff_subcommand_honours_the_critpath_tolerance(
        self, tmp_path, capsys
    ):
        snap = traced_snapshot("aid_hybrid")
        slower = copy.deepcopy(snap)
        for s in slower["spans"]["spans"]:
            s["t0"] *= 1.02
            s["t1"] *= 1.02
        a = self.write(tmp_path, "a.json", snap)
        b = self.write(tmp_path, "b.json", slower)
        # 2% growth stays within the default 5% tolerance.
        assert report_main(
            ["diff", a, b, "--critpath-tol", "0.05", "--fail-on-regression"]
        ) == 0
        capsys.readouterr()
        # The same growth regresses under a 1% tolerance.
        assert report_main(
            ["diff", a, b, "--critpath-tol", "0.01", "--fail-on-regression"]
        ) == 1
        assert "critical-path" in capsys.readouterr().out
