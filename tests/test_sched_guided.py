"""Unit tests for guided scheduling."""

import pytest

from repro.errors import ConfigError
from repro.sched.guided import GuidedSpec

from tests.helpers import assert_valid_partition, run_loop


def test_name_and_validation():
    assert GuidedSpec().name == "guided,1"
    assert GuidedSpec(chunk=8).name == "guided,8"
    with pytest.raises(ConfigError):
        GuidedSpec(chunk=-1)


def test_partitions_iterations(platform_a):
    for chunk in (1, 4, 32):
        result = run_loop(platform_a, GuidedSpec(chunk), n_iterations=513)
        assert_valid_partition(result, 513)


def test_chunks_decrease(platform_a):
    result = run_loop(platform_a, GuidedSpec(1), n_iterations=800)
    sizes = [hi - lo for _, lo, hi in result.ranges]
    # First grab is remaining/NT = 100; later grabs shrink.
    assert sizes[0] == 100
    assert sizes[0] == max(sizes)
    assert sizes[-1] <= sizes[0]


def test_minimum_chunk_respected(platform_a):
    result = run_loop(platform_a, GuidedSpec(16), n_iterations=640)
    sizes = [hi - lo for _, lo, hi in result.ranges]
    # All but the final (clamped) grab are at least the minimum chunk.
    assert all(s >= 16 for s in sizes[:-1])


def test_far_fewer_dispatches_than_dynamic(platform_a):
    from repro.sched.dynamic import DynamicSpec

    guided = run_loop(platform_a, GuidedSpec(1), n_iterations=1000)
    dynamic = run_loop(platform_a, DynamicSpec(1), n_iterations=1000)
    assert guided.dispatches < dynamic.dispatches / 5


def test_small_core_with_large_early_chunk_straggles(flat2x):
    """The AMP pathology: whoever arrives first gets remaining/NT
    iterations; if that is a small core, it becomes the critical path."""
    from repro.perfmodel.overhead import OverheadModel

    # Wake order is by CPU number -> small cores (CPUs 0-1) first.
    overhead = OverheadModel(
        dispatch_cost=0.0,
        loop_start_cost=0.0,
        barrier_cost=0.0,
        timestamp_cost=0.0,
        atomic_contention=0.0,
        atomic_service=0.0,
        wake_stagger=1e-6,
        wake_jitter=0.0,
    )
    result = run_loop(
        flat2x, GuidedSpec(1), n_iterations=400, overhead=overhead
    )
    # flat2x BS: threads 2-3 are the small-core threads; one of them must
    # have grabbed the largest (first) chunk.
    first_tid = result.ranges[0][0]
    assert first_tid in (2, 3)
    assert result.finish_times[first_tid] == max(result.finish_times)
