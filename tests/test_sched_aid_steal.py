"""Unit tests for AID-steal (work-sharing + work-stealing extension)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sched import parse_schedule
from repro.sched.aid_static import AidStaticSpec
from repro.sched.aid_steal import AidStealSpec

from tests.helpers import assert_valid_partition, run_loop


def test_name_and_validation():
    assert AidStealSpec().name == "aid_steal,8"
    assert AidStealSpec(serve_chunk=16).name == "aid_steal,16"
    assert AidStealSpec(use_offline_sf=True).name == "aid_steal,8(offline-SF)"
    assert AidStealSpec().requires_bs_mapping
    assert AidStealSpec(use_offline_sf=True).needs_offline_sf
    for bad in (
        dict(sampling_chunk=0),
        dict(serve_chunk=0),
        dict(min_steal=0),
    ):
        with pytest.raises(ConfigError):
            AidStealSpec(**bad)


def test_registry():
    assert parse_schedule("aid_steal") == AidStealSpec()
    assert parse_schedule("aid_steal,16") == AidStealSpec(serve_chunk=16)


def test_partitions_iterations(platform_a):
    rng = np.random.default_rng(0)
    for costs in (None, rng.lognormal(-9, 0.8, 913)):
        result = run_loop(platform_a, AidStealSpec(), n_iterations=913, costs=costs)
        assert_valid_partition(result, 913)


def test_tiny_loops_terminate(flat2x):
    for n in (1, 2, 7, 8, 9, 17):
        result = run_loop(flat2x, AidStealSpec(), n_iterations=n)
        assert sum(result.iterations) == n


def test_single_pool_access_after_sampling(flat2x):
    """AID-steal's signature: sampling chunks + one take_all; local
    serving touches no shared pool."""
    result = run_loop(flat2x, AidStealSpec(), n_iterations=2000)
    # 4 sampling takes + a few wait steals + one take_all.
    assert result.dispatches <= 2 * 4 + 1


def test_no_steals_needed_on_uniform_flat(flat2x):
    result = run_loop(flat2x, AidStealSpec(), n_iterations=1000)
    assert result.extra["scheduler"].steals == 0
    big = sum(result.iterations[:2])
    small = sum(result.iterations[2:])
    assert big / small == pytest.approx(2.0, rel=0.1)


def test_stealing_repairs_drift(flat2x):
    """Descending costs make the sampled SF unrepresentative; steal-half
    repairs it where AID-static straggles (the Sec. 4.3 promise)."""
    costs = np.linspace(2.0, 0.5, 1200) * 1e-4
    aid = run_loop(flat2x, AidStaticSpec(), n_iterations=1200, costs=costs)
    steal = run_loop(flat2x, AidStealSpec(), n_iterations=1200, costs=costs)
    assert steal.extra["scheduler"].steals > 0
    assert steal.end_time < aid.end_time
    assert steal.imbalance < aid.imbalance / 3


def test_offline_variant(flat2x):
    result = run_loop(
        flat2x,
        AidStealSpec(use_offline_sf=True),
        n_iterations=600,
        offline_sf={0: 1.0, 1: 2.0},
    )
    assert_valid_partition(result, 600)
    assert result.dispatches == 1  # take_all only: no sampling at all
    assert result.estimated_sf is None


def test_serve_chunk_controls_dispatch_count(flat2x):
    fine = run_loop(flat2x, AidStealSpec(serve_chunk=2), n_iterations=1000)
    coarse = run_loop(flat2x, AidStealSpec(serve_chunk=64), n_iterations=1000)
    assert coarse.scheduler_calls < fine.scheduler_calls


def test_three_core_types(tri_platform):
    result = run_loop(tri_platform, AidStealSpec(), n_iterations=900)
    assert_valid_partition(result, 900)
    assert min(result.iterations[0:2]) > max(result.iterations[4:6])


def test_real_threads():
    from repro.exec_real import ThreadTeam

    team = ThreadTeam(4)
    counter = np.zeros(1500, dtype=np.int64)

    def body(tid, lo, hi):
        counter[lo:hi] += 1

    team.parallel_for(1500, body, AidStealSpec())
    assert counter.sum() == 1500 and counter.max() == 1
