"""Tests for the real numpy kernels."""

import numpy as np
import pytest

from repro.errors import WorkloadError

from repro.kernels import (
    assign_clusters,
    bfs_levels,
    black_scholes_price,
    ep_gaussian_pairs,
    hotspot_step,
    jacobi_step,
    kmeans_step,
    make_random_graph,
    make_sparse_system,
    spmv_rows,
    srad_coefficients,
)
from repro.kernels.graph import expand_frontier


class TestBlackScholes:
    def test_known_value(self):
        # Textbook case: S=100, K=100, r=5%, sigma=20%, T=1 -> C ~ 10.45.
        price = black_scholes_price(
            np.array([100.0]), np.array([100.0]), 0.05,
            np.array([0.2]), np.array([1.0]),
        )
        assert price[0] == pytest.approx(10.4506, abs=1e-3)

    def test_put_call_parity(self):
        s, k, r, v, t = (
            np.array([105.0]), np.array([95.0]), 0.03,
            np.array([0.25]), np.array([0.5]),
        )
        call = black_scholes_price(s, k, r, v, t, call=True)
        put = black_scholes_price(s, k, r, v, t, call=False)
        parity = call - put
        assert parity[0] == pytest.approx(
            s[0] - k[0] * np.exp(-r * t[0]), abs=1e-9
        )

    def test_vectorized(self):
        n = 1000
        rng = np.random.default_rng(0)
        prices = black_scholes_price(
            rng.uniform(50, 150, n), rng.uniform(50, 150, n), 0.02,
            rng.uniform(0.1, 0.6, n), rng.uniform(0.1, 2.0, n),
        )
        assert prices.shape == (n,)
        assert np.all(prices >= 0)

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            black_scholes_price(
                np.array([100.0]), np.array([100.0]), 0.05,
                np.array([-0.1]), np.array([1.0]),
            )


class TestEP:
    def test_deterministic(self):
        a = ep_gaussian_pairs(10_000, seed=1)
        b = ep_gaussian_pairs(10_000, seed=1)
        assert a[0] == b[0]
        np.testing.assert_array_equal(a[1], b[1])

    def test_acceptance_rate_near_pi_over_4(self):
        accepted, _ = ep_gaussian_pairs(200_000, seed=0)
        assert accepted / 200_000 == pytest.approx(np.pi / 4, abs=0.01)

    def test_counts_sum_to_accepted(self):
        accepted, counts = ep_gaussian_pairs(50_000, seed=3)
        assert counts.sum() == accepted

    def test_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            ep_gaussian_pairs(0, seed=0)


class TestCG:
    def test_spmv_chunks_compose(self):
        a, b = make_sparse_system(200, density=0.05, seed=1)
        x = np.linspace(0, 1, 200)
        full = a @ x
        parts = np.concatenate(
            [spmv_rows(a, x, lo, lo + 50) for lo in range(0, 200, 50)]
        )
        np.testing.assert_allclose(parts, full)

    def test_matrix_is_spd_ish(self):
        a, _ = make_sparse_system(100, seed=0)
        dense = a.toarray()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)
        eigmin = np.linalg.eigvalsh(dense).min()
        assert eigmin > 0

    def test_bad_row_range(self):
        a, _ = make_sparse_system(10)
        with pytest.raises(WorkloadError):
            spmv_rows(a, np.zeros(10), 5, 20)


class TestStencils:
    def test_jacobi_fixed_point(self):
        grid = np.ones((16, 16))
        out = jacobi_step(grid, 0, 16)
        np.testing.assert_allclose(out, grid)

    def test_jacobi_chunks_compose(self):
        rng = np.random.default_rng(0)
        grid = rng.random((32, 32))
        full = jacobi_step(grid, 0, 32)
        parts = np.vstack([jacobi_step(grid, lo, lo + 8) for lo in range(0, 32, 8)])
        np.testing.assert_allclose(parts, full)

    def test_hotspot_adds_power(self):
        temp = np.zeros((8, 8))
        power = np.ones((8, 8))
        out = hotspot_step(temp, power, 0, 8, cap=0.5)
        np.testing.assert_allclose(out, 0.5 * np.ones((8, 8)))

    def test_hotspot_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            hotspot_step(np.zeros((4, 4)), np.zeros((5, 5)), 0, 4)


class TestSrad:
    def test_coefficients_in_unit_interval(self):
        rng = np.random.default_rng(0)
        img = rng.uniform(0.5, 2.0, (32, 32))
        c = srad_coefficients(img, 0, 32)
        assert c.shape == (32, 32)
        assert np.all(c >= 0) and np.all(c <= 1)

    def test_uniform_image_diffuses_freely(self):
        img = np.full((16, 16), 3.0)
        c = srad_coefficients(img, 0, 16)
        assert np.all(c > 0.9)  # no edges -> strong diffusion

    def test_rejects_nonpositive_image(self):
        with pytest.raises(WorkloadError):
            srad_coefficients(np.zeros((4, 4)), 0, 4)


class TestGraph:
    def test_graph_connected(self):
        import networkx as nx

        g = make_random_graph(200, avg_degree=3.0, seed=2)
        assert nx.is_connected(g)

    def test_bfs_levels_cover_graph(self):
        g = make_random_graph(100, seed=1)
        levels = bfs_levels(g, 0)
        assert set(levels) == set(g.nodes)
        assert levels[0] == 0

    def test_frontier_expansion_matches_reference(self):
        g = make_random_graph(150, seed=5)
        ref = bfs_levels(g, 0)
        visited = {0}
        frontier = [0]
        level = 0
        while frontier:
            for node in frontier:
                assert ref[node] == level
            nxt = expand_frontier(g, frontier, visited)
            visited.update(nxt)
            frontier = nxt
            level += 1
        assert visited == set(g.nodes)

    def test_bad_source(self):
        g = make_random_graph(10)
        with pytest.raises(WorkloadError):
            bfs_levels(g, 99)


class TestKmeans:
    def test_assignment_is_nearest(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0], [0.2, 0.1]])
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels = assign_clusters(points, centers, 0, 3)
        np.testing.assert_array_equal(labels, [0, 1, 0])

    def test_chunks_compose(self):
        rng = np.random.default_rng(0)
        points = rng.random((100, 3))
        centers = rng.random((5, 3))
        full = assign_clusters(points, centers, 0, 100)
        parts = np.concatenate(
            [assign_clusters(points, centers, lo, lo + 25) for lo in range(0, 100, 25)]
        )
        np.testing.assert_array_equal(parts, full)

    def test_step_reduces_inertia(self):
        rng = np.random.default_rng(1)
        points = np.vstack(
            [rng.normal(0, 0.2, (50, 2)), rng.normal(3, 0.2, (50, 2))]
        )
        centers = np.array([[1.0, 1.0], [2.0, 2.0]])

        def inertia(c, labels):
            return sum(
                np.sum((points[labels == k] - c[k]) ** 2) for k in range(len(c))
            )

        labels0, centers1 = kmeans_step(points, centers)
        labels1, _ = kmeans_step(points, centers1)
        assert inertia(centers1, labels1) <= inertia(centers, labels0)

    def test_dimension_mismatch(self):
        with pytest.raises(WorkloadError):
            assign_clusters(np.zeros((5, 2)), np.zeros((2, 3)), 0, 5)
