"""Tests for the deterministic chaos harness: plan round-trips, engine
firing semantics, fault-injecting cache wrapper, crash-atomic cache
writes, and the byte-equality / exact-quarantine properties."""

import errno
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import FleetError
from repro.fleet.cache import ResultCache
from repro.fleet.chaos import (
    CHAOS_SCHEMA,
    CacheFault,
    ChaosCache,
    ChaosEngine,
    ChaosPlan,
    PoolBreak,
    WorkerKill,
    WorkerStall,
    chaos_specs,
    fault_free_baseline,
    random_plan,
    run_chaos_case,
    run_chaos_check,
)
from repro.fleet.scrub import scrub_cache

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def specs():
    return chaos_specs()


@pytest.fixture(scope="module")
def baseline(specs):
    return fault_free_baseline(specs)


@pytest.fixture(scope="module")
def one_result(specs):
    return specs[0].execute()


# -- plan model ------------------------------------------------------------


def test_plan_json_round_trip(specs, tmp_path):
    keys = [s.key for s in specs]
    plan = random_plan(11, keys, poison=1)
    doc = json.loads(plan.to_json())
    assert doc["schema"] == CHAOS_SCHEMA
    assert ChaosPlan.from_payload(doc) == plan
    path = plan.save(tmp_path / "plan.json")
    assert ChaosPlan.load(path) == plan


def test_random_plan_is_seed_deterministic(specs):
    keys = [s.key for s in specs]
    assert random_plan(5, keys) == random_plan(5, keys)
    assert any(
        random_plan(s, keys) != random_plan(s + 1, keys) for s in range(5)
    )


def test_random_plan_poison_marks_distinct_digests(specs):
    keys = [s.key for s in specs]
    plan = random_plan(3, keys, poison=2)
    assert len(plan.poison_digests(keys)) == 2
    # poison=0 plans are recoverable by construction: at most one
    # pool-breaking event per digest, below the default threshold of 2.
    for seed in range(20):
        benign = random_plan(seed, keys)
        assert not benign.poison_digests(keys)
        per_digest = {}
        for e in benign.events:
            if e.kind in ("kill", "stall"):
                per_digest[e.job] = per_digest.get(e.job, 0) + 1
        assert all(n <= 1 for n in per_digest.values())


def test_plan_validation_rejects_malformed_events():
    with pytest.raises(FleetError):
        ChaosPlan(mode="yolo").validate()
    with pytest.raises(FleetError):
        WorkerKill(job="", times=1).validate()
    with pytest.raises(FleetError):
        WorkerStall(job="*", seconds=0.0).validate()
    with pytest.raises(FleetError):
        WorkerStall(job="*", seconds=1.0, times=None).validate()
    with pytest.raises(FleetError):
        CacheFault(op="munge", job="*").validate()
    with pytest.raises(FleetError):
        CacheFault(op="put", job="*", errno_name="EWAT").validate()
    with pytest.raises(FleetError):
        CacheFault(op="get", job="*", torn=True).validate()
    with pytest.raises(FleetError):
        PoolBreak(times=0).validate()


# -- engine firing semantics -----------------------------------------------


def test_bounded_events_fire_exactly_n_times():
    plan = ChaosPlan(events=(PoolBreak(job="*", times=2),))
    engine = ChaosEngine(plan)
    fires = [engine.pool_break("ab" * 32) for _ in range(4)]
    assert fires == [True, True, False, False]


def test_marker_files_share_firings_across_engines(tmp_path):
    """Two engines over one state dir model coordinator + rebuilt worker
    processes: a times=1 event fires once *total*."""
    plan = ChaosPlan(events=(WorkerKill(job="*", times=1),))
    a = ChaosEngine(plan, state_dir=tmp_path / "state")
    b = ChaosEngine(plan, state_dir=tmp_path / "state")
    assert a.worker_action("ab" * 32) == ("kill", 0.0)
    assert b.worker_action("ab" * 32) is None
    assert a.worker_action("ab" * 32) is None


def test_unbounded_kill_fires_forever():
    plan = ChaosPlan(events=(WorkerKill(job="ab", times=None),))
    engine = ChaosEngine(plan)
    for _ in range(5):
        assert engine.worker_action("ab" * 32) == ("kill", 0.0)
    assert engine.worker_action("cd" * 32) is None  # selector mismatch


# -- fault-injecting cache wrapper -----------------------------------------


def test_chaos_cache_injects_get_fault(tmp_path):
    plan = ChaosPlan(
        events=(CacheFault(op="get", job="*", errno_name="EACCES", times=1),)
    )
    cache = ChaosCache(ResultCache(tmp_path / "cache"), ChaosEngine(plan))
    with pytest.raises(OSError) as exc_info:
        cache.get("ab" * 32)
    assert exc_info.value.errno == errno.EACCES
    assert cache.get("ab" * 32) is None  # fault consumed; normal miss


def test_torn_put_leaves_garbage_the_read_path_absorbs(
    tmp_path, one_result
):
    plan = ChaosPlan(
        events=(CacheFault(op="put", job="*", torn=True, times=1),)
    )
    inner = ResultCache(tmp_path / "cache")
    cache = ChaosCache(inner, ChaosEngine(plan))
    with pytest.raises(OSError):
        cache.put(one_result)
    # Truncated garbage sits at the entry path; the read path
    # quarantines it instead of crashing, and a retry put heals it.
    assert inner.path_for(one_result.digest).exists()
    assert inner.get(one_result.digest) is None
    cache.put(one_result)
    assert inner.get(one_result.digest) == one_result


# -- crash-atomic cache writes (satellite 1) --------------------------------


def test_kill_during_put_never_leaves_a_truncated_entry(tmp_path):
    """A put killed between the tmp-file write and the atomic rename
    leaves only a ``tmp-<pid>`` sibling — never a truncated entry under
    the final name — and the scrub prunes the leftover."""
    cache_dir = tmp_path / "cache"
    child = (
        "import os, sys\n"
        "from repro.fleet.cache import ResultCache\n"
        "from repro.fleet.chaos import chaos_specs\n"
        "spec = chaos_specs()[0]\n"
        "result = spec.execute()\n"
        "cache = ResultCache(sys.argv[1])\n"
        "cache.put(result)  # prime layout/manifest/index on disk\n"
        "os.unlink(cache.path_for(spec.key))\n"
        "os.replace = lambda src, dst: os._exit(7)\n"
        "cache.put(result)  # dies between tmp write and atomic rename\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", child, str(cache_dir)],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 7, proc.stderr
    spec = chaos_specs()[0]
    cache = ResultCache(cache_dir)
    assert not cache.path_for(spec.key).exists()
    leftovers = list(cache_dir.glob("??/*.tmp-*"))
    assert leftovers, "the killed put must leave its tmp sibling behind"
    assert cache.get(spec.key) is None
    report = scrub_cache(cache)
    assert report.quarantined == 0
    assert report.pruned >= 1
    assert any(f.reason == "tmp-leftover" for f in report.findings)
    assert not list(cache_dir.glob("??/*.tmp-*"))
    # The slot is fully healed: a fresh put round-trips.
    result = spec.execute()
    cache.put(result)
    assert cache.get(spec.key) == result


# -- the chaos properties --------------------------------------------------


def test_seeded_plans_are_byte_identical_to_fault_free_run(tmp_path):
    """The acceptance property: 50 seeded sim-mode plans, every one
    byte-identical to the fault-free jobs=1 run."""
    code, report = run_chaos_check(
        plans=50, seed=0, poison=0, mode="sim", dispatcher="local",
        jobs=2, workdir=tmp_path, emit=lambda *_: None,
    )
    failures = [c for c in report["cases"] if not c["ok"]]
    assert code == 0 and not failures, failures
    assert len(report["cases"]) == 50


def test_poison_plans_quarantine_exactly_the_poison_digests(tmp_path):
    code, report = run_chaos_check(
        plans=5, seed=100, poison=1, mode="sim", dispatcher="local",
        jobs=2, workdir=tmp_path, emit=lambda *_: None,
    )
    assert code == 0
    for case in report["cases"]:
        assert case["ok"], case["mismatches"]
        assert len(case["expected_poison"]) == 1
        assert case["actual_poison"] == case["expected_poison"]


def test_real_mode_sigkill_and_stall_recover(specs, baseline, tmp_path):
    """A genuine SIGKILLed worker plus a stall past the deadline: the
    process pool rebuilds and the sweep stays byte-identical."""
    keys = [s.key for s in specs]
    plan = ChaosPlan(
        events=(
            WorkerKill(job=keys[1], times=1),
            WorkerStall(job=keys[2], seconds=1.0, times=1),
        ),
        seed=7,
        mode="real",
    )
    verdict = run_chaos_case(
        specs, plan, baseline, tmp_path, dispatcher="process", jobs=2,
        timeout=0.4,
    )
    assert verdict["ok"], verdict["mismatches"]
    assert verdict["actual_poison"] == []


def test_real_mode_poison_quarantined(specs, baseline, tmp_path):
    """A job that SIGKILLs its worker on every attempt is quarantined
    even with heuristic real-pool attribution (submission index 0 is
    always the lowest in-flight index, so every charge is exact)."""
    keys = [s.key for s in specs]
    plan = ChaosPlan(
        events=(WorkerKill(job=keys[0], times=None),), seed=8, mode="real"
    )
    verdict = run_chaos_case(
        specs, plan, baseline, tmp_path, dispatcher="process", jobs=2,
        timeout=0.4, poison_threshold=2,
    )
    assert verdict["ok"], verdict["mismatches"]
    assert verdict["actual_poison"] == [keys[0]]
    assert verdict["fleet"]["jobs_poisoned_total"] == 1


# -- CLI -------------------------------------------------------------------


def test_chaos_cli_smoke(tmp_path, capsys):
    from repro.fleet.cli import main

    report_path = tmp_path / "chaos-report.json"
    assert main([
        "chaos", "--plans", "2", "--jobs", "2",
        "--json", str(report_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos seed 0: ok" in out and "chaos seed 1: ok" in out
    doc = json.loads(report_path.read_text(encoding="utf-8"))
    assert doc["schema"] == "repro.fleet.chaos-report/v1"
    assert len(doc["cases"]) == 2 and all(c["ok"] for c in doc["cases"])
