"""Exporter tests: Chrome trace round-trip, snapshot determinism,
zero-perturbation of the null sink, and the report CLI."""

import json

import numpy as np
import pytest

from repro.amp.presets import dual_speed_platform
from repro.errors import ObsError
from repro.obs import Observability
from repro.obs.chrome_trace import export_chrome_trace, to_trace_events
from repro.obs.report import main as report_main
from repro.obs.snapshot import (
    SCHEMA,
    build_snapshot,
    completion_payload,
    load_snapshot,
    to_json,
    write_snapshot,
)
from repro.sched.aid_hybrid import AidHybridSpec
from repro.tracing.trace import Interval, ThreadState, Timeline, TraceRecorder

from tests.helpers import run_loop

PLATFORM = dual_speed_platform(2, 4, big_speedup=3.0)


def seeded_run(seed=13, n_iterations=400, obs=None, trace=None):
    rng = np.random.default_rng(seed)
    costs = rng.uniform(5e-5, 2e-4, n_iterations)
    return run_loop(
        PLATFORM,
        AidHybridSpec(),
        n_iterations=n_iterations,
        costs=costs,
        obs=obs,
        trace=trace,
    )


# -- Chrome trace -----------------------------------------------------------


class TestChromeTrace:
    def test_round_trip_parses_and_has_complete_events(self):
        obs = Observability()
        tr = TraceRecorder()
        seeded_run(obs=obs, trace=tr)
        text = export_chrome_trace(tr, decisions=obs.decisions.records)
        doc = json.loads(text)  # byte-for-byte valid JSON
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert xs and metas and instants
        for e in xs:
            assert e["dur"] >= 0 and e["ts"] >= 0
            assert e["pid"] == 1
        # Complete events are time-sorted, as the viewers expect.
        assert [e["ts"] for e in xs] == sorted(e["ts"] for e in xs)

    def test_decision_instants_carry_args(self):
        obs = Observability()
        tr = TraceRecorder()
        seeded_run(obs=obs, trace=tr)
        events = to_trace_events(tr, decisions=obs.decisions.records)
        pubs = [
            e for e in events
            if e["ph"] == "i" and e["name"].endswith("publish_targets")
        ]
        assert len(pubs) == 1
        assert pubs[0]["cat"] == "decision"
        assert "sf" in pubs[0]["args"]
        assert "t" not in pubs[0]["args"]  # core fields not duplicated

    def test_trace_times_are_microseconds(self):
        tr = TraceRecorder()
        tr.record(0, ThreadState.COMPUTE, 0.5, 1.0)
        (event,) = [
            e for e in to_trace_events(tr) if e["ph"] == "X"
        ]
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.5e6)

    def test_export_accepts_timeline_too(self):
        tr = TraceRecorder()
        tr.record(0, ThreadState.COMPUTE, 0.0, 1.0)
        assert json.loads(export_chrome_trace(tr.timeline())) == json.loads(
            export_chrome_trace(tr)
        )


class TestChromeTraceCounterLanes:
    def test_output_byte_unchanged_without_timeseries(self):
        # Satellite regression gate: adding the counter-lane feature
        # must not move a single byte of the duration-event output when
        # no timeseries is passed (the default).
        obs = Observability()
        tr = TraceRecorder()
        seeded_run(obs=obs, trace=tr)
        legacy = export_chrome_trace(tr, decisions=obs.decisions.records)
        explicit = export_chrome_trace(
            tr, decisions=obs.decisions.records, timeseries=()
        )
        assert legacy == explicit
        assert '"ph":"C"' not in legacy

    def test_busy_series_becomes_a_utilization_counter_lane(self):
        from repro.obs.timeseries import TimeSeries

        tr = TraceRecorder()
        tr.record(0, ThreadState.COMPUTE, 0.0, 2.0)
        ts = TimeSeries(
            "core_utilization", (("core_type", "big"),), mode="busy",
            window=1.0, norm=2.0,
        )
        ts.observe_span(0.0, 1.5)
        events = to_trace_events(tr, timeseries=[ts])
        lanes = [e for e in events if e["ph"] == "C"]
        assert len(lanes) == 2
        assert all(e["cat"] == "timeseries" for e in lanes)
        assert lanes[0]["name"] == "core_utilization{core_type=big}"
        assert lanes[0]["ts"] == pytest.approx(0.0)
        assert lanes[0]["args"]["value"] == pytest.approx(0.5)  # 1s of 2
        assert lanes[1]["ts"] == pytest.approx(1e6)
        assert lanes[1]["args"]["value"] == pytest.approx(0.25)

    def test_serialized_docs_work_like_live_instruments(self):
        from repro.obs.timeseries import TimeSeries

        tr = TraceRecorder()
        tr.record(0, ThreadState.COMPUTE, 0.0, 1.0)
        ts = TimeSeries("rate", (), mode="sample", window=1.0)
        ts.observe(0.5, 4.0)
        live = to_trace_events(tr, timeseries=[ts])
        doc = json.loads(json.dumps(ts.as_dict()))
        serialized = to_trace_events(tr, timeseries=[doc])
        assert live == serialized
        (lane,) = [e for e in live if e["ph"] == "C"]
        assert lane["args"]["value"] == pytest.approx(4.0)  # in-window mean

    def test_instrumented_run_exports_counter_lanes(self):
        obs = Observability()
        tr = TraceRecorder()
        seeded_run(obs=obs, trace=tr)
        snap = obs.registry.snapshot()
        events = to_trace_events(tr, timeseries=snap["timeseries"])
        lanes = {e["name"] for e in events if e["ph"] == "C"}
        assert any(n.startswith("core_utilization") for n in lanes)


class TestChromeTraceEdgeCases:
    """Degenerate inputs must still export valid, viewer-loadable JSON."""

    @staticmethod
    def assert_non_overlapping(events):
        """Per tid, complete events must not overlap in (ts, ts+dur)."""
        by_tid: dict[int, list] = {}
        for e in events:
            if e["ph"] == "X":
                by_tid.setdefault(e["tid"], []).append(e)
        for tid, evs in by_tid.items():
            evs.sort(key=lambda e: e["ts"])
            for a, b in zip(evs, evs[1:]):
                assert a["ts"] + a["dur"] <= b["ts"] + 1e-6, (
                    f"tid {tid}: events overlap"
                )

    def test_empty_timeline_exports_valid_json(self):
        doc = json.loads(export_chrome_trace(Timeline()))
        events = doc["traceEvents"]
        assert [e["ph"] for e in events] == ["M"]  # just process_name
        assert events[0]["args"] == {"name": "repro"}
        assert not [e for e in events if e["ph"] in ("X", "i")]

    def test_single_thread_timeline(self):
        tl = Timeline(intervals=[
            Interval(0, ThreadState.SERIAL, 0.0, 0.5),
            Interval(0, ThreadState.COMPUTE, 0.5, 2.0),
            Interval(0, ThreadState.BARRIER, 2.0, 2.25),
        ])
        doc = json.loads(export_chrome_trace(tl))
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        assert {e["tid"] for e in xs} == {0}
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert "worker-0" in names
        self.assert_non_overlapping(events)

    def test_decisions_only_export(self):
        decisions = [
            {"seq": 0, "t": 0.0, "tid": -1, "loop": "L",
             "scheduler": "aid_static", "event": "publish_targets",
             "sf": {"0": 1.0, "1": 1.7}},
            {"seq": 1, "t": 0.002, "tid": 3, "loop": "L",
             "scheduler": "aid_static", "event": "aid_allotment"},
        ]
        doc = json.loads(export_chrome_trace(Timeline(), decisions=decisions))
        events = doc["traceEvents"]
        assert not [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 2
        # Pre-thread decisions (tid -1) are pinned to track 0.
        assert instants[0]["tid"] == 0
        assert instants[0]["name"] == "aid_static:publish_targets"
        assert instants[1]["tid"] == 3

    def test_real_run_timeline_has_no_overlaps_per_tid(self):
        obs = Observability()
        tr = TraceRecorder()
        seeded_run(obs=obs, trace=tr)
        events = to_trace_events(tr, decisions=obs.decisions.records)
        self.assert_non_overlapping(events)


# -- snapshots ---------------------------------------------------------------


class TestSnapshot:
    def test_write_and_load_round_trip(self, tmp_path):
        obs = Observability()
        seeded_run(obs=obs)
        path = tmp_path / "metrics.json"
        text = write_snapshot(path, obs, meta={"note": "test"})
        doc = load_snapshot(path)
        assert doc["schema"] == SCHEMA
        assert doc["meta"] == {"note": "test"}
        assert to_json(doc) == text
        assert doc["metrics"]["counters"]
        assert doc["decisions"] == obs.decisions.records

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ObsError, match="snapshot"):
            load_snapshot(path)

    def test_two_identical_seeded_runs_snapshot_identically(self):
        texts = []
        for _ in range(2):
            obs = Observability()
            seeded_run(seed=29, obs=obs)
            texts.append(to_json(build_snapshot(obs, meta={"seed": 29})))
        assert texts[0] == texts[1]  # byte-identical

    def test_different_seeds_snapshot_differently(self):
        texts = []
        for seed in (29, 31):
            obs = Observability()
            seeded_run(seed=seed, obs=obs)
            texts.append(to_json(build_snapshot(obs)))
        assert texts[0] != texts[1]

    def test_completion_payload_matches_stats(self):
        from repro.metrics.stats import normalized_performance

        row = completion_payload("dynamic(BS)", "Platform A", 0.5, 1.0)
        assert row["normalized_performance"] == normalized_performance(1.0, 0.5)
        assert row["scheme"] == "dynamic(BS)"
        assert row["completion_time"] == 0.5


# -- null sink perturbs nothing ---------------------------------------------


class TestNullSinkNeutrality:
    def test_instrumented_run_matches_uninstrumented_bitwise(self):
        plain = seeded_run(seed=17)
        observed = seeded_run(seed=17, obs=Observability())
        disabled = seeded_run(seed=17, obs=Observability.disabled())
        for other in (observed, disabled):
            assert other.finish_times == plain.finish_times  # exact floats
            assert other.iterations == plain.iterations
            assert other.ranges == plain.ranges


# -- report CLI --------------------------------------------------------------


class TestReportCli:
    def test_report_smoke(self, tmp_path, capsys):
        obs = Observability()
        seeded_run(obs=obs)
        path = tmp_path / "metrics.json"
        write_snapshot(path, obs, meta={"scheme": "aid_hybrid,80"})
        assert report_main([str(path), "--threads"]) == 0
        out = capsys.readouterr().out
        assert "test.loop400" in out
        assert "tid" in out
        assert "SF convergence" in out

    def test_report_loop_filter(self, tmp_path, capsys):
        obs = Observability()
        seeded_run(obs=obs)
        path = tmp_path / "metrics.json"
        write_snapshot(path, obs)
        assert report_main([str(path), "--loop", "test.loop400"]) == 0
        assert "test.loop400" in capsys.readouterr().out

    def test_empty_snapshot_prints_null_obs_hint(self, tmp_path, capsys):
        # An Observability that observed nothing — the signature of a
        # run that accidentally used NULL_OBS.
        path = tmp_path / "empty.json"
        write_snapshot(path, Observability(), meta={"program": "EP"})
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "no metrics recorded (was NULL_OBS used?)" in out
        assert "hint:" in out
