"""Exporter tests: Chrome trace round-trip, snapshot determinism,
zero-perturbation of the null sink, and the report CLI."""

import json

import numpy as np
import pytest

from repro.amp.presets import dual_speed_platform
from repro.errors import ObsError
from repro.obs import Observability
from repro.obs.chrome_trace import export_chrome_trace, to_trace_events
from repro.obs.report import main as report_main
from repro.obs.snapshot import (
    SCHEMA,
    build_snapshot,
    completion_payload,
    load_snapshot,
    to_json,
    write_snapshot,
)
from repro.sched.aid_hybrid import AidHybridSpec
from repro.tracing.trace import ThreadState, TraceRecorder

from tests.helpers import run_loop

PLATFORM = dual_speed_platform(2, 4, big_speedup=3.0)


def seeded_run(seed=13, n_iterations=400, obs=None, trace=None):
    rng = np.random.default_rng(seed)
    costs = rng.uniform(5e-5, 2e-4, n_iterations)
    return run_loop(
        PLATFORM,
        AidHybridSpec(),
        n_iterations=n_iterations,
        costs=costs,
        obs=obs,
        trace=trace,
    )


# -- Chrome trace -----------------------------------------------------------


class TestChromeTrace:
    def test_round_trip_parses_and_has_complete_events(self):
        obs = Observability()
        tr = TraceRecorder()
        seeded_run(obs=obs, trace=tr)
        text = export_chrome_trace(tr, decisions=obs.decisions.records)
        doc = json.loads(text)  # byte-for-byte valid JSON
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert xs and metas and instants
        for e in xs:
            assert e["dur"] >= 0 and e["ts"] >= 0
            assert e["pid"] == 1
        # Complete events are time-sorted, as the viewers expect.
        assert [e["ts"] for e in xs] == sorted(e["ts"] for e in xs)

    def test_decision_instants_carry_args(self):
        obs = Observability()
        tr = TraceRecorder()
        seeded_run(obs=obs, trace=tr)
        events = to_trace_events(tr, decisions=obs.decisions.records)
        pubs = [
            e for e in events
            if e["ph"] == "i" and e["name"].endswith("publish_targets")
        ]
        assert len(pubs) == 1
        assert pubs[0]["cat"] == "decision"
        assert "sf" in pubs[0]["args"]
        assert "t" not in pubs[0]["args"]  # core fields not duplicated

    def test_trace_times_are_microseconds(self):
        tr = TraceRecorder()
        tr.record(0, ThreadState.COMPUTE, 0.5, 1.0)
        (event,) = [
            e for e in to_trace_events(tr) if e["ph"] == "X"
        ]
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.5e6)

    def test_export_accepts_timeline_too(self):
        tr = TraceRecorder()
        tr.record(0, ThreadState.COMPUTE, 0.0, 1.0)
        assert json.loads(export_chrome_trace(tr.timeline())) == json.loads(
            export_chrome_trace(tr)
        )


# -- snapshots ---------------------------------------------------------------


class TestSnapshot:
    def test_write_and_load_round_trip(self, tmp_path):
        obs = Observability()
        seeded_run(obs=obs)
        path = tmp_path / "metrics.json"
        text = write_snapshot(path, obs, meta={"note": "test"})
        doc = load_snapshot(path)
        assert doc["schema"] == SCHEMA
        assert doc["meta"] == {"note": "test"}
        assert to_json(doc) == text
        assert doc["metrics"]["counters"]
        assert doc["decisions"] == obs.decisions.records

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ObsError, match="snapshot"):
            load_snapshot(path)

    def test_two_identical_seeded_runs_snapshot_identically(self):
        texts = []
        for _ in range(2):
            obs = Observability()
            seeded_run(seed=29, obs=obs)
            texts.append(to_json(build_snapshot(obs, meta={"seed": 29})))
        assert texts[0] == texts[1]  # byte-identical

    def test_different_seeds_snapshot_differently(self):
        texts = []
        for seed in (29, 31):
            obs = Observability()
            seeded_run(seed=seed, obs=obs)
            texts.append(to_json(build_snapshot(obs)))
        assert texts[0] != texts[1]

    def test_completion_payload_matches_stats(self):
        from repro.metrics.stats import normalized_performance

        row = completion_payload("dynamic(BS)", "Platform A", 0.5, 1.0)
        assert row["normalized_performance"] == normalized_performance(1.0, 0.5)
        assert row["scheme"] == "dynamic(BS)"
        assert row["completion_time"] == 0.5


# -- null sink perturbs nothing ---------------------------------------------


class TestNullSinkNeutrality:
    def test_instrumented_run_matches_uninstrumented_bitwise(self):
        plain = seeded_run(seed=17)
        observed = seeded_run(seed=17, obs=Observability())
        disabled = seeded_run(seed=17, obs=Observability.disabled())
        for other in (observed, disabled):
            assert other.finish_times == plain.finish_times  # exact floats
            assert other.iterations == plain.iterations
            assert other.ranges == plain.ranges


# -- report CLI --------------------------------------------------------------


class TestReportCli:
    def test_report_smoke(self, tmp_path, capsys):
        obs = Observability()
        seeded_run(obs=obs)
        path = tmp_path / "metrics.json"
        write_snapshot(path, obs, meta={"scheme": "aid_hybrid,80"})
        assert report_main([str(path), "--threads"]) == 0
        out = capsys.readouterr().out
        assert "test.loop400" in out
        assert "tid" in out
        assert "SF convergence" in out

    def test_report_loop_filter(self, tmp_path, capsys):
        obs = Observability()
        seeded_run(obs=obs)
        path = tmp_path / "metrics.json"
        write_snapshot(path, obs)
        assert report_main([str(path), "--loop", "test.loop400"]) == 0
        assert "test.loop400" in capsys.readouterr().out
