"""Unit tests for the cross-invocation locality model."""

import pytest

from repro.perfmodel.kernel import KernelProfile
from repro.perfmodel.locality import LocalityModel, LoopOwnership


def mem_kernel(mlp=0.0):
    return KernelProfile(
        name="mem", compute_weight=0.0, ilp=0.0, working_set_mb=1.0, mlp=mlp
    )


COMPUTE = KernelProfile(name="cpu", compute_weight=1.0, ilp=0.5, working_set_mb=0.0)


def test_fresh_ownership_unowned():
    own = LoopOwnership.fresh(1000, 100)
    assert own.warm_fraction(0, 0, 1000) == 0.0
    assert own.invocations_seen == 0


def test_update_then_warm():
    own = LoopOwnership.fresh(100, 10)
    own.update([(3, 0, 50), (4, 50, 100)])
    assert own.warm_fraction(3, 0, 50) == 1.0
    assert own.warm_fraction(4, 0, 50) == 0.0
    assert own.warm_fraction(3, 0, 100) == pytest.approx(0.5)
    assert own.invocations_seen == 1


def test_first_invocation_free():
    model = LocalityModel(penalty=0.5)
    own = LoopOwnership.fresh(100, 10)
    assert model.slowdown(mem_kernel(), own, 0, 0, 100) == 1.0


def test_cold_range_slowed_after_first_invocation():
    model = LocalityModel(penalty=0.5)
    own = LoopOwnership.fresh(100, 10)
    own.update([(1, 0, 100)])
    # Thread 0 touches data thread 1 owned: fully cold, mlp=0 kernel.
    assert model.slowdown(mem_kernel(mlp=0.0), own, 0, 0, 100) == pytest.approx(1.5)
    # The owner itself runs at full speed.
    assert model.slowdown(mem_kernel(), own, 1, 0, 100) == 1.0


def test_compute_bound_kernel_immune():
    model = LocalityModel(penalty=0.5)
    own = LoopOwnership.fresh(100, 10)
    own.update([(1, 0, 100)])
    assert model.slowdown(COMPUTE, own, 0, 0, 100) == 1.0


def test_streaming_kernel_half_penalty():
    model = LocalityModel(penalty=0.4)
    own = LoopOwnership.fresh(100, 10)
    own.update([(1, 0, 100)])
    full = model.slowdown(mem_kernel(mlp=0.0), own, 0, 0, 100)
    stream = model.slowdown(mem_kernel(mlp=1.0), own, 0, 0, 100)
    assert stream - 1.0 == pytest.approx((full - 1.0) / 2)


def test_disabled_model_is_free():
    model = LocalityModel(enabled=False)
    own = LoopOwnership.fresh(100, 10)
    own.update([(1, 0, 100)])
    assert model.slowdown(mem_kernel(), own, 0, 0, 100) == 1.0


def test_partial_warmth_interpolates():
    model = LocalityModel(penalty=1.0)
    own = LoopOwnership.fresh(100, 10)
    own.update([(0, 0, 50), (1, 50, 100)])
    s = model.slowdown(mem_kernel(mlp=0.0), own, 0, 0, 100)
    assert 1.0 < s < 2.0


def test_static_repeat_stays_warm():
    """The key property: a schedule that repeats identical ranges pays
    nothing after the first invocation."""
    model = LocalityModel(penalty=0.5)
    own = LoopOwnership.fresh(128, 16)
    ranges = [(t, t * 32, (t + 1) * 32) for t in range(4)]
    own.update(ranges)
    for t, lo, hi in ranges:
        assert model.slowdown(mem_kernel(), own, t, lo, hi) == 1.0


def test_segment_rounding_never_crashes():
    own = LoopOwnership.fresh(7, 100)  # more segments requested than iters
    own.update([(0, 0, 7)])
    assert own.warm_fraction(0, 0, 7) == 1.0
    assert own.warm_fraction(0, 3, 3) == 1.0  # empty range counts warm
