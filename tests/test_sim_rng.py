"""Unit tests for deterministic RNG streams."""

import numpy as np

from repro.sim.rng import RngStreams, stable_seed


def test_stable_seed_is_deterministic():
    assert stable_seed("a", 1, "b") == stable_seed("a", 1, "b")


def test_stable_seed_differs_across_keys():
    assert stable_seed("a") != stable_seed("b")
    assert stable_seed("a", 1) != stable_seed("a", 2)


def test_stable_seed_sensitive_to_part_boundaries():
    # ("ab", "c") and ("a", "bc") must not collide.
    assert stable_seed("ab", "c") != stable_seed("a", "bc")


def test_same_key_replays_stream():
    streams = RngStreams(7)
    a = streams.get("x").standard_normal(10)
    b = streams.get("x").standard_normal(10)
    np.testing.assert_array_equal(a, b)


def test_different_keys_are_independent():
    streams = RngStreams(7)
    a = streams.get("x").standard_normal(10)
    b = streams.get("y").standard_normal(10)
    assert not np.array_equal(a, b)


def test_root_seed_changes_streams():
    a = RngStreams(1).get("x").standard_normal(10)
    b = RngStreams(2).get("x").standard_normal(10)
    assert not np.array_equal(a, b)


def test_seed_for_matches_generator_seed():
    streams = RngStreams(3)
    seed = streams.seed_for("k")
    direct = np.random.default_rng(seed).random(5)
    via_get = streams.get("k").random(5)
    np.testing.assert_array_equal(direct, via_get)
