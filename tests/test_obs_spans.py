"""Causal span tracing: recorder invariants, backend byte-identity,
fleet propagation (jobs=1 ≡ jobs=N ≡ warm cache), nesting properties on
fuzz-style cases, and the Chrome-trace span/flow export."""

import json

import pytest

from repro.amp.presets import odroid_xu4
from repro.check.generators import FuzzCase, case_costs, case_rng
from repro.experiments.harness import default_configs, grid_specs
from repro.faults.model import FaultPlan, ThrottleEvent
from repro.fleet import FleetConfig, FleetProgress, ResultCache, run_jobs
from repro.obs import Observability, SpanRecorder, comparable_snapshot
from repro.obs.chrome_trace import export_chrome_trace, to_trace_events
from repro.obs.snapshot import build_snapshot
from repro.obs.spans import (
    SPANS_SCHEMA,
    TILING_CATS,
    load_span_doc,
    span_violations,
)
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.sched.registry import parse_schedule
from repro.tracing.trace import TraceRecorder
from repro.workloads.registry import get_program

from .helpers import preset_platform, run_loop

SCHEDULES = (
    "static", "dynamic,8", "guided", "aid_static", "aid_hybrid",
    "aid_dynamic", "aid_auto", "aid_steal",
)


def traced_run(schedule: str, platform: str = "odroid_xu4", **kw):
    """One run_loop with span recording on; returns (result, doc, obs)."""
    obs = Observability(spans=SpanRecorder(context="test"))
    result = run_loop(
        preset_platform(platform), parse_schedule(schedule), obs=obs, **kw
    )
    return result, obs.spans.as_doc(), obs


class TestSpanDocument:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_every_schedule_produces_a_valid_span_tree(self, schedule):
        _, doc, _ = traced_run(schedule)
        assert doc["schema"] == SPANS_SCHEMA
        assert doc["spans"], "no spans recorded"
        assert span_violations(doc) == []

    def test_spans_do_not_perturb_the_simulation(self):
        plain = run_loop(preset_platform("odroid_xu4"),
                         parse_schedule("aid_hybrid"))
        traced, _, _ = traced_run("aid_hybrid")
        assert traced.duration == plain.duration
        assert traced.ranges == plain.ranges

    def test_document_is_deterministic(self):
        _, doc_a, _ = traced_run("aid_dynamic")
        _, doc_b, _ = traced_run("aid_dynamic")
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(
            doc_b, sort_keys=True
        )

    @pytest.mark.parametrize(
        "schedule", ("static", "dynamic,4", "aid_hybrid", "aid_auto")
    )
    def test_backends_serialize_byte_identical_documents(self, schedule):
        _, ref, _ = traced_run(schedule, backend="reference")
        _, vec, _ = traced_run(schedule, backend="vectorized")
        assert json.dumps(ref, sort_keys=True) == json.dumps(
            vec, sort_keys=True
        )

    def test_steal_edges_materialized(self):
        # A steep ramp defeats the SF-proportional partition, so the
        # early finishers must steal from the loaded victims.
        case = FuzzCase(seed=9, schedule="aid_steal", platform="odroid_xu4",
                        n_iterations=1024, cost=("ramp", 1e-4, 8.0))
        obs = Observability(spans=SpanRecorder())
        run_loop(
            case.build_platform(), case.build_spec(),
            n_iterations=case.n_iterations, costs=case_costs(case),
            overhead=case.overhead_model(), obs=obs,
        )
        doc = obs.spans.as_doc()
        kinds = {e["kind"] for e in doc["edges"]}
        assert "steal" in kinds
        # Steal endpoints are thread-scoped paths (victim thread ->
        # thief thread): each must prefix at least one concrete span id.
        ids = {s["id"] for s in doc["spans"]}
        for e in doc["edges"]:
            for end in (e["src"], e["dst"]):
                assert end in ids or any(
                    sid.startswith(end + "/") for sid in ids
                ), end

    def test_fault_windows_and_resample_edge(self):
        platform = preset_platform("odroid_xu4")
        baseline = run_loop(
            platform, parse_schedule("aid_auto"), n_iterations=2048,
            work=1e-5,
        )
        big = platform.cores_of_type(platform.core_types[-1])
        plan = FaultPlan(tuple(
            ThrottleEvent(cpu=c.cpu_id, t0=0.3 * baseline.duration,
                          t1=10.0, factor=0.25)
            for c in big
        ))
        obs = Observability(spans=SpanRecorder())
        run_loop(
            platform, parse_schedule("aid_auto"), n_iterations=2048,
            work=1e-5, obs=obs, faults=plan,
        )
        doc = obs.spans.as_doc()
        assert span_violations(doc) == []
        cats = {s["cat"] for s in doc["spans"]}
        assert "fault" in cats
        assert any(e["kind"] == "fault_resample" for e in doc["edges"])

    def test_program_runner_emits_program_and_serial_spans(self):
        obs = Observability(spans=SpanRecorder())
        runner = ProgramRunner(
            odroid_xu4(), OmpEnv(schedule="aid_hybrid"), obs=obs
        )
        result = runner.run(get_program("EP"))
        doc = obs.spans.as_doc()
        assert span_violations(doc) == []
        cats = {s["cat"] for s in doc["spans"]}
        assert "program" in cats and "loop" in cats
        program = next(s for s in doc["spans"] if s["cat"] == "program")
        assert program["t1"] == pytest.approx(
            result.completion_time, rel=0, abs=1e-12
        )


class TestNestingProperties:
    """Satellite: chunk spans nest inside phase/loop spans on fuzz cases."""

    CASES = [
        FuzzCase(seed=s, schedule=sched, platform=plat,
                 n_iterations=ni, cost=cost)
        for s, sched, plat, ni, cost in (
            (1, "aid_hybrid", "odroid_xu4", 384, ("jittered", 1e-4, 0.3, 0.1)),
            (2, "aid_dynamic,1,5", "xeon_emulated", 512, ("ramp", 1e-4, 3.0)),
            (3, "aid_auto", "odroid_xu4", 256, ("bimodal", 1e-4, 5.0, 0.2)),
            (4, "aid_steal,8", "xeon_emulated", 640, ("lognormal", 1e-4, 0.6)),
            (5, "guided,4", "odroid_xu4", 300, ("uniform", 1e-4)),
        )
    ]

    @pytest.mark.parametrize(
        "case", CASES, ids=lambda c: f"seed{c.seed}-{c.schedule}"
    )
    def test_chunks_nest_inside_phase_and_loop(self, case):
        obs = Observability(spans=SpanRecorder())
        run_loop(
            case.build_platform(), case.build_spec(),
            n_iterations=case.n_iterations, costs=case_costs(case),
            overhead=case.overhead_model(), rng=case_rng(case), obs=obs,
        )
        doc = obs.spans.as_doc()
        assert span_violations(doc) == []
        spans = {s.span_id: s for s in load_span_doc(doc)}
        loops = [s for s in spans.values() if s.cat == "loop"]
        assert loops
        eps = 1e-12
        checked = 0
        for s in spans.values():
            if not s.span_id.rpartition("/")[2].startswith("c"):
                continue
            if s.cat not in ("compute-big", "compute-small"):
                continue
            checked += 1
            # Walk up: every chunk has an ancestor chain ending at a
            # loop span, and nests inside each ancestor's interval.
            cur, seen_loop = s, False
            while cur.parent:
                parent = spans[cur.parent]
                assert parent.t0 <= s.t0 + eps and s.t1 <= parent.t1 + eps, (
                    f"{s.span_id} escapes {parent.span_id}"
                )
                seen_loop = seen_loop or parent.cat == "loop"
                cur = parent
            assert seen_loop, f"{s.span_id} has no loop ancestor"
        assert checked > 0, "no chunk spans found"

    @pytest.mark.parametrize(
        "case", CASES[:3], ids=lambda c: f"seed{c.seed}-{c.schedule}"
    )
    def test_tiling_spans_carry_known_categories(self, case):
        obs = Observability(spans=SpanRecorder())
        run_loop(
            case.build_platform(), case.build_spec(),
            n_iterations=case.n_iterations, costs=case_costs(case),
            overhead=case.overhead_model(), rng=case_rng(case), obs=obs,
        )
        cats = {s.cat for s in load_span_doc(obs.spans.as_doc())}
        structural = {"program", "loop", "phase", "fault", "worker"}
        assert cats - structural <= TILING_CATS


class TestFleetPropagation:
    """Satellite: span-bearing merged snapshots are byte-identical for
    jobs=1, jobs=4 and warm-cache replays."""

    @pytest.fixture()
    def traced_specs(self):
        return grid_specs(
            odroid_xu4(),
            [get_program("EP"), get_program("IS")],
            default_configs()[:2],
            trace_context="fleet-test",
        )

    @staticmethod
    def comparable(progress, strip_cache=False):
        doc = comparable_snapshot(progress.obs_snapshot())
        if strip_cache:
            strip = {
                "fleet_cache_hits", "fleet_cache_misses",
                "fleet_jobs_computed", "fleet_heartbeats_total",
            }
            doc["metrics"]["counters"] = [
                c for c in doc["metrics"]["counters"]
                if c["name"] not in strip
            ]
        return json.dumps(doc, sort_keys=True)

    def test_jobs1_and_jobs4_merge_identical_span_sections(
        self, traced_specs
    ):
        inline, pooled = FleetProgress(), FleetProgress()
        run_jobs(traced_specs, FleetConfig(jobs=1), progress=inline)
        run_jobs(traced_specs, FleetConfig(jobs=4), progress=pooled)
        snap = inline.obs_snapshot()
        assert len(snap["spans"]) == len(traced_specs)
        for entry in snap["spans"]:
            assert set(entry["labels"]) == {"program", "config", "platform"}
            assert span_violations(entry["doc"]) == []
        assert self.comparable(inline) == self.comparable(pooled)

    def test_warm_cache_replays_identical_span_sections(
        self, traced_specs, tmp_path
    ):
        cache = ResultCache(tmp_path)
        cold, warm = FleetProgress(), FleetProgress()
        run_jobs(traced_specs, FleetConfig(jobs=2), cache=cache,
                 progress=cold)
        run_jobs(traced_specs, FleetConfig(jobs=2), cache=cache,
                 progress=warm)
        assert warm.count("fleet_cache_hits") == len(traced_specs)
        assert self.comparable(cold, strip_cache=True) == self.comparable(
            warm, strip_cache=True
        )

    def test_no_trace_context_means_no_span_section(self):
        specs = grid_specs(
            odroid_xu4(), [get_program("EP")], default_configs()[:1]
        )
        progress = FleetProgress()
        run_jobs(specs, FleetConfig(jobs=1), progress=progress)
        assert "spans" not in progress.obs_snapshot()


class TestSnapshotCarriage:
    def test_snapshot_without_recorder_is_byte_unchanged(self):
        obs = Observability()
        run_loop(preset_platform("odroid_xu4"), parse_schedule("static"),
                 obs=obs)
        doc = build_snapshot(obs, meta={"k": "v"})
        assert "spans" not in doc

    def test_snapshot_with_recorder_carries_the_span_doc(self):
        _, span_doc, obs = traced_run("aid_hybrid")
        doc = build_snapshot(obs, meta={"k": "v"})
        assert doc["spans"] == span_doc


class TestChromeTraceExport:
    def recorded(self, schedule="aid_hybrid"):
        tr = TraceRecorder()
        obs = Observability(spans=SpanRecorder())
        run_loop(
            preset_platform("odroid_xu4"), parse_schedule(schedule),
            trace=tr, obs=obs,
        )
        return tr, obs.spans.as_doc()

    def test_no_spans_is_byte_identical_to_the_pre_span_exporter(self):
        tr, _ = self.recorded()
        assert export_chrome_trace(tr) == export_chrome_trace(
            tr, spans=(), edges=()
        )

    def test_spans_export_as_complete_events_with_categories(self):
        tr, doc = self.recorded()
        events = to_trace_events(tr, spans=doc["spans"], edges=doc["edges"])
        xs = [e for e in events if e.get("cat", "").startswith("span:")]
        assert len(xs) == len(doc["spans"])
        for e in xs:
            assert e["ph"] == "X" and e["dur"] >= 0.0
            assert e["args"]["id"]

    def test_causal_edges_export_as_flow_pairs(self):
        case = FuzzCase(seed=9, schedule="aid_steal", platform="odroid_xu4",
                        n_iterations=1024, cost=("ramp", 1e-4, 8.0))
        obs = Observability(spans=SpanRecorder())
        run_loop(
            case.build_platform(), case.build_spec(),
            n_iterations=case.n_iterations, costs=case_costs(case),
            overhead=case.overhead_model(), obs=obs,
        )
        doc = obs.spans.as_doc()
        tr = TraceRecorder()
        events = to_trace_events(tr, spans=doc["spans"], edges=doc["edges"])
        starts = [e for e in events if e.get("ph") == "s"]
        ends = [e for e in events if e.get("ph") == "f"]
        assert len(starts) == len(ends) == len(doc["edges"]) > 0
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        assert all(e["id"] > 0 for e in starts)
        assert all(e.get("bp") == "e" for e in ends)
