"""Tests for the shared experiment harness."""

import pytest

from repro.amp.presets import odroid_xu4
from repro.errors import ExperimentError
from repro.experiments.harness import (
    BASELINE_LABEL,
    ScheduleConfig,
    default_configs,
    offline_sf_tables,
    run_grid,
    run_one,
)
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


@pytest.fixture(scope="module")
def small_grid():
    return run_grid(
        odroid_xu4(),
        programs=[get_program("EP"), get_program("streamcluster")],
    )


def test_default_configs_match_paper_columns():
    labels = [c.label for c in default_configs()]
    assert labels == [
        "static(SB)",
        "static(BS)",
        "dynamic(SB)",
        "dynamic(BS)",
        "AID-static",
        "AID-hybrid",
        "AID-dynamic",
    ]
    assert BASELINE_LABEL == "static(SB)"


def test_grid_shape(small_grid):
    assert set(small_grid.times) == {"EP", "streamcluster"}
    for row in small_grid.times.values():
        assert len(row) == 7
        assert all(t > 0 for t in row.values())


def test_normalization_baseline_is_one(small_grid):
    norm = small_grid.normalized()
    for program in norm:
        assert norm[program]["static(SB)"] == pytest.approx(1.0)


def test_column_extraction(small_grid):
    col = small_grid.column("AID-static")
    assert set(col) == {"EP", "streamcluster"}


def test_missing_cell_raises(small_grid):
    with pytest.raises(ExperimentError):
        small_grid.time("EP", "fifo")
    with pytest.raises(ExperimentError):
        small_grid.time("doom", "AID-static")


def test_to_table_renders(small_grid):
    text = small_grid.to_table()
    assert "EP" in text and "AID-hybrid" in text


def test_empty_grid_rejected():
    with pytest.raises(ExperimentError):
        run_grid(odroid_xu4(), programs=[], configs=None)


def test_run_one_deterministic():
    cfg = ScheduleConfig("d", OmpEnv(schedule="dynamic,1", affinity="BS"))
    p = get_program("EP")
    a = run_one(odroid_xu4(), p, cfg, root_seed=1).completion_time
    b = run_one(odroid_xu4(), p, cfg, root_seed=1).completion_time
    assert a == b


def test_offline_sf_tables_cover_all_loops():
    p = get_program("CG")
    tables = offline_sf_tables(odroid_xu4(), p)
    assert set(tables) == {l.name for l in p.loops()}
    for table in tables.values():
        assert table[0] == pytest.approx(1.0)
        assert table[1] >= 1.0
