"""The dispatcher seam: selection policy, and the acceptance property
that every dispatcher (inline, process pool, local worker group)
produces byte-identical results and merged observability."""

import json

import pytest

from repro.amp.presets import odroid_xu4
from repro.errors import FleetError
from repro.experiments.harness import default_configs, grid_specs
from repro.fleet import (
    DISPATCHERS,
    FleetConfig,
    FleetProgress,
    JobSpec,
    ResultCache,
    run_jobs,
)
from repro.fleet.checkpoint import SweepCheckpoint
from repro.fleet.dispatch import (
    DISPATCHER_ENV,
    Dispatcher,
    get_dispatcher,
    resolve_dispatcher_name,
)
from repro.obs.merge import comparable_snapshot
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def comparable_json(progress: FleetProgress) -> str:
    return json.dumps(
        comparable_snapshot(progress.obs_snapshot()), sort_keys=True
    )


@pytest.fixture()
def small_specs():
    return grid_specs(
        odroid_xu4(),
        [get_program("EP"), get_program("IS")],
        default_configs()[:2],
    )


# -- selection policy ------------------------------------------------------


def test_registry_exposes_all_three():
    assert set(DISPATCHERS) == {"inline", "process", "local"}
    for name in DISPATCHERS:
        dispatcher = get_dispatcher(name)
        assert isinstance(dispatcher, Dispatcher)
        assert dispatcher.name == name


def test_default_policy_matches_history():
    assert resolve_dispatcher_name(jobs=1) == "inline"
    assert resolve_dispatcher_name(jobs=4) == "process"
    assert resolve_dispatcher_name(jobs=4, use_processes=False) == "inline"
    assert resolve_dispatcher_name(jobs=1, use_processes=True) == "inline"


def test_explicit_name_wins(monkeypatch):
    assert resolve_dispatcher_name("local", jobs=1) == "local"
    monkeypatch.setenv(DISPATCHER_ENV, "local")
    assert resolve_dispatcher_name(jobs=4) == "local"
    # An explicit argument beats the environment.
    assert resolve_dispatcher_name("inline", jobs=4) == "inline"
    # use_processes=False keeps meaning "never spawn", even explicitly.
    assert resolve_dispatcher_name(
        "process", jobs=4, use_processes=False
    ) == "inline"


def test_unknown_dispatcher_rejected():
    with pytest.raises(FleetError):
        resolve_dispatcher_name("quantum")
    with pytest.raises(FleetError):
        get_dispatcher("quantum")
    with pytest.raises(FleetError):
        FleetConfig(dispatcher="quantum")


# -- the byte-equality acceptance property ---------------------------------


def test_all_dispatchers_agree_byte_for_byte(small_specs):
    """jobs=1 inline == jobs=N process == jobs=N local: identical
    results AND byte-identical merged snapshots."""
    reference = None
    ref_json = None
    for name, jobs in (("inline", 1), ("process", 3), ("local", 3)):
        progress = FleetProgress()
        outcomes = run_jobs(
            small_specs,
            FleetConfig(jobs=jobs, dispatcher=name),
            progress=progress,
        )
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        results = [o.result for o in outcomes]
        snapshot = comparable_json(progress)
        if reference is None:
            reference, ref_json = results, snapshot
        else:
            assert results == reference, name
            assert snapshot == ref_json, name


def test_local_dispatcher_reports_its_mode(small_specs):
    outcomes = run_jobs(
        small_specs, FleetConfig(jobs=2, dispatcher="local")
    )
    assert all(o.ok and o.mode == "local" for o in outcomes)


def test_env_var_selects_dispatcher(small_specs, monkeypatch):
    monkeypatch.setenv(DISPATCHER_ENV, "local")
    outcomes = run_jobs(small_specs, FleetConfig(jobs=2))
    assert all(o.mode == "local" for o in outcomes)


def test_local_dispatcher_retries_and_fails_like_the_pool(small_specs):
    doomed = JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", num_threads=64),
        label="doomed",
    )
    progress = FleetProgress()
    outcomes = run_jobs(
        [*small_specs, doomed],
        FleetConfig(jobs=2, dispatcher="local", retries=1, backoff=0.001),
        progress=progress,
    )
    assert [o.ok for o in outcomes] == [True] * len(small_specs) + [False]
    assert outcomes[-1].attempts == 2
    assert outcomes[-1].mode == "local"
    assert "ConfigError" in outcomes[-1].error
    assert progress.count("fleet_failures") == 1


def test_local_dispatcher_journals_to_checkpoint(small_specs, tmp_path):
    cp = SweepCheckpoint(tmp_path / "cp.jsonl")
    cp.begin({})
    run_jobs(
        small_specs,
        FleetConfig(jobs=2, dispatcher="local"),
        checkpoint=cp,
    )
    cp.close()
    state = SweepCheckpoint.load(cp.path)
    assert set(state.done) == {s.key for s in small_specs}


def test_dispatchers_share_one_cache(small_specs, tmp_path):
    """Entries written under one dispatcher hit under another — the
    store is dispatcher-agnostic."""
    cache = ResultCache(tmp_path)
    cold = run_jobs(
        small_specs, FleetConfig(jobs=2, dispatcher="local"), cache=cache
    )
    progress = FleetProgress()
    warm = run_jobs(
        small_specs,
        FleetConfig(jobs=2, dispatcher="process"),
        cache=cache,
        progress=progress,
    )
    assert [o.result for o in warm] == [o.result for o in cold]
    assert progress.count("fleet_cache_hits") == len(small_specs)
