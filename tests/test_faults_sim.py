"""Simulator-side fault injection: strict no-op guarantee, determinism,
degradation semantics and iteration conservation under preemption."""

import json

import numpy as np
import pytest

from repro.check.generators import preset_platform, run_loop
from repro.experiments.harness import default_configs, run_grid
from repro.faults import (
    CoreOfflineEvent,
    FaultPlan,
    OverheadSpikeEvent,
    ThrottleEvent,
    WorkerStallEvent,
)
from repro.obs import (
    Observability,
    build_snapshot,
    comparable_snapshot,
    grid_payload,
)
from repro.perfmodel.overhead import OverheadModel
from repro.runtime.program_runner import ProgramRunner
from repro.sched.registry import parse_schedule
from repro.workloads.registry import get_program

PLATFORM = preset_platform("dual:2:2")


def _run(schedule="aid_dynamic,1,5", ni=64, faults=None, obs=None,
         overhead=None):
    return run_loop(
        PLATFORM,
        parse_schedule(schedule),
        n_iterations=ni,
        faults=faults,
        obs=obs,
        overhead=overhead,
    )


def _snapshot_json(obs):
    return json.dumps(
        comparable_snapshot(build_snapshot(obs)), sort_keys=True
    )


def _assert_exact_coverage(result, ni):
    """Every iteration executed exactly once — preempted remainders were
    requeued, never dropped and never double-run (the simulator, unlike
    the real-thread watchdog, preempts before the work happens)."""
    hits = np.zeros(ni, dtype=int)
    for _tid, lo, hi in result.ranges:
        hits[lo:hi] += 1
    assert int(sum(result.iterations)) == ni
    assert (hits == 1).all()


@pytest.mark.parametrize(
    "schedule", ["aid_static", "aid_hybrid,80", "aid_dynamic,1,5",
                 "aid_auto,1,5", "aid_steal,8"]
)
def test_empty_plan_is_a_strict_noop(schedule):
    """Satellite: ``faults=None`` and an empty plan take the identical
    code path — results and comparable obs snapshots are byte-identical."""
    runs = []
    for faults in (None, FaultPlan()):
        obs = Observability()
        result = _run(schedule, ni=48, faults=faults, obs=obs)
        runs.append((result, _snapshot_json(obs)))
    (base, base_snap), (empty, empty_snap) = runs
    assert empty.end_time == base.end_time
    assert empty.ranges == base.ranges
    assert list(empty.iterations) == list(base.iterations)
    assert empty_snap == base_snap


def test_grid_payload_unchanged_by_fault_plumbing():
    """The experiment grid never passes faults; its payload must be a
    pure function of (platform, programs, configs, seed) — byte-stable
    across runs through the fault-aware executor."""
    kwargs = dict(
        programs=[get_program("EP")], configs=default_configs()[:2]
    )
    first = run_grid(preset_platform("odroid_xu4"), **kwargs)
    second = run_grid(preset_platform("odroid_xu4"), **kwargs)
    assert json.dumps(grid_payload(first), sort_keys=True) == json.dumps(
        grid_payload(second), sort_keys=True
    )


def test_program_runner_empty_plan_matches_none():
    program = get_program("EP")
    results = [
        ProgramRunner(preset_platform("odroid_xu4"), faults=faults).run(
            program
        )
        for faults in (None, FaultPlan())
    ]
    assert results[0].completion_time == results[1].completion_time


def test_throttle_slows_the_loop_and_fires_counters():
    baseline = _run()
    horizon = baseline.end_time
    plan = FaultPlan(tuple(
        ThrottleEvent(cpu=cpu, t0=0.0, t1=100.0 * horizon, factor=0.25)
        for cpu in range(PLATFORM.n_cores)
    ))
    obs = Observability()
    faulted = _run(faults=plan, obs=obs)
    assert faulted.end_time > baseline.end_time
    _assert_exact_coverage(faulted, 64)
    snap = build_snapshot(obs)
    names = {c["name"] for c in snap["metrics"]["counters"]}
    assert "fault_events_total" in names


def test_fault_injection_is_deterministic():
    baseline = _run()
    plan = FaultPlan((
        ThrottleEvent(cpu=0, t0=0.1 * baseline.end_time,
                      t1=0.9 * baseline.end_time, factor=0.3),
        CoreOfflineEvent(cpu=3, t=0.2 * baseline.end_time),
        WorkerStallEvent(tid=1, t=0.1 * baseline.end_time,
                         seconds=0.2 * baseline.end_time),
    ))
    runs = []
    for _ in range(2):
        obs = Observability()
        result = _run(faults=plan, obs=obs)
        runs.append((result.end_time, result.ranges, _snapshot_json(obs)))
    assert runs[0] == runs[1]


def test_offline_core_returns_unfinished_work_to_the_pool():
    baseline = _run(ni=128)
    plan = FaultPlan((
        CoreOfflineEvent(cpu=0, t=0.25 * baseline.end_time),
    ))
    faulted = _run(ni=128, faults=plan)
    _assert_exact_coverage(faulted, 128)


def test_offlining_every_core_defers_the_last_worker():
    """Taking the whole machine down must not deadlock: the engine keeps
    the final live worker online so the loop still drains."""
    baseline = _run(ni=32)
    plan = FaultPlan(tuple(
        CoreOfflineEvent(cpu=cpu, t=0.01 * baseline.end_time)
        for cpu in range(PLATFORM.n_cores)
    ))
    faulted = _run(ni=32, faults=plan)
    _assert_exact_coverage(faulted, 32)


def test_stall_charges_latency():
    baseline = _run()
    plan = FaultPlan((
        WorkerStallEvent(tid=0, t=0.1 * baseline.end_time,
                         seconds=2.0 * baseline.end_time),
    ))
    faulted = _run(faults=plan)
    assert faulted.end_time > baseline.end_time
    _assert_exact_coverage(faulted, 64)


def test_overhead_spike_slows_dispatch_heavy_loops():
    overhead = OverheadModel()
    baseline = _run(ni=256, overhead=overhead)
    plan = FaultPlan((
        OverheadSpikeEvent(t0=0.0, t1=100.0 * baseline.end_time,
                           factor=50.0),
    ))
    faulted = _run(ni=256, faults=plan, overhead=overhead)
    assert faulted.end_time > baseline.end_time
    _assert_exact_coverage(faulted, 256)
