"""Tests for the run-over-run trajectory store (repro.obs.trajectory):
append/read semantics, corrupt-line tolerance, sparklines, metric
derivation from BENCH payloads and snapshots, and the report CLI."""

import json

import pytest

from repro.errors import ObsError
from repro.obs.report import main as report_main
from repro.obs.trajectory import (
    SCHEMA,
    TrajectoryStore,
    bench_metrics,
    snapshot_metrics,
    sparkline,
    trend_table,
)


@pytest.fixture()
def store(tmp_path):
    return TrajectoryStore(tmp_path / "history.jsonl")


# -- the store ---------------------------------------------------------------


class TestStore:
    def test_append_then_read_back(self, store):
        rec = store.append(
            "bench:fig6", {"speedup": 1.25}, meta={"jobs": 2}
        )
        assert rec["schema"] == SCHEMA and rec["seq"] == 0
        (read,) = store.records()
        assert read == rec
        assert store.series("bench:fig6", "speedup") == [1.25]

    def test_seq_increments_and_order_is_preserved(self, store):
        for v in (1.0, 1.1, 0.9):
            store.append("s", {"m": v})
        recs = store.records()
        assert [r["seq"] for r in recs] == [0, 1, 2]
        assert store.series("s", "m") == [1.0, 1.1, 0.9]

    def test_sources_are_kept_apart(self, store):
        store.append("bench:a", {"m": 1.0})
        store.append("fleet:b", {"m": 2.0})
        assert store.sources() == ["bench:a", "fleet:b"]
        assert store.series("bench:a", "m") == [1.0]
        assert len(store.records("fleet:b")) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        assert TrajectoryStore(tmp_path / "absent.jsonl").records() == []

    def test_corrupt_and_foreign_lines_are_skipped(self, store):
        store.append("s", {"m": 1.0})
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"schema": "other/v1", "source": "s"}\n')
            fh.write("\n")
        store.append("s", {"m": 2.0})
        assert store.series("s", "m") == [1.0, 2.0]

    def test_rejects_empty_or_non_finite_metrics(self, store):
        with pytest.raises(ObsError, match="at least one metric"):
            store.append("s", {})
        with pytest.raises(ObsError, match="not finite"):
            store.append("s", {"m": float("nan")})
        with pytest.raises(ObsError, match="source"):
            store.append("", {"m": 1.0})

    def test_env_var_relocates_the_default(self, tmp_path, monkeypatch):
        target = tmp_path / "elsewhere.jsonl"
        monkeypatch.setenv("OBS_TRAJECTORY", str(target))
        store = TrajectoryStore()
        assert store.path == target


# -- sparklines and trend tables ---------------------------------------------


class TestRendering:
    def test_sparkline_spans_the_glyph_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_series_is_mid_glyph(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_sparkline_clamps_to_width(self):
        assert len(sparkline(range(100), width=24)) == 24

    def test_sparkline_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_trend_table_groups_by_source_and_metric(self, store):
        for v in (1.0, 1.2):
            store.append("bench:a", {"speedup": v})
        store.append("fleet:b", {"hit_rate": 0.5})
        table = trend_table(store.records())
        assert "bench:a" in table and "fleet:b" in table
        assert "speedup" in table and "hit_rate" in table
        assert "+20.0%" in table  # 1.0 -> 1.2

    def test_trend_table_source_filter(self, store):
        store.append("bench:a", {"m": 1.0})
        store.append("fleet:b", {"m": 2.0})
        table = trend_table(store.records(), source="bench:a")
        assert "bench:a" in table and "fleet:b" not in table

    def test_trend_table_empty(self):
        assert trend_table([]) == "no trajectory records"


# -- metric derivation -------------------------------------------------------


class TestDerivation:
    def grid(self, platform="Platform A", rows=None):
        if rows is None:
            rows = {
                "EP": [
                    {"scheme": "static(SB)", "normalized_performance": 1.0},
                    {"scheme": "static(BS)", "normalized_performance": 0.8},
                    {"scheme": "AID-hybrid", "normalized_performance": 1.3},
                ],
                "IS": [
                    {"scheme": "static(SB)", "normalized_performance": 1.0},
                    {"scheme": "AID-static", "normalized_performance": 1.2},
                ],
            }
        return {"platform": platform, "programs": rows}

    def test_bench_metrics_geomean_of_best_aid_over_best_static(self):
        metrics = bench_metrics({"grids": [self.grid()]})
        expected = (1.3 * 1.2) ** 0.5  # geomean of per-program ratios
        assert metrics["speedup_vs_best_static:Platform A"] == pytest.approx(
            expected
        )

    def test_bench_metrics_one_entry_per_platform(self):
        payload = {
            "grids": [self.grid("Platform A"), self.grid("Platform B")]
        }
        metrics = bench_metrics(payload)
        assert set(metrics) == {
            "speedup_vs_best_static:Platform A",
            "speedup_vs_best_static:Platform B",
        }

    def test_bench_metrics_skip_grids_without_both_scheme_families(self):
        rows = {"EP": [{"scheme": "dynamic(SB)", "normalized_performance": 1.0}]}
        assert bench_metrics({"grids": [self.grid(rows=rows)]}) == {}

    def test_snapshot_metrics_overhead_hit_rate_and_decisions(self):
        snapshot = {
            "metrics": {
                "counters": [
                    {"name": "runtime_overhead_seconds_total",
                     "labels": {"tid": "0"}, "value": 0.25},
                    {"name": "runtime_overhead_seconds_total",
                     "labels": {"tid": "1"}, "value": 0.50},
                    {"name": "fleet_jobs_submitted", "labels": {}, "value": 8},
                    {"name": "fleet_cache_hits", "labels": {}, "value": 6},
                ]
            },
            "decision_summary": {"total": 42},
        }
        metrics = snapshot_metrics(snapshot)
        assert metrics["runtime_overhead_seconds"] == pytest.approx(0.75)
        assert metrics["fleet_cache_hit_rate"] == pytest.approx(0.75)
        assert metrics["decision_records"] == 42.0

    def test_snapshot_metrics_on_empty_snapshot(self):
        assert snapshot_metrics({"metrics": {"counters": []}}) == {}


# -- report CLI --------------------------------------------------------------


class TestTrajectoryCli:
    def test_renders_trends(self, store, capsys):
        store.append("bench:fig6", {"speedup": 1.1})
        store.append("bench:fig6", {"speedup": 1.3})
        assert report_main(["trajectory", str(store.path)]) == 0
        out = capsys.readouterr().out
        assert "bench:fig6" in out and "speedup" in out

    def test_source_filter(self, store, capsys):
        store.append("bench:a", {"m": 1.0})
        store.append("fleet:b", {"m": 2.0})
        assert report_main(
            ["trajectory", str(store.path), "--source", "fleet:b"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet:b" in out and "bench:a" not in out

    def test_empty_history_exits_zero_with_a_note(self, tmp_path, capsys):
        path = tmp_path / "none.jsonl"
        assert report_main(["trajectory", str(path)]) == 0
        assert "no trajectory records" in capsys.readouterr().out
