"""Tests for the fleet supervision layer: circuit breakers (trip,
half-open probing, degradation ladder), poison-job quarantine, EWMA hang
detection, seeded retry jitter, and the backoff-sleep budget."""

import pytest

from repro.amp.presets import odroid_xu4
from repro.errors import FleetError
from repro.experiments.harness import default_configs, grid_specs
from repro.fleet import (
    FleetConfig,
    FleetProgress,
    ResultCache,
    run_jobs,
)
from repro.fleet import chaos
from repro.fleet.chaos import ChaosPlan, PoolBreak, WorkerKill, WorkerStall
from repro.fleet.checkpoint import SweepCheckpoint as Checkpoint
from repro.fleet.pool import _BackoffBudget
from repro.fleet.supervisor import (
    Breaker,
    Supervisor,
    SupervisorConfig,
)
from repro.workloads.registry import get_program


@pytest.fixture()
def small_specs():
    return grid_specs(
        odroid_xu4(),
        [get_program("EP"), get_program("IS")],
        default_configs()[:2],
    )


# -- breaker state machine -------------------------------------------------


def test_breaker_trips_after_threshold():
    b = Breaker("process", threshold=3, cooldown=10)
    assert not b.record_failure(now=0)
    assert not b.record_failure(now=1)
    assert b.record_failure(now=2)  # third consecutive failure trips
    assert b.state == Breaker.OPEN
    assert b.trips == 1


def test_breaker_success_resets_streak():
    b = Breaker("process", threshold=2, cooldown=10)
    b.record_failure(now=0)
    b.record_success()
    assert not b.record_failure(now=1)  # streak restarted
    assert b.state == Breaker.CLOSED


def test_breaker_half_open_probe_and_reopen():
    b = Breaker("process", threshold=1, cooldown=5)
    assert b.record_failure(now=0)
    assert not b.allow(now=3)  # still cooling down
    assert b.allow(now=5)  # cooldown elapsed: half-open probe
    assert b.state == Breaker.HALF_OPEN
    # A half-open probe reopens on its first failure, below threshold.
    assert b.record_failure(now=6)
    assert b.state == Breaker.OPEN and b.trips == 2
    # ... and closes on success.
    assert b.allow(now=11)
    b.record_success()
    assert b.state == Breaker.CLOSED


def test_supervisor_config_validation():
    with pytest.raises(FleetError):
        SupervisorConfig(hang_factor=0)
    with pytest.raises(FleetError):
        SupervisorConfig(hang_floor=-1)
    with pytest.raises(FleetError):
        SupervisorConfig(poison_threshold=0)
    with pytest.raises(FleetError):
        SupervisorConfig(breaker_threshold=0)
    with pytest.raises(FleetError):
        SupervisorConfig(breaker_cooldown=0)
    with pytest.raises(FleetError):
        SupervisorConfig(jitter=1.0)


# -- seeded retry jitter ---------------------------------------------------


def test_backoff_jitter_is_deterministic_and_bounded():
    sup = Supervisor(SupervisorConfig(jitter=0.25, seed=3))
    d1 = sup.backoff_delay("ab" * 32, attempt=2, base=0.1)
    d2 = sup.backoff_delay("ab" * 32, attempt=2, base=0.1)
    assert d1 == d2  # same (seed, digest, attempt) -> same delay
    nominal = 0.1 * 2  # base * 2**(attempt-1)
    assert nominal * 0.75 <= d1 < nominal * 1.25
    # Different digests decorrelate; a zero jitter is exact.
    other = sup.backoff_delay("cd" * 32, attempt=2, base=0.1)
    assert other != d1
    plain = Supervisor(SupervisorConfig(jitter=0.0))
    assert plain.backoff_delay("ab" * 32, attempt=3, base=0.1) == 0.4


# -- backoff budget (satellite: retries never outlive the deadline) --------


def test_backoff_budget_caps_cumulative_sleep():
    budget = _BackoffBudget(timeout=0.05)
    assert budget.sleep(0, 0.04) == pytest.approx(0.04)
    assert budget.sleep(0, 0.04) == pytest.approx(0.01)  # clamped
    assert budget.sleep(0, 0.04) == 0.0  # budget exhausted
    # Budgets are per job index.
    assert budget.sleep(1, 0.03) == pytest.approx(0.03)


def test_backoff_budget_unbounded_without_timeout():
    budget = _BackoffBudget(timeout=None)
    assert budget.sleep(0, 0.01) == pytest.approx(0.01)
    assert budget.sleep(0, 0.01) == pytest.approx(0.01)


# -- hang deadlines --------------------------------------------------------


def test_job_deadline_prefers_hang_bound(small_specs, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = small_specs[0]
    sup = Supervisor(SupervisorConfig(hang_factor=5.0, hang_floor=0.05))
    # No estimate yet: plain timeout, not a hang deadline.
    assert sup.job_deadline(spec, cache, 9.0) == (9.0, False)
    cache.note_duration(spec, 0.02)
    deadline, is_hang = sup.job_deadline(spec, cache, 9.0)
    assert is_hang and deadline == pytest.approx(0.1)  # 0.02 * 5
    # The floor guards tiny estimates; the timeout wins when tighter.
    cache.note_duration(spec, 0.0001)
    deadline, _ = sup.job_deadline(spec, cache, 9.0)
    assert deadline >= 0.05
    assert sup.job_deadline(spec, cache, 0.01) == (0.01, False)
    # hang_factor=None disables estimate-based detection entirely.
    off = Supervisor(SupervisorConfig(hang_factor=None))
    assert off.job_deadline(spec, cache, 9.0) == (9.0, False)


def test_hang_detector_aborts_silent_worker_early(small_specs, tmp_path):
    """A stalled worker is aborted at estimate x hang_factor, well before
    the plain per-job timeout, counted as a hang (not a timeout)."""
    serial = run_jobs(small_specs, FleetConfig(jobs=1))
    cache = ResultCache(tmp_path / "cache")
    stalled = small_specs[0]
    cache.note_duration(stalled, 0.02)  # hang deadline = 0.1s
    plan = ChaosPlan(
        events=(WorkerStall(job=stalled.key, seconds=0.4, times=1),)
    )
    progress = FleetProgress()
    sup = Supervisor(
        SupervisorConfig(
            hang_factor=5.0, hang_floor=0.05, poison_threshold=100,
            breaker_threshold=100,
        )
    )
    with chaos.active(plan):
        outcomes = run_jobs(
            small_specs,
            FleetConfig(jobs=2, timeout=30.0, retries=2, backoff=0.001,
                        dispatcher="local"),
            cache=cache,
            progress=progress,
            supervisor=sup,
        )
    assert all(o.ok for o in outcomes)
    assert [o.result for o in outcomes] == [o.result for o in serial]
    assert progress.count("fleet_hangs_detected_total") >= 1
    assert progress.count("fleet_timeouts") == 0
    hangs = [e for e in progress.events if e["event"] == "hang"]
    assert hangs and hangs[0]["digest"] == stalled.key


# -- multi-in-flight timeout -> pool rebuild (satellite 4) ------------------


def test_timeout_rebuild_with_multiple_inflight_victims(
    small_specs, tmp_path, monkeypatch
):
    """Two in-flight process workers expire in the same cycle: each
    victim is charged exactly one retry, the pool is rebuilt, and no
    JobResult is lost or duplicated."""
    serial = run_jobs(small_specs, FleetConfig(jobs=1))
    keys = [s.key for s in small_specs]
    plan = ChaosPlan(
        events=(
            WorkerStall(job=keys[0], seconds=2.0, times=1),
            WorkerStall(job=keys[1], seconds=2.0, times=1),
        ),
    )
    # Worker processes load the plan from the environment; the marker
    # state directory makes each stall fire exactly once across rebuilds.
    plan_path = plan.save(tmp_path / "plan.json")
    monkeypatch.setenv(chaos.CHAOS_ENV, str(plan_path))
    progress = FleetProgress()
    sup = Supervisor(
        SupervisorConfig(poison_threshold=100, breaker_threshold=100)
    )
    try:
        outcomes = run_jobs(
            small_specs,
            FleetConfig(jobs=2, timeout=0.6, retries=2, backoff=0.001,
                        dispatcher="process"),
            progress=progress,
            supervisor=sup,
        )
    finally:
        monkeypatch.delenv(chaos.CHAOS_ENV)
        chaos.deactivate()
    assert all(o.ok for o in outcomes)
    assert [o.result for o in outcomes] == [o.result for o in serial]
    victims = {o.spec.key: o for o in outcomes[:2]}
    assert all(v.attempts == 2 for v in victims.values())
    assert progress.count("fleet_timeouts") == 2
    assert progress.count("fleet_retries") == 2


# -- poison quarantine -----------------------------------------------------


def test_poison_job_quarantined_inline(small_specs, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    checkpoint = Checkpoint(tmp_path / "cp.jsonl")
    bad = small_specs[1]
    plan = ChaosPlan(events=(WorkerKill(job=bad.key, times=None),))
    progress = FleetProgress()
    with chaos.active(plan):
        outcomes = run_jobs(
            small_specs,
            FleetConfig(jobs=1, retries=5, backoff=0.001),
            cache=cache,
            progress=progress,
            checkpoint=checkpoint,
        )
    checkpoint.close()
    poisoned = [o for o in outcomes if o.poisoned]
    assert [o.spec.key for o in poisoned] == [bad.key]
    assert poisoned[0].result is None and not poisoned[0].ok
    # Default threshold 2: quarantined on the second break, not retried
    # to exhaustion.
    assert poisoned[0].attempts == 2
    assert all(o.ok for o in outcomes if o.spec.key != bad.key)
    assert progress.count("fleet_jobs_poisoned_total") == 1
    # Quarantine is durable: a .poison marker cache-side + a journal row.
    assert cache.poison_reason(bad.key) is not None
    assert cache.poisoned() == (bad.key,)
    state = Checkpoint.load(checkpoint.path)
    assert state.poisoned == (bad.key,)
    assert bad.key not in state.pending  # quarantine sticks on resume
    assert state.failure_table()  # reason rendered for the banner


def test_poisoned_digest_skipped_by_later_sweep(small_specs, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    bad = small_specs[2]
    cache.mark_poisoned(bad.key, "broke the pool twice in sweep 1")
    progress = FleetProgress()
    outcomes = run_jobs(
        small_specs, FleetConfig(jobs=1), cache=cache, progress=progress
    )
    skipped = outcomes[2]
    assert skipped.poisoned and skipped.attempts == 0
    assert "previous sweep" in skipped.error
    assert all(o.ok for i, o in enumerate(outcomes) if i != 2)
    # clear_poison lifts the quarantine.
    assert cache.clear_poison(bad.key)
    retried = run_jobs([small_specs[2]], FleetConfig(jobs=1), cache=cache)
    assert retried[0].ok


def test_pooled_poison_quarantine_exact(small_specs):
    """Sim-mode kills attribute exactly, so pooled tiers quarantine
    precisely the poison digest."""
    bad = small_specs[0]
    plan = ChaosPlan(events=(WorkerKill(job=bad.key, times=None),))
    progress = FleetProgress()
    with chaos.active(plan):
        outcomes = run_jobs(
            small_specs,
            FleetConfig(jobs=2, retries=5, backoff=0.001,
                        dispatcher="local"),
            progress=progress,
        )
    assert {o.spec.key for o in outcomes if o.poisoned} == {bad.key}
    assert all(o.ok for o in outcomes if o.spec.key != bad.key)
    assert progress.count("fleet_jobs_poisoned_total") == 1


def test_failed_job_reason_lands_in_resume_table(small_specs, tmp_path):
    """A job that exhausts retries (without poisoning) journals its last
    error, and the checkpoint's failure table prints it."""
    bad = small_specs[3]
    checkpoint = Checkpoint(tmp_path / "cp.jsonl")
    plan = ChaosPlan(events=(WorkerKill(job=bad.key, times=3),))
    sup = Supervisor(SupervisorConfig(poison_threshold=100))
    with chaos.active(plan):
        outcomes = run_jobs(
            small_specs,
            FleetConfig(jobs=1, retries=1, backoff=0.001),
            checkpoint=checkpoint,
            supervisor=sup,
        )
    checkpoint.close()
    failed = outcomes[3]
    assert not failed.ok and not failed.poisoned
    state = Checkpoint.load(checkpoint.path)
    assert state.failed == (bad.key,)
    assert bad.key in state.pending  # plain failures stay retryable
    table = state.failure_table()
    assert bad.key[:12] in table and "ChaosWorkerCrash" in table


# -- circuit breakers + degradation ladder ---------------------------------


def test_breaker_degrades_process_to_local_to_inline(small_specs):
    """Pool-break storms walk the full ladder: the process tier's breaker
    trips on a genuine broken pool, the local tier's on the injected
    infrastructure failure, and inline finishes the sweep."""
    serial = run_jobs(small_specs, FleetConfig(jobs=1))
    keys = [s.key for s in small_specs]
    plan = ChaosPlan(
        events=(
            PoolBreak(job=keys[0], times=1),  # fires on the process tier
            PoolBreak(job=keys[2], times=1),  # fires on the local tier
        ),
    )
    progress = FleetProgress()
    sup = Supervisor(
        SupervisorConfig(
            breaker_threshold=1, breaker_cooldown=1000, poison_threshold=100,
        )
    )
    with chaos.active(plan):
        outcomes = run_jobs(
            small_specs,
            FleetConfig(jobs=2, retries=5, backoff=0.001,
                        dispatcher="process"),
            progress=progress,
            supervisor=sup,
        )
    assert all(o.ok for o in outcomes)
    assert [o.result for o in outcomes] == [o.result for o in serial]
    assert progress.count("fleet_breaker_trips_total") == 2
    trips = [e for e in progress.events if e["event"] == "breaker_tripped"]
    assert [(t["tier"], t["next_tier"]) for t in trips] == [
        ("process", "local"), ("local", "inline"),
    ]
    # The last unresolved job can only have completed on the floor tier.
    assert outcomes[3].mode == "inline"
    assert sup.breaker("process").state == Breaker.OPEN
    assert sup.breaker("local").state == Breaker.OPEN


def test_breaker_half_open_probe_recovers_across_batches(small_specs):
    """A tripped tier is skipped while cooling down, then probed
    half-open by a later batch under the same supervisor; the probe's
    success closes the breaker."""
    sup = Supervisor(
        SupervisorConfig(
            breaker_threshold=1, breaker_cooldown=2, poison_threshold=100,
        )
    )
    plan = ChaosPlan(events=(PoolBreak(job="*", times=1),))
    progress = FleetProgress()
    with chaos.active(plan):
        first = run_jobs(
            small_specs,
            FleetConfig(jobs=2, retries=5, backoff=0.001,
                        dispatcher="local"),
            progress=progress,
            supervisor=sup,
        )
    assert all(o.ok for o in first)
    assert progress.count("fleet_breaker_trips_total") == 1
    assert sup.breaker("local").state == Breaker.OPEN
    # 4 completions ticked the logical clock past the cooldown: the next
    # batch (chaos deactivated) probes the tier half-open and closes it.
    second = run_jobs(
        small_specs,
        FleetConfig(jobs=2, dispatcher="local"),
        supervisor=sup,
    )
    assert all(o.ok and o.mode == "local" for o in second)
    assert sup.breaker("local").state == Breaker.CLOSED


# -- cache-error tolerance -------------------------------------------------


def test_persistent_cache_put_errors_never_fail_the_sweep(
    small_specs, tmp_path
):
    from repro.fleet.chaos import CacheFault, ChaosCache, ChaosEngine

    plan = ChaosPlan(
        events=(
            CacheFault(op="put", job="*", errno_name="ENOSPC",
                       times=1_000_000),
        )
    )
    inner = ResultCache(tmp_path / "cache")
    cache = ChaosCache(inner, ChaosEngine(plan))
    progress = FleetProgress()
    outcomes = run_jobs(
        small_specs, FleetConfig(jobs=1), cache=cache, progress=progress
    )
    assert all(o.ok for o in outcomes)
    assert progress.count("fleet_cache_errors_total") >= len(small_specs)
    assert len(inner) == 0  # nothing was cached; the sweep still ran
