"""Tests for the seeded fuzz-case and platform factories."""

from __future__ import annotations

import dataclasses

import pytest

from repro.check.generators import (
    DEFAULT_VARIANTS,
    FuzzCase,
    case_costs,
    generate_case,
    preset_platform,
    simplified,
)
from repro.errors import ConfigError
from repro.sched.registry import parse_schedule


class TestPresetPlatform:
    @pytest.mark.parametrize("name", ["odroid_xu4", "xeon_emulated", "tri"])
    def test_named_presets(self, name):
        assert preset_platform(name).n_cores > 0

    def test_dual_family(self):
        p = preset_platform("dual:1:3:4")
        assert p.n_cores == 4

    def test_dual_default_speedup(self):
        assert preset_platform("dual:2:2").n_cores == 4

    @pytest.mark.parametrize("bad", ["nope", "dual:1", "dual:x:y"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises((ConfigError, ValueError)):
            preset_platform(bad)


class TestGenerateCase:
    def test_pure_function_of_seed(self):
        a = generate_case(1234)
        b = generate_case(1234)
        assert a == b
        assert generate_case(1235) != a

    def test_case_is_buildable(self):
        for seed in range(20):
            case = generate_case(seed)
            case.build_platform()
            case.build_spec()
            case.cost_model()
            case.overhead_model()
            assert case.n_iterations >= 1
            assert len(case_costs(case)) == case.n_iterations

    def test_costs_deterministic_in_seed(self):
        case = generate_case(7)
        assert (case_costs(case) == case_costs(case)).all()

    def test_variant_restriction_respected(self):
        for seed in range(30):
            case = generate_case(seed, variants=("aid_steal,8",))
            assert case.schedule.startswith("aid_steal")

    def test_platform_restriction_respected(self):
        for seed in range(30):
            case = generate_case(seed, platforms=("dual:2:2",))
            assert case.platform == "dual:2:2"

    def test_default_pool_covers_every_variant_kind(self):
        kinds = {
            generate_case(seed).schedule.split(",")[0] for seed in range(200)
        }
        expected = {v.split(",")[0] for v in DEFAULT_VARIANTS}
        assert kinds == expected


class TestSimplified:
    def test_candidates_are_strictly_simpler(self):
        case = generate_case(42)
        for cand in simplified(case):
            assert cand != case
            assert cand.n_iterations <= case.n_iterations
            assert cand.seed == case.seed  # shrinking never reseeds

    def test_minimal_case_has_limited_candidates(self):
        case = FuzzCase(
            seed=1,
            schedule="aid_dynamic,1,2",
            platform="dual:1:1",
            n_iterations=1,
            cost=("uniform", 1e-4),
            overhead_scale=0.0,
        )
        assert simplified(case) == []

    def test_schedule_parameters_shrink(self):
        case = FuzzCase(
            seed=1,
            schedule="aid_dynamic,2,9",
            platform="dual:1:1",
            n_iterations=1,
            cost=("uniform", 1e-4),
            overhead_scale=0.0,
        )
        schedules = {c.schedule for c in simplified(case)}
        assert "aid_dynamic,1,2" in schedules

    def test_candidate_schedules_parse(self):
        for seed in range(30):
            for cand in simplified(generate_case(seed)):
                parse_schedule(cand.schedule)

    def test_replace_roundtrip_preserves_value_semantics(self):
        case = generate_case(3)
        clone = dataclasses.replace(case)
        assert clone == case and hash(clone) == hash(case)
