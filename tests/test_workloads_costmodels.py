"""Unit tests for per-iteration cost models."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.costmodels import (
    BimodalCost,
    JitteredCost,
    LognormalCost,
    RampCost,
    UniformCost,
)


def rng():
    return np.random.default_rng(0)


class TestUniformCost:
    def test_all_equal(self):
        costs = UniformCost(2.5).generate(10, rng())
        assert np.all(costs == 2.5)

    def test_mean(self):
        assert UniformCost(3.0).mean_cost() == 3.0

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            UniformCost(-1.0)


class TestJitteredCost:
    def test_bounds(self):
        m = JitteredCost(1.0, jitter=0.1)
        costs = m.generate(1000, rng())
        assert np.all(costs >= 0.9) and np.all(costs <= 1.1)

    def test_mean_approx(self):
        costs = JitteredCost(2.0, jitter=0.2).generate(20000, rng())
        assert costs.mean() == pytest.approx(2.0, rel=0.01)

    def test_drift_tilts_costs(self):
        costs = JitteredCost(1.0, jitter=0.0, drift=0.5).generate(100, rng())
        assert costs[-1] > costs[0]
        assert costs[-1] / costs[0] == pytest.approx(
            (1 + 0.25) / (1 - 0.25), rel=1e-6
        )

    def test_negative_drift(self):
        costs = JitteredCost(1.0, jitter=0.0, drift=-0.5).generate(100, rng())
        assert costs[0] > costs[-1]

    def test_drift_preserves_mean(self):
        costs = JitteredCost(1.0, jitter=0.0, drift=0.4).generate(101, rng())
        assert costs.mean() == pytest.approx(1.0, rel=1e-3)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            JitteredCost(1.0, jitter=1.0)
        with pytest.raises(WorkloadError):
            JitteredCost(1.0, drift=2.5)


class TestRampCost:
    def test_linear(self):
        costs = RampCost(1.0, 3.0).generate(3, rng())
        np.testing.assert_allclose(costs, [1.0, 2.0, 3.0])

    def test_single_iteration_uses_mean(self):
        costs = RampCost(1.0, 3.0).generate(1, rng())
        assert costs[0] == 2.0

    def test_descending(self):
        costs = RampCost(5.0, 1.0).generate(10, rng())
        assert np.all(np.diff(costs) < 0)

    def test_mean(self):
        assert RampCost(1.0, 3.0).mean_cost() == 2.0


class TestLognormalCost:
    def test_mean_matches_target(self):
        costs = LognormalCost(2.0, sigma=0.8).generate(200_000, rng())
        assert costs.mean() == pytest.approx(2.0, rel=0.02)

    def test_heavy_tail(self):
        costs = LognormalCost(1.0, sigma=1.0).generate(100_000, rng())
        assert costs.max() > 5 * costs.mean()

    def test_zero_mean_gives_zero(self):
        costs = LognormalCost(0.0).generate(10, rng())
        assert np.all(costs == 0.0)

    def test_all_positive(self):
        costs = LognormalCost(1.0, sigma=0.5).generate(1000, rng())
        assert np.all(costs > 0)


class TestBimodalCost:
    def test_two_levels_only(self):
        costs = BimodalCost(1.0, 4.0, 0.3).generate(1000, rng())
        assert set(np.unique(costs)) == {1.0, 4.0}

    def test_fraction_approx(self):
        costs = BimodalCost(1.0, 4.0, 0.3).generate(100_000, rng())
        frac = (costs == 4.0).mean()
        assert frac == pytest.approx(0.3, abs=0.01)

    def test_mean(self):
        assert BimodalCost(1.0, 4.0, 0.25).mean_cost() == pytest.approx(1.75)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BimodalCost(1.0, 2.0, 1.5)


def test_generation_is_deterministic_per_seed():
    for model in (
        JitteredCost(1.0, 0.2),
        LognormalCost(1.0, 0.7),
        BimodalCost(1.0, 3.0, 0.4),
    ):
        a = model.generate(100, np.random.default_rng(42))
        b = model.generate(100, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)
