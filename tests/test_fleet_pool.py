"""Tests for the fault-tolerant fleet pool: parallel equality, crash
recovery, retry exhaustion, LPT ordering, degradation, and the merged
cross-process observability capture."""

import json

import pytest

from repro.amp.presets import odroid_xu4
from repro.errors import FleetError
from repro.experiments.harness import default_configs, grid_specs
from repro.fleet import (
    FleetConfig,
    FleetProgress,
    JobSpec,
    ResultCache,
    require_ok,
    run_jobs,
)
from repro.fleet.pool import CRASH_ONCE_ENV, _lpt_order
from repro.obs.merge import JOB_SCHEMA, comparable_snapshot
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def comparable_json(progress: FleetProgress) -> str:
    """The merged snapshot minus wall-clock fields, as canonical JSON."""
    return json.dumps(
        comparable_snapshot(progress.obs_snapshot()), sort_keys=True
    )


@pytest.fixture()
def small_specs():
    return grid_specs(
        odroid_xu4(),
        [get_program("EP"), get_program("IS")],
        default_configs()[:2],
    )


def test_config_validation():
    with pytest.raises(FleetError):
        FleetConfig(jobs=0)
    with pytest.raises(FleetError):
        FleetConfig(timeout=0)
    with pytest.raises(FleetError):
        FleetConfig(retries=-1)


def test_inline_matches_direct_execution(small_specs):
    outcomes = run_jobs(small_specs, FleetConfig(jobs=1))
    assert [o.spec for o in outcomes] == small_specs
    for outcome, spec in zip(outcomes, small_specs):
        assert outcome.ok and outcome.mode == "inline"
        assert outcome.result.completion_time == spec.execute().completion_time


def test_parallel_matches_inline(small_specs):
    serial = run_jobs(small_specs, FleetConfig(jobs=1))
    parallel = run_jobs(small_specs, FleetConfig(jobs=4))
    # JobResult equality covers obs_json: the worker-side metric capture
    # is part of the result, so this asserts metric equality too.
    assert [o.result for o in parallel] == [o.result for o in serial]
    assert all(o.mode == "process" for o in parallel)
    for o in serial:
        snap = o.result.obs_snapshot()
        assert snap is not None and snap["schema"] == JOB_SCHEMA
        assert snap["metrics"]["counters"]


def test_inline_and_parallel_merge_identical_snapshots(small_specs):
    """Satellite: the jobs=1 inline path feeds the passed progress the
    same per-job captures as the pool path — merged snapshots are
    byte-identical modulo wall-clock fields."""
    inline = FleetProgress()
    pooled = FleetProgress()
    run_jobs(small_specs, FleetConfig(jobs=1), progress=inline)
    run_jobs(small_specs, FleetConfig(jobs=4), progress=pooled)
    assert inline.merged.jobs == pooled.merged.jobs == len(small_specs)
    assert comparable_json(inline) == comparable_json(pooled)


def test_cached_outcomes_replay_their_stored_snapshots(small_specs, tmp_path):
    cache = ResultCache(tmp_path)
    cold_progress = FleetProgress()
    cold = run_jobs(
        small_specs, FleetConfig(jobs=2), cache=cache, progress=cold_progress
    )
    warm_progress = FleetProgress()
    warm = run_jobs(
        small_specs, FleetConfig(jobs=2), cache=cache, progress=warm_progress
    )
    # String equality of the canonical JSON: the cache round-trip is exact.
    assert [o.result.obs_json for o in warm] == [
        o.result.obs_json for o in cold
    ]
    # Fleet counters differ (hits vs misses) but the merged runtime
    # metrics are label-for-label identical.
    cold_doc = comparable_snapshot(cold_progress.obs_snapshot())
    warm_doc = comparable_snapshot(warm_progress.obs_snapshot())
    strip = {
        "fleet_cache_hits", "fleet_cache_misses", "fleet_jobs_computed",
        "fleet_heartbeats_total",
    }
    for doc in (cold_doc, warm_doc):
        doc["metrics"]["counters"] = [
            c for c in doc["metrics"]["counters"] if c["name"] not in strip
        ]
    assert json.dumps(cold_doc, sort_keys=True) == json.dumps(
        warm_doc, sort_keys=True
    )


def test_cache_hits_skip_execution(small_specs, tmp_path):
    cache = ResultCache(tmp_path)
    cold = run_jobs(small_specs, FleetConfig(jobs=2), cache=cache)
    progress = FleetProgress()
    warm = run_jobs(
        small_specs, FleetConfig(jobs=2), cache=cache, progress=progress
    )
    assert [o.result for o in warm] == [o.result for o in cold]
    assert all(o.cached and o.mode == "cache" for o in warm)
    assert progress.count("fleet_cache_hits") == len(small_specs)
    assert progress.count("fleet_jobs_computed") == 0


def test_worker_crash_is_retried(small_specs, tmp_path, monkeypatch):
    marker = tmp_path / "crash.marker"
    monkeypatch.setenv(
        CRASH_ONCE_ENV, f"{small_specs[0].key[:12]}@{marker}"
    )
    progress = FleetProgress()
    outcomes = run_jobs(
        small_specs, FleetConfig(jobs=2), progress=progress
    )
    assert marker.exists(), "the injected crash must have fired"
    assert all(o.ok for o in outcomes), [o.error for o in outcomes]
    assert progress.count("fleet_retries") >= 1
    assert progress.count("fleet_failures") == 0
    # The crash surfaces in the event log, not as a run failure.
    assert any(e["event"] == "retried" for e in progress.events)
    # And recovered results are still exactly the serial results.
    serial = run_jobs(small_specs, FleetConfig(jobs=1))
    assert [o.result for o in outcomes] == [o.result for o in serial]


def test_pool_rebuild_charges_only_the_crashing_job(
    small_specs, tmp_path, monkeypatch
):
    """Regression: a crashed worker breaks the whole pool, resolving the
    innocent in-flight siblings' futures with BrokenProcessPool too. The
    one crash must charge exactly one retry unit — to the crashing job —
    and requeue the siblings uncharged."""
    marker = tmp_path / "crash.marker"
    monkeypatch.setenv(
        CRASH_ONCE_ENV, f"{small_specs[0].key[:12]}@{marker}"
    )
    progress = FleetProgress()
    outcomes = run_jobs(
        small_specs, FleetConfig(jobs=2, retries=1, backoff=0.001),
        progress=progress,
    )
    assert marker.exists(), "the injected crash must have fired"
    assert all(o.ok for o in outcomes), [o.error for o in outcomes]
    by_key = {o.spec.key: o for o in outcomes}
    assert by_key[small_specs[0].key].attempts == 2
    # With the old double-charging, a sibling that died with the pool
    # also burned an attempt; now everyone else completes first try.
    for spec in small_specs[1:]:
        assert by_key[spec.key].attempts == 1, spec.label
    assert progress.count("fleet_retries") == 1
    assert progress.count("fleet_failures") == 0


def test_persistent_failure_exhausts_retries():
    # An oversubscribed team is a deterministic ConfigError at run time:
    # every attempt fails the same way, inline and in workers alike.
    bad = JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", num_threads=64),
        label="doomed",
    )
    progress = FleetProgress()
    outcomes = run_jobs(
        [bad], FleetConfig(jobs=1, retries=1, backoff=0.001),
        progress=progress,
    )
    assert not outcomes[0].ok
    assert outcomes[0].attempts == 2
    assert "ConfigError" in outcomes[0].error
    assert progress.count("fleet_retries") == 1
    assert progress.count("fleet_failures") == 1
    with pytest.raises(FleetError):
        require_ok(outcomes)


def test_failure_in_process_mode_reports_not_raises(small_specs):
    bad = JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", num_threads=64),
    )
    outcomes = run_jobs(
        [*small_specs, bad], FleetConfig(jobs=2, retries=0, backoff=0.001)
    )
    assert [o.ok for o in outcomes] == [True] * len(small_specs) + [False]


def test_lpt_orders_longest_first(small_specs, tmp_path):
    cache = ResultCache(tmp_path)
    durations = [0.5, 4.0, 1.0]
    for spec, d in zip(small_specs[:3], durations):
        cache.note_duration(spec, d)
    order = _lpt_order(small_specs[:3], [0, 1, 2], cache)
    assert order == [1, 2, 0]
    # Unknown durations are assumed long and dispatched first.
    order = _lpt_order(small_specs, [0, 1, 2, 3], cache)
    assert order[0] == 3


def _stuck_worker(spec):
    import time as _time

    _time.sleep(30)


def test_per_job_timeout_fails_stuck_worker(small_specs, monkeypatch):
    monkeypatch.setattr("repro.fleet.pool._worker", _stuck_worker)
    progress = FleetProgress()
    outcomes = run_jobs(
        small_specs[:1],
        FleetConfig(jobs=2, timeout=0.2, retries=0, backoff=0.001),
        progress=progress,
    )
    assert not outcomes[0].ok
    assert "timed out" in outcomes[0].error
    assert progress.count("fleet_timeouts") == 1
    assert progress.count("fleet_failures") == 1


def test_use_processes_false_degrades_to_inline(small_specs):
    outcomes = run_jobs(
        small_specs, FleetConfig(jobs=4, use_processes=False)
    )
    assert all(o.ok and o.mode == "inline" for o in outcomes)


def test_pool_creation_failure_degrades_to_inline(
    small_specs, monkeypatch
):
    def boom(max_workers):
        raise OSError("no processes for you")

    monkeypatch.setattr("repro.fleet.pool._make_pool", boom)
    progress = FleetProgress()
    outcomes = run_jobs(
        small_specs, FleetConfig(jobs=4), progress=progress
    )
    assert all(o.ok and o.mode == "inline" for o in outcomes)
    assert any(e["event"] == "degraded" for e in progress.events)
