"""Unit tests for Program/LoopSpec/SerialPhase structure."""

import pytest

from repro.errors import WorkloadError
from repro.perfmodel.kernel import KernelProfile
from repro.workloads.costmodels import UniformCost
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import Program, SerialPhase

K = KernelProfile(name="k", compute_weight=1.0, ilp=0.0, working_set_mb=0.0)


def loop(name, n=10, work=1.0):
    return LoopSpec(name, n, UniformCost(work), K)


def test_loopspec_rejects_empty():
    with pytest.raises(WorkloadError):
        LoopSpec("empty", 0, UniformCost(1.0), K)


def test_loopspec_total_work():
    assert loop("l", n=10, work=2.0).total_work == 20.0


def test_serial_phase_rejects_negative_work():
    with pytest.raises(WorkloadError):
        SerialPhase("s", work=-1.0, kernel=K)


def test_program_needs_phases():
    with pytest.raises(WorkloadError):
        Program(name="none", suite="t")


def test_program_rejects_duplicate_phase_names():
    with pytest.raises(WorkloadError):
        Program(name="dup", suite="t", body=(loop("x"), loop("x")))


def test_program_rejects_negative_timesteps():
    with pytest.raises(WorkloadError):
        Program(name="neg", suite="t", body=(loop("x"),), timesteps=-1)


def test_schedule_invocation_indices():
    p = Program(
        name="p",
        suite="t",
        setup=(loop("setup_loop"),),
        body=(loop("a"), loop("b")),
        timesteps=3,
    )
    entries = [(ph.name, inv) for ph, inv in p.schedule()]
    assert entries == [
        ("setup_loop", 0),
        ("a", 0), ("b", 0),
        ("a", 1), ("b", 1),
        ("a", 2), ("b", 2),
    ]
    assert p.n_loop_invocations == 7


def test_work_accounting():
    p = Program(
        name="p",
        suite="t",
        setup=(SerialPhase("init", 5.0, K),),
        body=(loop("a", n=10, work=1.0), SerialPhase("glue", 1.0, K)),
        timesteps=4,
    )
    assert p.serial_work == 5.0 + 4 * 1.0
    assert p.parallel_work == 4 * 10.0
    assert len(p.loops()) == 1
    assert len(p.serial_phases()) == 2
