"""Unit tests for AID-hybrid."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sched.aid_hybrid import AidHybridSpec
from repro.sched.aid_static import AidStaticSpec

from tests.helpers import assert_valid_partition, make_loop, run_loop


def test_name_and_validation():
    assert AidHybridSpec().name == "aid_hybrid,80"
    assert AidHybridSpec(percentage=62.5).name == "aid_hybrid,62.5"
    assert AidHybridSpec().requires_bs_mapping
    with pytest.raises(ConfigError):
        AidHybridSpec(percentage=0)
    with pytest.raises(ConfigError):
        AidHybridSpec(percentage=101)
    with pytest.raises(ConfigError):
        AidHybridSpec(dynamic_chunk=0)


def test_partitions_iterations(platform_a):
    for pct in (50, 80, 100):
        result = run_loop(
            platform_a, AidHybridSpec(percentage=pct), n_iterations=777
        )
        assert_valid_partition(result, 777)


def test_dynamic_tail_size(flat2x):
    """With pct%, about (100-pct)% of NI is scheduled in chunk-sized
    dynamic steals after the AID allotments."""
    result = run_loop(
        flat2x, AidHybridSpec(percentage=50, dynamic_chunk=1), n_iterations=1000
    )
    # AID targets cover ~500 iterations; the rest are chunk-1 steals, so
    # the dispatch count is dominated by the ~500-iteration tail.
    assert 400 <= result.dispatches <= 650


def test_hundred_percent_behaves_like_aid_static(flat2x):
    hybrid = run_loop(flat2x, AidHybridSpec(percentage=100), n_iterations=600)
    aid = run_loop(flat2x, AidStaticSpec(), n_iterations=600)
    assert hybrid.end_time == pytest.approx(aid.end_time, rel=1e-9)
    assert hybrid.iterations == aid.iterations


def test_hybrid_fixes_drifting_costs(flat2x):
    """The Fig. 4 effect: when the sampled SF is not representative of
    the whole loop, the dynamic tail absorbs the residual imbalance."""
    n = 1200
    # Strong downward drift: sampling sees expensive iterations first.
    costs = np.linspace(2.0, 0.5, n) * 1e-4
    aid = run_loop(flat2x, AidStaticSpec(), n_iterations=n, costs=costs)
    hybrid = run_loop(
        flat2x, AidHybridSpec(percentage=70), n_iterations=n, costs=costs
    )
    assert hybrid.end_time < aid.end_time
    assert hybrid.imbalance < aid.imbalance


def test_lower_percentage_more_dynamic_behaviour(flat2x):
    r60 = run_loop(flat2x, AidHybridSpec(percentage=60), n_iterations=1000)
    r95 = run_loop(flat2x, AidHybridSpec(percentage=95), n_iterations=1000)
    assert r60.dispatches > r95.dispatches


def test_offline_variant(flat2x):
    result = run_loop(
        flat2x,
        AidHybridSpec(percentage=80, use_offline_sf=True),
        n_iterations=500,
        offline_sf={0: 1.0, 1: 2.0},
    )
    assert_valid_partition(result, 500)
    assert AidHybridSpec(use_offline_sf=True).needs_offline_sf
