"""Tests for the content-addressed fleet result cache."""

from repro.amp.presets import odroid_xu4
from repro.fleet import jobs as jobs_mod
from repro.fleet.cache import ResultCache
from repro.fleet.jobs import JobSpec
from repro.obs import Observability
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def make_spec(seed=0):
    return JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        root_seed=seed,
    )


def test_miss_then_put_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    assert cache.get(spec.key) is None
    result = spec.execute()
    path = cache.put(result)
    assert path.is_file() and path.parent.parent == tmp_path
    assert cache.get(spec.key) == result
    assert len(cache) == 1


def test_different_seed_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(make_spec(seed=0).execute())
    assert cache.get(make_spec(seed=1).key) is None


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.put(spec.execute())
    cache.path_for(spec.key).write_text("{not json", encoding="utf-8")
    assert cache.get(spec.key) is None


def test_corrupt_entry_is_quarantined_and_counted(tmp_path):
    obs = Observability()
    cache = ResultCache(tmp_path, obs=obs)
    spec = make_spec()
    result = spec.execute()
    cache.put(result)
    path = cache.path_for(spec.key)
    path.write_text("{truncated garbage", encoding="utf-8")
    assert cache.get(spec.key) is None
    # The bad bytes moved aside for inspection; the slot is free.
    corrupt = path.with_name(path.name + ".corrupt")
    assert corrupt.is_file()
    assert corrupt.read_text(encoding="utf-8") == "{truncated garbage"
    assert not path.exists()
    counter = obs.registry.counter(
        "fleet_cache_corrupt_total", reason="json"
    )
    assert counter.value == 1
    # A second read of the same digest is a plain miss, not a re-count.
    assert cache.get(spec.key) is None
    assert counter.value == 1
    # The recompute-and-overwrite path works on the freed slot.
    cache.put(result)
    assert cache.get(spec.key) == result


def test_entry_under_the_wrong_digest_is_quarantined(tmp_path):
    cache = ResultCache(tmp_path, obs=Observability())
    spec_a, spec_b = make_spec(seed=0), make_spec(seed=1)
    good = cache.path_for(spec_a.key)
    cache.put(spec_a.execute())
    # Plant spec A's (internally valid) entry at spec B's path.
    wrong = cache.path_for(spec_b.key)
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_text(good.read_text(encoding="utf-8"), encoding="utf-8")
    assert cache.get(spec_b.key) is None
    assert wrong.with_name(wrong.name + ".corrupt").is_file()
    assert cache.obs.registry.counter(
        "fleet_cache_corrupt_total", reason="digest"
    ).value == 1
    # The legitimate entry is untouched.
    assert cache.get(spec_a.key) is not None


def test_stale_salt_misses_without_quarantine(tmp_path, monkeypatch):
    obs = Observability()
    cache = ResultCache(tmp_path, obs=obs)
    spec = make_spec()
    cache.put(spec.execute())
    path = cache.path_for(spec.key)
    monkeypatch.setattr("repro.fleet.cache.CODE_SALT", "v999/other-schema")
    # A version bump is staleness, not corruption: the entry stays put.
    assert cache.get(spec.key) is None
    assert path.is_file()
    assert not path.with_name(path.name + ".corrupt").exists()
    assert not [
        c for c in obs.registry.snapshot()["counters"]
        if c["name"] == "fleet_cache_corrupt_total"
    ]


def test_clear_removes_quarantined_files(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.put(spec.execute())
    cache.path_for(spec.key).write_text("garbage", encoding="utf-8")
    assert cache.get(spec.key) is None
    assert list(tmp_path.rglob("*.corrupt"))
    cache.put(spec.execute())
    assert cache.clear() == 1
    assert not list(tmp_path.rglob("*.corrupt"))


def test_salt_change_invalidates(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.put(spec.execute())
    assert cache.get(spec.key) is not None
    # A new code version changes every digest: old entries never hit.
    monkeypatch.setattr(jobs_mod, "CODE_SALT", "v999/other-schema")
    new_digest = spec.digest()
    assert new_digest != spec.key
    assert cache.get(new_digest) is None
    # Defense in depth: even asking for the *old* digest misses, because
    # the stored salt no longer matches the running code's salt.
    monkeypatch.setattr("repro.fleet.cache.CODE_SALT", "v999/other-schema")
    assert cache.get(spec.key) is None


def test_env_var_selects_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("FLEET_CACHE_DIR", str(tmp_path / "env-cache"))
    cache = ResultCache()
    spec = make_spec()
    cache.put(spec.execute())
    assert (tmp_path / "env-cache").is_dir()
    assert ResultCache().get(spec.key) is not None


def test_duration_estimates_feed_lpt(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    assert cache.duration_estimate(spec) is None
    cache.note_duration(spec, 2.0)
    assert cache.duration_estimate(spec) == 2.0
    cache.note_duration(spec, 1.0)  # EWMA, not last-write-wins
    assert cache.duration_estimate(spec) == 1.5
    # Seeds share a duration profile (same program/schedule/platform).
    assert cache.duration_estimate(make_spec(seed=9)) == 1.5
    # And a fresh cache object reads it back from disk.
    assert ResultCache(tmp_path).duration_estimate(spec) == 1.5


def test_atomic_writes_leave_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(make_spec().execute())
    assert not list(tmp_path.rglob("*.tmp"))


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.put(spec.execute())
    cache.note_duration(spec, 1.0)
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get(spec.key) is None
    assert cache.duration_estimate(spec) is None


# -- backend identity in the digest -------------------------------------------


def test_backend_is_part_of_the_digest(tmp_path):
    # Results computed under one execution backend must never satisfy a
    # lookup for another: the backend name is in the job payload, so the
    # digests are disjoint.
    ref = make_spec()
    vec = JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        root_seed=0,
        backend="vectorized",
    )
    assert ref.payload()["backend"] == "reference"
    assert vec.payload()["backend"] == "vectorized"
    assert ref.key != vec.key

    cache = ResultCache(tmp_path)
    cache.put(ref.execute())
    assert cache.get(ref.key) is not None
    assert cache.get(vec.key) is None


def test_env_selected_backend_pins_into_the_digest(tmp_path, monkeypatch):
    # JobSpec resolves the environment override at construction time, so
    # a spec built under REPRO_BACKEND=vectorized carries (and hashes)
    # the concrete name — shipping it to a fleet worker with a different
    # environment cannot change what it means.
    from repro.backends import ENV_VAR

    monkeypatch.delenv(ENV_VAR, raising=False)
    explicit = JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        root_seed=0,
        backend="vectorized",
    )
    monkeypatch.setenv(ENV_VAR, "vectorized")
    ambient = make_spec()
    assert ambient.backend == "vectorized"
    assert ambient.key == explicit.key


def test_warm_cache_is_backend_local(tmp_path):
    # A grid warmed under the reference backend replays from cache only
    # for reference reruns; switching to vectorized recomputes every
    # cell (and, the simulator being byte-identical, lands on the same
    # numbers).
    from repro.experiments.harness import ScheduleConfig, run_grid
    from repro.fleet.progress import FleetProgress
    from repro.workloads.registry import all_programs

    program = all_programs()[:1]
    configs = (
        ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB")),
        ScheduleConfig("AID-dyn", OmpEnv(schedule="aid_dynamic,1,5")),
    )

    def grid(backend):
        progress = FleetProgress()
        result = run_grid(
            odroid_xu4(), program, configs, jobs=2, cache=tmp_path,
            progress=progress, backend=backend,
        )
        return result, progress.summary()

    cold, s_cold = grid("reference")
    assert s_cold["jobs_computed"] == s_cold["jobs_submitted"] == 2

    warm, s_warm = grid("reference")
    assert s_warm["cache_hits"] == 2 and s_warm["jobs_computed"] == 0

    vec, s_vec = grid("vectorized")
    assert s_vec["cache_hits"] == 0
    assert s_vec["jobs_computed"] == 2
    assert vec.times == cold.times == warm.times
