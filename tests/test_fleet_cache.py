"""Tests for the content-addressed fleet result cache."""

from repro.amp.presets import odroid_xu4
from repro.fleet import jobs as jobs_mod
from repro.fleet.cache import ResultCache
from repro.fleet.jobs import JobSpec
from repro.obs import Observability
from repro.runtime.env import OmpEnv
from repro.workloads.registry import get_program


def make_spec(seed=0):
    return JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        root_seed=seed,
    )


def test_miss_then_put_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    assert cache.get(spec.key) is None
    result = spec.execute()
    path = cache.put(result)
    assert path.is_file() and path.parent.parent == tmp_path
    assert cache.get(spec.key) == result
    assert len(cache) == 1


def test_different_seed_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(make_spec(seed=0).execute())
    assert cache.get(make_spec(seed=1).key) is None


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.put(spec.execute())
    cache.path_for(spec.key).write_text("{not json", encoding="utf-8")
    assert cache.get(spec.key) is None


def test_corrupt_entry_is_quarantined_and_counted(tmp_path):
    obs = Observability()
    cache = ResultCache(tmp_path, obs=obs)
    spec = make_spec()
    result = spec.execute()
    cache.put(result)
    path = cache.path_for(spec.key)
    path.write_text("{truncated garbage", encoding="utf-8")
    assert cache.get(spec.key) is None
    # The bad bytes moved aside for inspection; the slot is free.
    corrupt = path.with_name(path.name + ".corrupt")
    assert corrupt.is_file()
    assert corrupt.read_text(encoding="utf-8") == "{truncated garbage"
    assert not path.exists()
    counter = obs.registry.counter(
        "fleet_cache_corrupt_total", reason="json"
    )
    assert counter.value == 1
    # A second read of the same digest is a plain miss, not a re-count.
    assert cache.get(spec.key) is None
    assert counter.value == 1
    # The recompute-and-overwrite path works on the freed slot.
    cache.put(result)
    assert cache.get(spec.key) == result


def test_entry_under_the_wrong_digest_is_quarantined(tmp_path):
    cache = ResultCache(tmp_path, obs=Observability())
    spec_a, spec_b = make_spec(seed=0), make_spec(seed=1)
    good = cache.path_for(spec_a.key)
    cache.put(spec_a.execute())
    # Plant spec A's (internally valid) entry at spec B's path.
    wrong = cache.path_for(spec_b.key)
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_text(good.read_text(encoding="utf-8"), encoding="utf-8")
    assert cache.get(spec_b.key) is None
    assert wrong.with_name(wrong.name + ".corrupt").is_file()
    assert cache.obs.registry.counter(
        "fleet_cache_corrupt_total", reason="digest"
    ).value == 1
    # The legitimate entry is untouched.
    assert cache.get(spec_a.key) is not None


def test_stale_salt_misses_without_quarantine(tmp_path, monkeypatch):
    obs = Observability()
    cache = ResultCache(tmp_path, obs=obs)
    spec = make_spec()
    cache.put(spec.execute())
    path = cache.path_for(spec.key)
    monkeypatch.setattr("repro.fleet.cache.CODE_SALT", "v999/other-schema")
    # A version bump is staleness, not corruption: the entry stays put.
    assert cache.get(spec.key) is None
    assert path.is_file()
    assert not path.with_name(path.name + ".corrupt").exists()
    assert not [
        c for c in obs.registry.snapshot()["counters"]
        if c["name"] == "fleet_cache_corrupt_total"
    ]


def test_clear_removes_quarantined_files(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.put(spec.execute())
    cache.path_for(spec.key).write_text("garbage", encoding="utf-8")
    assert cache.get(spec.key) is None
    assert list(tmp_path.rglob("*.corrupt"))
    cache.put(spec.execute())
    assert cache.clear() == 1
    assert not list(tmp_path.rglob("*.corrupt"))


def test_salt_change_invalidates(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.put(spec.execute())
    assert cache.get(spec.key) is not None
    # A new code version changes every digest: old entries never hit.
    monkeypatch.setattr(jobs_mod, "CODE_SALT", "v999/other-schema")
    new_digest = spec.digest()
    assert new_digest != spec.key
    assert cache.get(new_digest) is None
    # Defense in depth: even asking for the *old* digest misses, because
    # the stored salt no longer matches the running code's salt.
    monkeypatch.setattr("repro.fleet.cache.CODE_SALT", "v999/other-schema")
    assert cache.get(spec.key) is None


def test_env_var_selects_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("FLEET_CACHE_DIR", str(tmp_path / "env-cache"))
    cache = ResultCache()
    spec = make_spec()
    cache.put(spec.execute())
    assert (tmp_path / "env-cache").is_dir()
    assert ResultCache().get(spec.key) is not None


def test_duration_estimates_feed_lpt(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    assert cache.duration_estimate(spec) is None
    cache.note_duration(spec, 2.0)
    assert cache.duration_estimate(spec) == 2.0
    cache.note_duration(spec, 1.0)  # EWMA, not last-write-wins
    assert cache.duration_estimate(spec) == 1.5
    # Seeds share a duration profile (same program/schedule/platform).
    assert cache.duration_estimate(make_spec(seed=9)) == 1.5
    # And a fresh cache object reads it back from disk.
    assert ResultCache(tmp_path).duration_estimate(spec) == 1.5


def test_atomic_writes_leave_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(make_spec().execute())
    assert not list(tmp_path.rglob("*.tmp"))


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    spec = make_spec()
    cache.put(spec.execute())
    cache.note_duration(spec, 1.0)
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get(spec.key) is None
    assert cache.duration_estimate(spec) is None


# -- backend identity in the digest -------------------------------------------


def test_backend_is_part_of_the_digest(tmp_path):
    # Results computed under one execution backend must never satisfy a
    # lookup for another: the backend name is in the job payload, so the
    # digests are disjoint.
    ref = make_spec()
    vec = JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        root_seed=0,
        backend="vectorized",
    )
    assert ref.payload()["backend"] == "reference"
    assert vec.payload()["backend"] == "vectorized"
    assert ref.key != vec.key

    cache = ResultCache(tmp_path)
    cache.put(ref.execute())
    assert cache.get(ref.key) is not None
    assert cache.get(vec.key) is None


def test_env_selected_backend_pins_into_the_digest(tmp_path, monkeypatch):
    # JobSpec resolves the environment override at construction time, so
    # a spec built under REPRO_BACKEND=vectorized carries (and hashes)
    # the concrete name — shipping it to a fleet worker with a different
    # environment cannot change what it means.
    from repro.backends import ENV_VAR

    monkeypatch.delenv(ENV_VAR, raising=False)
    explicit = JobSpec(
        program=get_program("EP"),
        platform=odroid_xu4(),
        env=OmpEnv(schedule="static", affinity="BS"),
        root_seed=0,
        backend="vectorized",
    )
    monkeypatch.setenv(ENV_VAR, "vectorized")
    ambient = make_spec()
    assert ambient.backend == "vectorized"
    assert ambient.key == explicit.key


def test_warm_cache_is_backend_local(tmp_path):
    # A grid warmed under the reference backend replays from cache only
    # for reference reruns; switching to vectorized recomputes every
    # cell (and, the simulator being byte-identical, lands on the same
    # numbers).
    from repro.experiments.harness import ScheduleConfig, run_grid
    from repro.fleet.progress import FleetProgress
    from repro.workloads.registry import all_programs

    program = all_programs()[:1]
    configs = (
        ScheduleConfig("static(SB)", OmpEnv(schedule="static", affinity="SB")),
        ScheduleConfig("AID-dyn", OmpEnv(schedule="aid_dynamic,1,5")),
    )

    def grid(backend):
        progress = FleetProgress()
        result = run_grid(
            odroid_xu4(), program, configs, jobs=2, cache=tmp_path,
            progress=progress, backend=backend,
        )
        return result, progress.summary()

    cold, s_cold = grid("reference")
    assert s_cold["jobs_computed"] == s_cold["jobs_submitted"] == 2

    warm, s_warm = grid("reference")
    assert s_warm["cache_hits"] == 2 and s_warm["jobs_computed"] == 0

    vec, s_vec = grid("vectorized")
    assert s_vec["cache_hits"] == 0
    assert s_vec["jobs_computed"] == 2
    assert vec.times == cold.times == warm.times


# -- flat->sharded layout migration -------------------------------------------


def flatten(cache: ResultCache) -> None:
    """Rewrite a sharded cache as the legacy flat layout (entries and
    quarantine files in the root, no manifest, no index)."""
    import os

    for shard in list(cache.root.iterdir()):
        if shard.is_dir() and len(shard.name) == 2:
            for entry in list(shard.iterdir()):
                os.replace(entry, cache.root / entry.name)
            shard.rmdir()
    cache.manifest_path.unlink(missing_ok=True)
    cache.index_path.unlink(missing_ok=True)


def test_flat_layout_migrates_transparently(tmp_path):
    from repro.obs import Observability

    staging = ResultCache(tmp_path)
    specs = [make_spec(seed=i) for i in range(2)]
    results = [s.execute() for s in specs]
    for result in results:
        staging.put(result)
    flatten(staging)
    assert (tmp_path / f"{specs[0].key}.json").is_file()
    assert not staging.manifest_path.exists()

    obs = Observability()
    cache = ResultCache(tmp_path, obs=obs)  # fresh handle, legacy disk
    for spec, result in zip(specs, results):
        assert cache.get(spec.key) == result
    # Entries moved into their digest-prefix shards; manifest written.
    assert cache.manifest_ok()
    for spec in specs:
        assert cache.path_for(spec.key).is_file()
        assert not (tmp_path / f"{spec.key}.json").exists()
    assert obs.registry.counter(
        "fleet_cache_migrated_total"
    ).value == len(specs)


def test_migration_never_resurrects_quarantine_next_to_valid_entry(tmp_path):
    """Satellite: a legacy flat cache can hold BOTH a valid entry and a
    stale ``.corrupt`` quarantine file for the same digest. Migration
    must carry the quarantine forward as a quarantine — suffix intact —
    and must not let the garbage shadow or replace the valid entry."""
    staging = ResultCache(tmp_path)
    spec = make_spec()
    result = spec.execute()
    staging.put(result)
    flatten(staging)
    flat_entry = tmp_path / f"{spec.key}.json"
    quarantine = tmp_path / f"{spec.key}.json.corrupt"
    quarantine.write_text("{poisoned bytes", encoding="utf-8")
    assert flat_entry.is_file() and quarantine.is_file()

    cache = ResultCache(tmp_path)
    assert cache.get(spec.key) == result, "valid entry survives migration"
    sharded = cache.path_for(spec.key)
    carried = sharded.with_name(sharded.name + ".corrupt")
    assert carried.is_file(), "quarantine carried forward"
    assert carried.read_text(encoding="utf-8") == "{poisoned bytes"
    assert not quarantine.exists() and not flat_entry.exists()
    # And the scrub still sees a healthy store afterwards.
    report = cache.scrub()
    assert report.ok == 1 and report.quarantined == 0


def test_migration_orphan_quarantine_stays_quarantined(tmp_path):
    """A flat quarantine file with no valid sibling must not become a
    live entry (stripping the suffix would resurrect garbage)."""
    spec = make_spec()
    tmp_path.mkdir(exist_ok=True)
    (tmp_path / f"{spec.key}.json.corrupt").write_text(
        "{garbage", encoding="utf-8"
    )
    cache = ResultCache(tmp_path)
    assert cache.get(spec.key) is None
    sharded = cache.path_for(spec.key)
    assert sharded.with_name(sharded.name + ".corrupt").is_file()
    assert not sharded.exists()


def test_interrupted_migration_prefers_sharded_copy(tmp_path):
    """Re-running migration after an interruption drops flat leftovers
    instead of clobbering already-migrated entries."""
    cache = ResultCache(tmp_path)
    spec = make_spec()
    result = spec.execute()
    cache.put(result)  # already sharded
    # A flat leftover of the same digest (e.g. from a kill mid-move),
    # with different bytes, must lose to the sharded copy.
    (tmp_path / f"{spec.key}.json").write_text("{stale flat copy")
    cache.manifest_path.unlink()
    fresh = ResultCache(tmp_path)
    assert fresh.get(spec.key) == result
    assert not (tmp_path / f"{spec.key}.json").exists()


def test_migration_skips_bookkeeping_and_foreign_files(tmp_path):
    staging = ResultCache(tmp_path)
    spec = make_spec()
    staging.put(spec.execute())
    staging.note_duration(spec, 1.0)
    flatten(staging)
    (tmp_path / "README.txt").write_text("not an entry", encoding="utf-8")
    (tmp_path / "checkpoint.jsonl").write_text("{}\n", encoding="utf-8")
    cache = ResultCache(tmp_path)
    assert cache.get(spec.key) is not None
    assert (tmp_path / "README.txt").is_file()
    assert (tmp_path / "checkpoint.jsonl").is_file()
    assert (tmp_path / "durations.json").is_file()
