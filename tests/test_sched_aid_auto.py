"""Unit tests for AID-auto (the per-loop selection extension)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sched import parse_schedule
from repro.sched.aid_auto import AidAutoSpec
from repro.sched.aid_dynamic import AidDynamicSpec
from repro.sched.aid_hybrid import AidHybridSpec

from tests.helpers import assert_valid_partition, run_loop


def test_name_and_validation():
    assert AidAutoSpec().name == "aid_auto,1,5"
    assert AidAutoSpec(2, 20).name == "aid_auto,2,20"
    assert AidAutoSpec().requires_bs_mapping
    with pytest.raises(ConfigError):
        AidAutoSpec(minor_chunk=0)
    with pytest.raises(ConfigError):
        AidAutoSpec(minor_chunk=5, major_chunk=2)
    with pytest.raises(ConfigError):
        AidAutoSpec(cv_threshold=-0.1)
    with pytest.raises(ConfigError):
        AidAutoSpec(static_percentage=0)


def test_registry_round_trip():
    assert parse_schedule("aid_auto") == AidAutoSpec()
    assert parse_schedule("aid_auto,2,20") == AidAutoSpec(2, 20)
    with pytest.raises(ConfigError):
        parse_schedule("aid_auto,2")


def test_partitions_uniform_and_irregular(platform_a):
    rng = np.random.default_rng(1)
    for costs in (None, rng.lognormal(-9.0, 1.0, 777)):
        result = run_loop(platform_a, AidAutoSpec(), n_iterations=777, costs=costs)
        assert_valid_partition(result, 777)


def test_uniform_loop_selects_one_shot(flat2x):
    result = run_loop(flat2x, AidAutoSpec(), n_iterations=1000)
    sched = result.extra["scheduler"]
    assert sched.mode == "static"
    assert sched.measured_cv is not None and sched.measured_cv < 0.22
    # One-shot: dispatches ~ sampling + 4 allotments + 15% tail.
    assert result.dispatches < 250


def test_irregular_loop_selects_phases(flat2x):
    rng = np.random.default_rng(2)
    costs = rng.lognormal(-9.0, 1.0, 1000)
    result = run_loop(flat2x, AidAutoSpec(), n_iterations=1000, costs=costs)
    sched = result.extra["scheduler"]
    assert sched.mode == "dynamic"
    assert sched.measured_cv > 0.22


def test_estimated_sf_on_flat_platform(flat2x):
    result = run_loop(flat2x, AidAutoSpec(), n_iterations=800)
    assert result.estimated_sf[1] == pytest.approx(2.0, rel=0.15)


def test_tracks_hybrid_on_uniform_loops(flat2x):
    auto = run_loop(flat2x, AidAutoSpec(), n_iterations=1200)
    hybrid = run_loop(flat2x, AidHybridSpec(85), n_iterations=1200)
    assert auto.end_time <= hybrid.end_time * 1.05


def test_tracks_aid_dynamic_on_irregular_loops(flat2x):
    rng = np.random.default_rng(3)
    costs = rng.lognormal(-9.0, 0.9, 2000)
    auto = run_loop(flat2x, AidAutoSpec(), n_iterations=2000, costs=costs)
    aidd = run_loop(flat2x, AidDynamicSpec(1, 5), n_iterations=2000, costs=costs)
    assert auto.end_time <= aidd.end_time * 1.05


def test_tiny_loops_terminate(flat2x):
    for n in (1, 2, 5, 8, 9):
        result = run_loop(flat2x, AidAutoSpec(), n_iterations=n)
        assert sum(result.iterations) == n


def test_three_core_types(tri_platform):
    result = run_loop(tri_platform, AidAutoSpec(), n_iterations=900)
    assert_valid_partition(result, 900)


def test_cv_threshold_extremes(flat2x):
    rng = np.random.default_rng(4)
    costs = rng.lognormal(-9.0, 0.8, 600)
    always_static = run_loop(
        flat2x, AidAutoSpec(cv_threshold=1e9), n_iterations=600, costs=costs
    )
    always_dynamic = run_loop(
        flat2x, AidAutoSpec(cv_threshold=0.0), n_iterations=600, costs=costs
    )
    assert always_static.extra["scheduler"].mode == "static"
    assert always_dynamic.extra["scheduler"].mode == "dynamic"


def test_real_threads():
    from repro.exec_real import ThreadTeam

    team = ThreadTeam(4)
    counter = np.zeros(1200, dtype=np.int64)

    def body(tid, lo, hi):
        counter[lo:hi] += 1

    team.parallel_for(1200, body, AidAutoSpec())
    assert counter.sum() == 1200 and counter.max() == 1
