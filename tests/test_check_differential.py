"""Tests for the differential AID-validation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.differential import (
    makespan_bounds,
    reference_schedule,
    run_differential,
    team_rates,
)
from repro.check.generators import preset_platform


class TestReferenceSchedule:
    def test_single_worker_sums_costs(self):
        costs = np.array([1.0, 2.0, 3.0])
        ref = reference_schedule(costs, [1.0])
        assert ref["makespan"] == pytest.approx(6.0)
        assert ref["iterations"] == [3]

    def test_balanced_two_workers(self):
        costs = np.ones(10)
        ref = reference_schedule(costs, [1.0, 1.0])
        assert ref["makespan"] == pytest.approx(5.0)
        assert sorted(ref["iterations"]) == [5, 5]

    def test_fast_worker_gets_more(self):
        costs = np.ones(30)
        ref = reference_schedule(costs, [1.0, 2.0])
        assert ref["iterations"][1] > ref["iterations"][0]
        assert sum(ref["iterations"]) == 30

    def test_reference_respects_bounds(self):
        rng = np.random.default_rng(11)
        costs = rng.uniform(0.5, 2.0, size=64)
        rates = [1.0, 1.5, 2.0]
        lower, upper = makespan_bounds(costs, rates)
        ref = reference_schedule(costs, rates)
        assert lower <= ref["makespan"] <= upper


class TestTeamRates:
    def test_big_cores_rate_higher(self):
        rates = team_rates(preset_platform("dual:2:2"))
        assert max(rates) > min(rates)

    def test_thread_count_respected(self):
        assert len(team_rates(preset_platform("odroid_xu4"), 4)) == 4


class TestRunDifferential:
    def test_all_variants_agree_on_odroid(self):
        report = run_differential(
            platform="odroid_xu4", n_iterations=96, include_real=False
        )
        assert report.ok, report.render()
        assert len(report.entries) == 5
        for entry in report.entries:
            assert entry.makespan is not None
            lo, hi = report.bounds
            assert lo <= entry.makespan <= hi

    def test_real_executor_entries_pass_the_oracle(self):
        report = run_differential(
            platform="dual:2:2", n_iterations=64, include_real=True
        )
        assert report.ok, report.render()
        modes = {e.mode for e in report.entries}
        assert modes == {"sim", "real"}

    def test_render_lists_every_entry(self):
        report = run_differential(
            platform="xeon_emulated", n_iterations=48, include_real=False
        )
        rendered = report.render()
        for entry in report.entries:
            assert entry.variant in rendered
