"""Unit tests for dynamic scheduling."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.perfmodel.overhead import OverheadModel, ZERO_OVERHEAD
from repro.sched.dynamic import DynamicSpec
from repro.sched.static import StaticSpec

from tests.helpers import assert_valid_partition, run_loop


def test_name_and_validation():
    assert DynamicSpec().name == "dynamic,1"
    assert DynamicSpec(chunk=4).name == "dynamic,4"
    with pytest.raises(ConfigError):
        DynamicSpec(chunk=0)


def test_partitions_iterations(platform_a):
    for chunk in (1, 3, 16, 1000):
        result = run_loop(
            platform_a, DynamicSpec(chunk), n_iterations=257
        )
        assert_valid_partition(result, 257)


def test_chunk_sizes_respected(platform_a):
    result = run_loop(platform_a, DynamicSpec(8), n_iterations=100)
    sizes = [hi - lo for _, lo, hi in result.ranges]
    assert all(s == 8 for s in sizes[:-1])
    assert sizes[-1] == 100 % 8 or sizes[-1] == 8


def test_dispatch_count(platform_a):
    result = run_loop(platform_a, DynamicSpec(1), n_iterations=128)
    assert result.dispatches == 128


def test_big_cores_automatically_take_more(flat2x):
    """The paper's core observation about dynamic on AMPs: faster cores
    come back to the pool more often and absorb more iterations."""
    result = run_loop(flat2x, DynamicSpec(1), n_iterations=600)
    big = sum(result.iterations[:2])
    small = sum(result.iterations[2:])
    # 2x speedup -> big cores should take about 2/3 of the work.
    assert big / small == pytest.approx(2.0, rel=0.15)


def test_dynamic_balances_better_than_static_on_amp(flat2x):
    static = run_loop(flat2x, StaticSpec(), n_iterations=600)
    dynamic = run_loop(flat2x, DynamicSpec(1), n_iterations=600)
    assert dynamic.end_time < static.end_time
    assert dynamic.imbalance < static.imbalance


def test_overhead_makes_fine_grained_dynamic_lose(flat2x):
    """The paper's counter-observation: when iteration cost approaches
    dispatch cost, dynamic's overhead negates its balance."""
    overhead = OverheadModel()
    work = overhead.dispatch_cost  # 1 us of work per iteration
    static = run_loop(
        flat2x, StaticSpec(), n_iterations=2000, work=work, overhead=overhead
    )
    dynamic = run_loop(
        flat2x, DynamicSpec(1), n_iterations=2000, work=work, overhead=overhead
    )
    assert dynamic.end_time > static.end_time


def test_larger_chunks_reduce_dispatches_but_risk_imbalance(flat2x):
    fine = run_loop(flat2x, DynamicSpec(1), n_iterations=512)
    coarse = run_loop(flat2x, DynamicSpec(128), n_iterations=512)
    assert coarse.dispatches < fine.dispatches
    assert coarse.imbalance > fine.imbalance


def test_uneven_costs_absorbed(platform_a):
    rng = np.random.default_rng(0)
    costs = rng.lognormal(-9.5, 1.0, size=300)
    result = run_loop(
        platform_a, DynamicSpec(1), n_iterations=300, costs=costs
    )
    assert_valid_partition(result, 300)
    assert result.imbalance < 0.2
