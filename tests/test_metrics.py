"""Unit tests for metrics and aggregation."""

import pytest

from repro.errors import ExperimentError
from repro.metrics.imbalance import load_imbalance, mean_imbalance, thread_utilization
from repro.metrics.stats import (
    geometric_mean,
    normalized_performance,
    relative_gain,
    summarize_gains,
)
from repro.runtime.executor import LoopResult


def make_result(finishes, start=0.0):
    return LoopResult(
        loop_name="l",
        start_time=start,
        end_time=max(finishes),
        finish_times=list(finishes),
        iterations=[1] * len(finishes),
        dispatches=0,
        scheduler_calls=0,
    )


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_bad_input(self):
        with pytest.raises(ExperimentError):
            geometric_mean([])
        with pytest.raises(ExperimentError):
            geometric_mean([1.0, 0.0])

    def test_normalized_performance(self):
        assert normalized_performance(2.0, 1.0) == 2.0  # twice as fast
        assert normalized_performance(2.0, 4.0) == 0.5

    def test_relative_gain(self):
        assert relative_gain(1.15, 1.0) == pytest.approx(0.15)
        assert relative_gain(1.0, 1.25) == pytest.approx(-0.2)

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ExperimentError):
            normalized_performance(0.0, 1.0)
        with pytest.raises(ExperimentError):
            relative_gain(1.0, -1.0)

    def test_summarize_gains_matches_paper_convention(self):
        times = {"a": 1.0, "b": 2.0}
        ref = {"a": 1.2, "b": 2.2}
        out = summarize_gains(times, ref)
        mean = ((1.2 / 1.0 - 1) + (2.2 / 2.0 - 1)) / 2
        gmean = ((1.2 / 1.0) * (2.2 / 2.0)) ** 0.5 - 1
        assert out["mean"] == pytest.approx(mean)
        assert out["gmean"] == pytest.approx(gmean)
        assert out["gmean"] <= out["mean"]

    def test_summarize_gains_program_mismatch(self):
        with pytest.raises(ExperimentError):
            summarize_gains({"a": 1.0}, {"b": 1.0})
        with pytest.raises(ExperimentError):
            summarize_gains({}, {})


class TestImbalance:
    def test_balanced_loop(self):
        r = make_result([1.0, 1.0, 1.0])
        assert load_imbalance(r) == 0.0
        assert thread_utilization(r) == [1.0, 1.0, 1.0]

    def test_imbalanced_loop(self):
        r = make_result([0.5, 1.0])
        assert load_imbalance(r) == pytest.approx(0.5)
        assert thread_utilization(r) == [0.5, 1.0]

    def test_start_offset_handled(self):
        r = make_result([2.5, 3.0], start=2.0)
        assert load_imbalance(r) == pytest.approx(0.5)

    def test_mean_imbalance(self):
        rs = [make_result([0.5, 1.0]), make_result([1.0, 1.0])]
        assert mean_imbalance(rs) == pytest.approx(0.25)
        with pytest.raises(ExperimentError):
            mean_imbalance([])

    def test_zero_duration_rejected(self):
        r = make_result([0.0, 0.0])
        with pytest.raises(ExperimentError):
            thread_utilization(r)
