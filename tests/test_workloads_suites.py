"""Tests over the 21 benchmark models (structure, registry, SF ranges)."""

import numpy as np
import pytest

from repro.amp.presets import odroid_xu4, xeon_emulated
from repro.errors import WorkloadError
from repro.perfmodel.speed import PerfModel
from repro.sim.rng import RngStreams
from repro.workloads.loopspec import LoopSpec
from repro.workloads.program import SerialPhase
from repro.workloads.registry import all_programs, get_program, program_names


def test_exactly_21_programs():
    """The paper evaluates 21 benchmarks (7 NAS + 3 PARSEC + 11 Rodinia)."""
    programs = all_programs()
    assert len(programs) == 21
    by_suite = {}
    for p in programs:
        by_suite.setdefault(p.suite, []).append(p.name)
    assert len(by_suite["NAS"]) == 7
    assert len(by_suite["PARSEC"]) == 3
    assert len(by_suite["Rodinia"]) == 11


def test_names_unique():
    names = program_names()
    assert len(set(names)) == len(names)


def test_get_program_case_insensitive():
    assert get_program("ep").name == "EP"
    assert get_program("BLACKSCHOLES").name == "blackscholes"


def test_get_program_unknown():
    with pytest.raises(WorkloadError):
        get_program("doom")


def test_paper_named_programs_present():
    for name in [
        "BT", "CG", "EP", "FT", "IS", "MG", "SP",
        "blackscholes", "bodytrack", "streamcluster",
        "bfs", "bptree", "hotspot3D", "lavamd", "leukocyte",
        "particlefilter", "sradv1", "sradv2",
    ]:
        get_program(name)


def test_every_program_has_parallel_work():
    for p in all_programs():
        assert p.loops(), f"{p.name} has no parallel loops"
        assert p.parallel_work > 0


def test_costs_are_deterministic_and_positive():
    streams = RngStreams(0)
    for p in all_programs():
        for loop in p.loops():
            c1 = loop.costs(streams, p.name, 0)
            c2 = loop.costs(streams, p.name, 0)
            np.testing.assert_array_equal(c1, c2)
            assert np.all(c1 >= 0)
            assert len(c1) == loop.n_iterations


def test_invocations_differ_for_stochastic_models():
    streams = RngStreams(0)
    ft = get_program("FT")
    loop = next(l for l in ft.loops() if l.name == "ft.fft_xy")
    c0 = loop.costs(streams, ft.name, 0)
    c1 = loop.costs(streams, ft.name, 1)
    assert not np.array_equal(c0, c1)


def test_ep_is_single_loop_program():
    ep = get_program("EP")
    assert len(ep.loops()) == 1
    assert ep.timesteps == 1


def test_bptree_is_serial_dominated():
    """Paper: b+tree's init takes the vast majority of the execution."""
    bpt = get_program("bptree")
    assert bpt.serial_work > 2 * bpt.parallel_work


def test_particlefilter_has_ascending_ramp():
    """Paper: pf's final iterations are heavier than the first."""
    pf = get_program("particlefilter")
    loop = next(l for l in pf.loops() if "likelihood" in l.name)
    costs = loop.costs(RngStreams(0), pf.name, 0)
    assert costs[-1] > 2 * costs[0]


def test_schedule_order_setup_then_body():
    p = get_program("CG")
    phases = list(p.schedule())
    assert isinstance(phases[0][0], SerialPhase)
    loop_phases = [ph for ph, _ in phases if isinstance(ph, LoopSpec)]
    assert len(loop_phases) == p.n_loop_invocations


def test_platform_a_offline_sf_spread():
    """Fig. 2's premise: per-loop SFs vary widely on Platform A, with a
    maximum in the high single digits."""
    perf = PerfModel(odroid_xu4())
    sfs = [
        perf.speedup_factor(loop.kernel)
        for p in all_programs()
        for loop in p.loops()
    ]
    assert min(sfs) < 1.6
    assert 5.5 <= max(sfs) <= 9.5
    assert np.std(sfs) > 0.5


def test_platform_b_offline_sf_capped():
    """Paper: Platform B SFs top out around 2.3x."""
    perf = PerfModel(xeon_emulated())
    sfs = [
        perf.speedup_factor(loop.kernel)
        for p in all_programs()
        for loop in p.loops()
    ]
    assert max(sfs) <= 2.4
    assert min(sfs) >= 1.0


def test_per_platform_profiles_differ():
    """Fig. 2's second premise: the SF profile of a program on A looks
    nothing like on B."""
    perf_a = PerfModel(odroid_xu4())
    perf_b = PerfModel(xeon_emulated())
    bt = get_program("BT")
    sf_a = [perf_a.speedup_factor(l.kernel) for l in bt.loops()]
    sf_b = [perf_b.speedup_factor(l.kernel) for l in bt.loops()]
    # Not simply proportional: correlation of ranks may differ; check the
    # ratio is not constant.
    ratios = [a / b for a, b in zip(sf_a, sf_b)]
    assert max(ratios) / min(ratios) > 1.3
