"""Oracle end-to-end tests: live runs, timelines and on-disk payloads."""

from __future__ import annotations

import copy

from repro.check.generators import preset_platform, run_loop
from repro.check.oracle import verify_loop, verify_payload, verify_timeline
from repro.check.recording import CheckContext
from repro.obs import Observability
from repro.obs.snapshot import build_snapshot
from repro.sched.registry import parse_schedule
from repro.tracing.trace import ThreadState, TraceRecorder
from tests.helpers import assert_valid_partition


class TestVerifyLoop:
    def test_clean_run_produces_ok_report(self):
        check = CheckContext()
        trace = TraceRecorder()
        result = run_loop(
            preset_platform("odroid_xu4"),
            parse_schedule("aid_dynamic,1,5"),
            n_iterations=64,
            trace=trace,
            check=check,
        )
        assert_valid_partition(result, 64)
        report = verify_loop(check, trace)
        assert report.ok, report.render(trace)
        assert report.scheduler == "aid_dynamic"
        assert report.n_iterations == 64
        assert report.stats["dispatches"] > 0
        assert "OK" in report.render()

    def test_all_variants_pass_on_both_presets(self):
        for platform in ("odroid_xu4", "xeon_emulated"):
            for schedule in (
                "aid_static",
                "aid_hybrid,80",
                "aid_dynamic,1,5",
                "aid_auto,1,5",
                "aid_steal,8",
            ):
                check = CheckContext()
                run_loop(
                    preset_platform(platform),
                    parse_schedule(schedule),
                    n_iterations=48,
                    check=check,
                )
                report = verify_loop(check)
                assert report.ok, f"{platform}/{schedule}: {report.render()}"

    def test_failing_report_renders_schedule_excerpt(self):
        check = CheckContext()
        trace = TraceRecorder()
        run_loop(
            preset_platform("dual:2:2"),
            parse_schedule("aid_static"),
            n_iterations=16,
            trace=trace,
            check=check,
        )
        # corrupt the observation: drop the last granted take, so one
        # dispatched range never came out of the pool
        idx = max(i for i, ev in enumerate(check.takes) if ev.granted)
        del check.takes[idx]
        report = verify_loop(check, trace)
        assert not report.ok
        rendered = report.render(trace)
        assert "schedule excerpt" in rendered
        assert "T0" in rendered

    def test_check_decision_log_is_populated_without_obs(self):
        # The tee emitter must record decisions even when no obs layer
        # is attached (the executor defaults to the null sink).
        check = CheckContext()
        run_loop(
            preset_platform("odroid_xu4"),
            parse_schedule("aid_dynamic,1,5"),
            n_iterations=32,
            check=check,
        )
        events = {r["event"] for r in check.decisions.records}
        assert "sample_start" in events
        assert events & {"publish_targets", "publish_ratio", "decide"}


class TestVerifyTimeline:
    def test_clean_trace_passes(self):
        trace = TraceRecorder()
        run_loop(
            preset_platform("odroid_xu4"),
            parse_schedule("aid_static"),
            n_iterations=32,
            trace=trace,
        )
        assert verify_timeline(trace) == []

    def test_overlapping_intervals_flagged(self):
        trace = TraceRecorder()
        trace.record(0, ThreadState.COMPUTE, 0.0, 1.0, "l")
        trace.record(0, ThreadState.COMPUTE, 0.5, 1.5, "l")
        names = {v.invariant for v in verify_timeline(trace)}
        assert "timeline-overlap" in names

    def test_partial_barrier_flagged(self):
        trace = TraceRecorder()
        trace.record(0, ThreadState.COMPUTE, 0.0, 1.0, "l")
        trace.record(1, ThreadState.COMPUTE, 0.0, 0.4, "l")
        trace.record(1, ThreadState.BARRIER, 0.4, 1.0, "l")
        names = {v.invariant for v in verify_timeline(trace)}
        assert "barrier-complete" in names


class TestVerifyPayload:
    def _snapshot(self) -> dict:
        obs = Observability()
        obs.registry.counter("x_total").inc(3)
        obs.decisions.record(loop="l", scheduler="s", tid=0, t=0.0, event="e")
        return build_snapshot(obs, meta={"k": "v"})

    def test_valid_snapshot_passes(self):
        report = verify_payload(self._snapshot())
        assert report.ok, report.render()

    def test_negative_counter_flagged(self):
        payload = copy.deepcopy(self._snapshot())
        payload["metrics"]["counters"][0]["value"] = -1
        report = verify_payload(payload)
        assert any(
            v.invariant == "payload-counters" for v in report.violations
        )

    def test_out_of_order_decision_seq_flagged(self):
        payload = copy.deepcopy(self._snapshot())
        payload["decisions"][0]["seq"] = 7
        report = verify_payload(payload)
        assert any(
            v.invariant == "payload-decisions" for v in report.violations
        )

    def test_unknown_payload_flagged(self):
        report = verify_payload({"whatever": 1})
        assert not report.ok

    def _grid(self) -> dict:
        return {
            "programs": {
                "p1": [
                    {
                        "scheme": "static(SB)",
                        "completion_time": 2.0,
                        "normalized_performance": 1.0,
                    },
                    {
                        "scheme": "aid_dynamic",
                        "completion_time": 1.0,
                        "normalized_performance": 2.0,
                    },
                ]
            },
            "schemes": ["static(SB)", "aid_dynamic"],
            "baseline": "static(SB)",
        }

    def test_valid_grid_passes(self):
        assert verify_payload(self._grid()).ok

    def test_missing_scheme_flagged(self):
        payload = self._grid()
        payload["programs"]["p1"].pop()
        report = verify_payload(payload)
        assert any(v.invariant == "payload-grid" for v in report.violations)

    def test_wrong_normalization_flagged(self):
        payload = self._grid()
        payload["programs"]["p1"][1]["normalized_performance"] = 3.0
        report = verify_payload(payload)
        assert any(
            "normalized_performance" in v.message for v in report.violations
        )

    def test_non_positive_completion_time_flagged(self):
        payload = self._grid()
        payload["programs"]["p1"][1]["completion_time"] = 0.0
        report = verify_payload(payload)
        assert any(v.invariant == "payload-grid" for v in report.violations)
