"""Critical-path extraction: exact attribution, sim-time reconciliation,
backend byte-identity on the grid, the timeline lane, and the diff
gate's critical-path regression class."""

import copy
import json

import pytest

from repro.amp.presets import odroid_xu4
from repro.check.generators import FuzzCase, case_costs
from repro.faults.model import FaultPlan, ThrottleEvent
from repro.obs import Observability, SpanRecorder, diff_snapshots
from repro.obs.critpath import (
    CRITPATH_SCHEMA,
    critpath_violations,
    extract_critical_path,
    format_critpath,
    ordering_edges,
    reconcile,
    span_category_totals,
)
from repro.obs.diff import DiffThresholds
from repro.obs.report import critpath_lane, timeline
from repro.obs.snapshot import build_snapshot
from repro.runtime.env import OmpEnv
from repro.runtime.program_runner import ProgramRunner
from repro.sched.registry import parse_schedule
from repro.workloads.registry import get_program

from .helpers import preset_platform, run_loop

SCHEDULES = (
    "static", "dynamic,8", "guided", "aid_static", "aid_hybrid",
    "aid_dynamic", "aid_auto", "aid_steal",
)


def traced_snapshot(schedule: str, platform: str = "odroid_xu4", **kw):
    """(snapshot with spans, LoopResult) for one traced run_loop."""
    obs = Observability(spans=SpanRecorder(context="test"))
    result = run_loop(
        preset_platform(platform), parse_schedule(schedule), obs=obs, **kw
    )
    return build_snapshot(obs, meta={"schedule": schedule}), result


class TestExtraction:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_attribution_sums_to_the_makespan(self, schedule):
        snap, result = traced_snapshot(schedule)
        cp = extract_critical_path(snap["spans"])
        assert cp["schema"] == CRITPATH_SCHEMA
        total = sum(cp["attribution"].values())
        assert abs(total - cp["makespan"]) <= 1e-9 * max(1.0, cp["makespan"])
        # The path ends at loop completion.
        assert cp["t1"] == pytest.approx(result.duration, rel=0, abs=1e-12)
        assert critpath_violations(snap["spans"]) == []

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_reconciles_against_sim_time_counters(self, schedule):
        snap, _ = traced_snapshot(schedule)
        assert reconcile(snap["spans"], snap) == []

    def test_degenerate_serial_path_is_the_whole_run(self):
        snap, result = traced_snapshot("static", n_threads=1)
        cp = extract_critical_path(snap["spans"])
        # One thread: the critical path is the thread's entire tiling.
        assert cp["makespan"] == pytest.approx(
            result.duration, rel=0, abs=1e-12
        )
        assert critpath_violations(snap["spans"]) == []

    def test_empty_document_extracts_an_empty_path(self):
        cp = extract_critical_path(
            {"schema": "repro.obs.spans/v1", "spans": [], "edges": []}
        )
        assert cp["makespan"] == 0.0 and cp["steps"] == []

    def test_steps_are_contiguous_and_monotone(self):
        snap, _ = traced_snapshot("aid_hybrid")
        steps = extract_critical_path(snap["spans"])["steps"]
        assert steps
        for a, b in zip(steps, steps[1:]):
            assert b["t0"] == pytest.approx(a["t1"], abs=1e-12)
            assert b["t1"] >= b["t0"]

    def test_faulted_run_still_telescopes(self):
        platform = preset_platform("odroid_xu4")
        baseline = run_loop(
            platform, parse_schedule("aid_auto"), n_iterations=2048,
            work=1e-5,
        )
        big = platform.cores_of_type(platform.core_types[-1])
        plan = FaultPlan(tuple(
            ThrottleEvent(cpu=c.cpu_id, t0=0.3 * baseline.duration,
                          t1=10.0, factor=0.25)
            for c in big
        ))
        obs = Observability(spans=SpanRecorder())
        run_loop(
            platform, parse_schedule("aid_auto"), n_iterations=2048,
            work=1e-5, obs=obs, faults=plan,
        )
        doc = obs.spans.as_doc()
        assert critpath_violations(doc) == []
        snap = build_snapshot(obs, meta={})
        assert reconcile(doc, snap) == []

    def test_ordering_edges_follow_pool_order(self):
        snap, _ = traced_snapshot("dynamic,4")
        edges = ordering_edges(snap["spans"])
        assert edges
        spans = {s["id"]: s for s in snap["spans"]["spans"]}
        for e in edges:
            assert e["kind"] == "pool_order"
            a, b = spans[e["src"]], spans[e["dst"]]
            assert int(b["attrs"]["lo"]) >= int(a["attrs"]["hi"])

    def test_format_critpath_renders_every_category(self):
        snap, _ = traced_snapshot("aid_hybrid")
        cp = extract_critical_path(snap["spans"])
        text = format_critpath(cp)
        assert "critical path:" in text
        for cat in cp["attribution"]:
            assert cat in text


class TestFuzzStyleCases:
    CASES = [
        FuzzCase(seed=s, schedule=sched, platform=plat,
                 n_iterations=ni, cost=cost)
        for s, sched, plat, ni, cost in (
            (11, "aid_static", "odroid_xu4", 384, ("jittered", 1e-4, 0.3, 0.2)),
            (12, "aid_dynamic,1,5", "xeon_emulated", 512, ("ramp", 1e-4, 4.0)),
            (13, "aid_steal,8", "odroid_xu4", 640, ("ramp", 1e-4, 8.0)),
            (14, "dynamic,2", "xeon_emulated", 256, ("bimodal", 1e-4, 5.0, 0.2)),
        )
    ]

    @pytest.mark.parametrize(
        "case", CASES, ids=lambda c: f"seed{c.seed}-{c.schedule}"
    )
    def test_no_violations_and_exact_reconcile(self, case):
        obs = Observability(spans=SpanRecorder())
        run_loop(
            case.build_platform(), case.build_spec(),
            n_iterations=case.n_iterations, costs=case_costs(case),
            overhead=case.overhead_model(), obs=obs,
        )
        doc = obs.spans.as_doc()
        snap = build_snapshot(obs, meta={})
        assert critpath_violations(doc) == []
        assert reconcile(doc, snap) == []


class TestGridAcceptance:
    """Fig. 6-style acceptance: per-program attribution sums to the
    makespan within 1e-9, agrees with the sim-time counters, and is
    byte-identical across backends."""

    PROGRAMS = ("EP", "CG")
    CONFIGS = ("static", "aid_hybrid")

    def run_program(self, program, schedule, backend=None):
        obs = Observability(spans=SpanRecorder(context="grid"))
        runner = ProgramRunner(
            odroid_xu4(), OmpEnv(schedule=schedule, num_threads=8),
            obs=obs, backend=backend,
        )
        result = runner.run(get_program(program))
        return build_snapshot(obs, meta={}), result

    @pytest.mark.parametrize("program", PROGRAMS)
    @pytest.mark.parametrize("schedule", CONFIGS)
    def test_attribution_matches_makespan_and_counters(
        self, program, schedule
    ):
        snap, result = self.run_program(program, schedule)
        doc = snap["spans"]
        cp = extract_critical_path(doc)
        total = sum(cp["attribution"].values())
        assert abs(total - cp["makespan"]) <= 1e-9 * max(1.0, cp["makespan"])
        assert cp["t1"] == pytest.approx(
            result.completion_time, rel=0, abs=1e-12
        )
        assert reconcile(doc, snap) == []
        # The full span tree accounts every sim-time category per loop.
        assert span_category_totals(doc)

    @pytest.mark.parametrize("program", PROGRAMS)
    def test_backends_agree_byte_for_byte(self, program):
        ref, _ = self.run_program(program, "aid_hybrid", backend="reference")
        vec, _ = self.run_program(program, "aid_hybrid", backend="vectorized")
        assert json.dumps(ref["spans"], sort_keys=True) == json.dumps(
            vec["spans"], sort_keys=True
        )
        assert extract_critical_path(ref["spans"]) == extract_critical_path(
            vec["spans"]
        )


class TestTimelineLane:
    def test_lane_uses_category_glyphs_and_fills_the_width(self):
        snap, _ = traced_snapshot("aid_hybrid")
        cp = extract_critical_path(snap["spans"])
        lane = critpath_lane(cp, width=40)
        assert len(lane) == 40
        assert set(lane) <= set("#=dsSx. ")
        assert set(lane) != {" "}

    def test_timeline_report_includes_the_critpath_section(self):
        snap, _ = traced_snapshot("aid_hybrid")
        text = timeline(snap)
        assert "critical path" in text
        assert "makespan=" in text

    def test_timeline_without_spans_has_no_critpath_section(self):
        obs = Observability()
        run_loop(preset_platform("odroid_xu4"), parse_schedule("static"),
                 obs=obs)
        text = timeline(build_snapshot(obs, meta={}))
        assert "critical path" not in text


class TestDiffCriticalPathClass:
    def test_identical_snapshots_do_not_flag(self):
        snap, _ = traced_snapshot("aid_hybrid")
        diff = diff_snapshots(snap, copy.deepcopy(snap))
        assert not [e for e in diff.entries if e.kind == "critical-path"]
        assert not diff.regressions

    def test_slower_critical_path_regresses(self):
        snap, _ = traced_snapshot("aid_hybrid")
        slower = copy.deepcopy(snap)
        for s in slower["spans"]["spans"]:
            s["t0"] *= 1.5
            s["t1"] *= 1.5
        entries = [
            e for e in diff_snapshots(
                snap, slower, DiffThresholds(metric_rel=1e9, hist_dist=1e9)
            ).entries
            if e.kind == "critical-path"
        ]
        assert any(e.severity == "regression" for e in entries)
        assert any(e.name == "makespan" for e in entries)

    def test_faster_critical_path_is_informational(self):
        snap, _ = traced_snapshot("aid_hybrid")
        faster = copy.deepcopy(snap)
        for s in faster["spans"]["spans"]:
            s["t0"] *= 0.5
            s["t1"] *= 0.5
        entries = [
            e for e in diff_snapshots(
                snap, faster, DiffThresholds(metric_rel=1e9, hist_dist=1e9)
            ).entries
            if e.kind == "critical-path"
        ]
        assert entries
        assert all(e.severity in ("info", "change") for e in entries)

    def test_job_traced_on_one_side_only_regresses(self):
        snap, _ = traced_snapshot("aid_hybrid")
        doc = snap["spans"]
        merged_a = copy.deepcopy(snap)
        merged_a["spans"] = [{"labels": {"program": "EP"}, "doc": doc}]
        merged_b = copy.deepcopy(snap)
        merged_b["spans"] = [{"labels": {"program": "CG"}, "doc": doc}]
        entries = [
            e for e in diff_snapshots(merged_a, merged_b).entries
            if e.kind == "critical-path"
        ]
        assert entries and all(e.severity == "regression" for e in entries)
        assert all(
            "only one snapshot" in e.detail for e in entries
        )

    def test_span_free_snapshots_diff_exactly_as_before(self):
        obs = Observability()
        run_loop(preset_platform("odroid_xu4"), parse_schedule("static"),
                 obs=obs)
        snap = build_snapshot(obs, meta={})
        diff = diff_snapshots(snap, copy.deepcopy(snap))
        assert not diff.regressions
        assert not [e for e in diff.entries if e.kind == "critical-path"]
