"""Per-figure experiment tests: each harness runs and reproduces the
paper's qualitative claim (scaled-down where needed for speed)."""

import pytest

from repro.experiments import fig1, fig2, fig4, fig8, fig9, guided, sec41, sec5b
from repro.workloads.registry import get_program


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run()

    def test_2b2s_close_to_4s(self, result):
        """The motivating claim: adding 2 big cores to 2 small ones barely
        beats 4 small ones under static scheduling."""
        ratio = result.time_4s / result.time_2b2s
        assert 1.0 <= ratio <= 1.35

    def test_big_cores_idle_at_barrier(self, result):
        assert result.big_idle_fraction > 0.2

    def test_report_renders(self, result):
        text = fig1.format_report(result)
        assert "2B-2S" in text and "#" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run(n_loops=12)

    def test_platform_names_present(self, result):
        assert len(result.series) == 2

    def test_sf_varies_across_loops(self, result):
        for platform_name, progs in result.series.items():
            for prog, points in progs.items():
                sfs = [p.sf for p in points]
                assert max(sfs) / min(sfs) > 1.2, (platform_name, prog)

    def test_platform_a_reaches_high_sf(self, result):
        a = next(k for k in result.series if "Odroid" in k)
        assert result.max_sf(a) > 3.0

    def test_platform_b_capped(self, result):
        b = next(k for k in result.series if "Xeon" in k)
        assert result.max_sf(b) <= 2.4

    def test_report_renders(self, result):
        assert "CG" in fig2.format_report(result)


class TestSec41:
    @pytest.fixture(scope="class")
    def result(self):
        return sec41.run()

    def test_vanilla_has_no_loop_symbols(self, result):
        assert not any("loop" in s for s in result.vanilla_symbols)

    def test_modified_gains_runtime_symbols(self, result):
        assert any("loop_runtime_next" in s for s in result.modified_symbols)
        assert result.modified_controllable == 1.0

    def test_static_overhead_not_noticeable(self, result):
        """Paper: recompiled binaries under OMP_SCHEDULE=static show no
        apparent overhead."""
        assert abs(result.static_overhead) < 0.02

    def test_report_renders(self, result):
        assert "nm -u" in sec41.format_report(result)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run()

    def test_hybrid_beats_aid_static_on_ep(self, result):
        """Paper: AID-hybrid(80) improves EP by ~10.5% over AID-static."""
        assert 0.03 <= result.hybrid_gain <= 0.20

    def test_report_renders(self, result):
        assert "AID-hybrid" in fig4.format_report(result)


class TestGuided:
    @pytest.fixture(scope="class")
    def result(self):
        programs = [get_program(n) for n in ("EP", "CG", "FT", "streamcluster")]
        return guided.run(programs=programs)

    def test_guided_worse_than_dynamic_on_average(self, result):
        for plat, inc in result.mean_increase_vs_dynamic.items():
            assert inc > 0.0, plat

    def test_guided_rarely_beats_both(self, result):
        for plat, winners in result.beats_both.items():
            assert len(winners) <= 1, (plat, winners)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(programs=("FT", "streamcluster", "hotspot3D"))

    def test_aid_dynamic_best_chunk_competitive(self, result):
        """Paper: comparing best chunk settings, AID-dynamic beats dynamic
        by 5.5% on average (up to 21.9%); at minimum it must not lose."""
        assert result.mean_best_gain > -0.02

    def test_dynamic_chunk_sensitivity_visible(self, result):
        for program, row in result.normalized.items():
            dyn = [row[f"dynamic/{c}"] for c in fig8.DYNAMIC_CHUNKS]
            assert max(dyn) / min(dyn) > 1.02, program

    def test_report_renders(self, result):
        assert "best-chunk" in fig8.format_report(result)


class TestSec5b:
    @pytest.fixture(scope="class")
    def result(self):
        return sec5b.run(
            programs=("FT", "leukocyte", "blackscholes", "streamcluster"),
            percentages=(50, 60, 80, 95, 100),
        )

    def test_dynamic_friendly_prefer_lower_percentages(self, result):
        """Paper: FT/leukocyte-type programs peak around 60%."""
        for prog in ("FT", "leukocyte"):
            assert result.best_percentage(prog) <= 80

    def test_static_friendly_prefer_higher_percentages(self, result):
        """Paper: blackscholes-type programs peak at 90%+."""
        assert result.best_percentage("blackscholes") >= 80

    def test_eighty_percent_is_a_safe_default(self, result):
        """No program loses more than ~10% by using 80% instead of its
        best setting."""
        for prog in result.times:
            norm = result.normalized(prog)
            best = max(norm.values())
            assert best <= 1.16, (prog, norm)

    def test_report_renders(self, result):
        assert "%" in sec5b.format_report(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(programs=("EP", "streamcluster", "blackscholes", "MG"))

    def test_online_within_few_percent_generally(self, result):
        """Paper: AID-static performs within ~3% of offline-SF for most
        programs (we allow a slightly wider band)."""
        for platform_name, rows in result.times.items():
            for program, (t_on, t_off) in rows.items():
                if program == "blackscholes":
                    continue
                assert abs(t_off / t_on - 1.0) < 0.10, (platform_name, program)

    def test_blackscholes_online_wins_on_platform_a(self, result):
        """Paper Fig. 9: offline SFs mispredict under LLC contention on
        big.LITTLE, so online sampling wins for blackscholes on A."""
        a = next(k for k in result.times if "Odroid" in k)
        assert result.gain_of_online(a, "blackscholes") > 0.02

    def test_blackscholes_estimated_sf_below_offline(self, result):
        assert result.estimated_sf_series
        assert all(
            sf < result.offline_sf_value * 0.85
            for sf in result.estimated_sf_series
        )

    def test_report_renders(self, result):
        assert "Fig. 9c" in fig9.format_report(result)
