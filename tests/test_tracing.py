"""Unit tests for tracing, rendering and Paraver export."""

import pytest

from repro.errors import SimulationError
from repro.tracing.ascii_art import render_timeline
from repro.tracing.paraver import export_paraver_csv
from repro.tracing.trace import Interval, ThreadState, Timeline, TraceRecorder


def demo_trace():
    tr = TraceRecorder()
    tr.record(0, ThreadState.SERIAL, 0.0, 1.0, "init")
    tr.record(1, ThreadState.IDLE, 0.0, 1.0, "init")
    tr.record(0, ThreadState.COMPUTE, 1.0, 3.0, "loop")
    tr.record(1, ThreadState.COMPUTE, 1.0, 2.0, "loop")
    tr.record(1, ThreadState.BARRIER, 2.0, 3.0, "loop")
    return tr


def test_interval_validation():
    with pytest.raises(SimulationError):
        Interval(0, ThreadState.COMPUTE, 2.0, 1.0)


def test_zero_length_intervals_dropped():
    tr = TraceRecorder()
    tr.record(0, ThreadState.COMPUTE, 1.0, 1.0)
    assert tr.intervals == []


def test_time_bounds():
    tr = demo_trace()
    assert tr.t_begin == 0.0
    assert tr.t_end == 3.0
    assert TraceRecorder().t_end == 0.0


def test_time_in_state():
    tr = demo_trace()
    assert tr.time_in_state(0, ThreadState.COMPUTE) == 2.0
    assert tr.time_in_state(1, ThreadState.BARRIER) == 1.0
    assert tr.time_in_state(1, ThreadState.SERIAL) == 0.0


def test_validate_non_overlapping_passes():
    demo_trace().validate_non_overlapping()


def test_validate_non_overlapping_catches_overlap():
    tr = TraceRecorder()
    tr.record(0, ThreadState.COMPUTE, 0.0, 2.0)
    tr.record(0, ThreadState.BARRIER, 1.5, 3.0)
    with pytest.raises(SimulationError):
        tr.validate_non_overlapping()


def test_render_timeline_shapes():
    tr = demo_trace()
    text = render_timeline(tr, width=30)
    lines = text.splitlines()
    rows = [l for l in lines if l.startswith("T")]
    assert len(rows) == 2
    # Each row body is exactly `width` characters between the pipes.
    for row in rows:
        body = row.split("|")[1]
        assert len(body) == 30
    assert "legend" in text


def test_render_timeline_state_characters():
    tr = demo_trace()
    text = render_timeline(tr, width=30, show_legend=False)
    t0_row = next(l for l in text.splitlines() if l.startswith("T0"))
    assert "S" in t0_row  # serial phase visible
    assert "#" in t0_row  # compute visible
    t1_row = next(l for l in text.splitlines() if l.startswith("T1"))
    assert "." in t1_row  # barrier wait visible


def test_render_empty_trace():
    assert "empty" in render_timeline(TraceRecorder())


def test_render_window():
    tr = demo_trace()
    text = render_timeline(tr, width=10, t0=2.5, t1=3.0, show_legend=False)
    t0_row = next(l for l in text.splitlines() if l.startswith("T0"))
    body = t0_row.split("|")[1]
    assert set(body) == {"#"}  # only compute in that window for T0


def test_paraver_export_roundtrip(tmp_path):
    tr = demo_trace()
    path = tmp_path / "trace.csv"
    text = export_paraver_csv(tr, path)
    assert path.read_text() == text
    lines = text.strip().splitlines()
    assert lines[0] == "thread,state,t_start,t_end,duration,label"
    assert len(lines) == 1 + len(tr.intervals)
    assert any("serial" in l for l in lines)


def test_paraver_export_sorted_by_time():
    tr = TraceRecorder()
    tr.record(0, ThreadState.COMPUTE, 5.0, 6.0)
    tr.record(0, ThreadState.COMPUTE, 1.0, 2.0)
    lines = export_paraver_csv(tr).strip().splitlines()[1:]
    starts = [float(l.split(",")[2]) for l in lines]
    assert starts == sorted(starts)


# -- Timeline: validation and gap analysis ----------------------------------


class TestTimeline:
    def test_recorder_hands_out_timeline(self):
        tr = demo_trace()
        tl = tr.timeline()
        assert isinstance(tl, Timeline)
        assert tl.intervals == tr.intervals
        assert tl.thread_ids() == [0, 1]
        assert tl.t_begin == 0.0
        assert tl.t_end == 3.0

    def test_validate_accepts_contiguous(self):
        demo_trace().timeline().validate()

    def test_validate_accepts_shared_endpoint(self):
        tl = Timeline([
            Interval(0, ThreadState.COMPUTE, 0.0, 1.0),
            Interval(0, ThreadState.BARRIER, 1.0, 2.0),
        ])
        tl.validate()  # touching endpoints are not an overlap

    def test_validate_rejects_overlap(self):
        tl = Timeline([
            Interval(0, ThreadState.COMPUTE, 0.0, 2.0),
            Interval(0, ThreadState.RUNTIME, 1.5, 3.0),
        ])
        with pytest.raises(SimulationError, match="overlap"):
            tl.validate()

    def test_validate_overlap_detected_out_of_recording_order(self):
        tl = Timeline([
            Interval(0, ThreadState.RUNTIME, 1.5, 3.0),
            Interval(0, ThreadState.COMPUTE, 0.0, 2.0),
        ])
        with pytest.raises(SimulationError):
            tl.validate()

    def test_overlap_on_different_threads_is_fine(self):
        tl = Timeline([
            Interval(0, ThreadState.COMPUTE, 0.0, 2.0),
            Interval(1, ThreadState.COMPUTE, 0.0, 2.0),
        ])
        tl.validate()

    def test_recorder_validate_delegates(self):
        tr = TraceRecorder()
        tr.record(0, ThreadState.COMPUTE, 0.0, 2.0)
        tr.record(0, ThreadState.RUNTIME, 1.0, 3.0)
        with pytest.raises(SimulationError):
            tr.validate_non_overlapping()

    def test_gaps_none_when_contiguous(self):
        assert demo_trace().timeline().gaps() == []

    def test_gaps_found_and_sorted(self):
        tl = Timeline([
            Interval(0, ThreadState.COMPUTE, 0.0, 1.0),
            Interval(0, ThreadState.COMPUTE, 2.0, 3.0),
            Interval(1, ThreadState.COMPUTE, 0.0, 0.5),
            Interval(1, ThreadState.COMPUTE, 1.5, 2.0),
        ])
        gaps = tl.gaps()
        assert [(g.tid, g.t0, g.t1) for g in gaps] == [
            (0, 1.0, 2.0),
            (1, 0.5, 1.5),
        ]
        assert gaps[0].duration == pytest.approx(1.0)

    def test_gaps_single_thread_filter(self):
        tl = Timeline([
            Interval(0, ThreadState.COMPUTE, 0.0, 1.0),
            Interval(0, ThreadState.COMPUTE, 2.0, 3.0),
            Interval(1, ThreadState.COMPUTE, 0.0, 0.5),
            Interval(1, ThreadState.COMPUTE, 1.5, 2.0),
        ])
        assert [g.tid for g in tl.gaps(tid=1)] == [1]

    def test_gaps_min_duration_filters_float_noise(self):
        tl = Timeline([
            Interval(0, ThreadState.COMPUTE, 0.0, 1.0),
            Interval(0, ThreadState.COMPUTE, 1.0 + 1e-15, 2.0),
        ])
        assert tl.gaps() == []
        assert len(tl.gaps(min_duration=1e-16)) == 1

    def test_gaps_no_hole_before_span_or_after(self):
        # Gaps are holes *inside* a thread's span, not leading idle time.
        tl = Timeline([Interval(0, ThreadState.COMPUTE, 5.0, 6.0)])
        assert tl.gaps() == []

    def test_executor_timeline_is_gap_free_and_valid(self):
        import numpy as np

        from repro.amp.presets import dual_speed_platform
        from repro.sched.aid_dynamic import AidDynamicSpec

        from tests.helpers import run_loop

        tr = TraceRecorder()
        run_loop(
            dual_speed_platform(2, 2, big_speedup=2.0),
            AidDynamicSpec(),
            n_iterations=200,
            costs=np.full(200, 1e-4),
            trace=tr,
        )
        tl = tr.timeline()
        tl.validate()
        assert tl.gaps(min_duration=1e-9) == []
