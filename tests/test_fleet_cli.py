"""Tests for the ``python -m repro.fleet`` CLI and the experiments CLI's
``--jobs`` pass-through."""

import json

import pytest

from repro.experiments import cli as experiments_cli
from repro.fleet.cli import GRIDS, main


def test_list_names_every_grid(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in GRIDS:
        assert name in out


def test_unknown_grid_fails(capsys):
    assert main(["nope"]) == 2
    assert "unknown grids" in capsys.readouterr().err


def test_smoke_grid_cold_then_warm(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    summary1 = tmp_path / "cold.json"
    summary2 = tmp_path / "warm.json"
    events = tmp_path / "events.jsonl"
    assert main([
        "smoke", "--jobs", "2", "--cache-dir", cache_dir,
        "--summary-json", str(summary1),
    ]) == 0
    out = capsys.readouterr().out
    assert "normalized performance" in out and "fleet:" in out
    cold = json.loads(summary1.read_text(encoding="utf-8"))
    assert cold["jobs_computed"] == cold["jobs_submitted"] > 0
    assert cold["cache_hits"] == 0 and cold["failures"] == 0

    assert main([
        "smoke", "--jobs", "2", "--cache-dir", cache_dir,
        "--summary-json", str(summary2), "--events-jsonl", str(events),
    ]) == 0
    warm = json.loads(summary2.read_text(encoding="utf-8"))
    assert warm["cache_hits"] == warm["jobs_submitted"] > 0
    assert warm["jobs_computed"] == 0
    lines = events.read_text(encoding="utf-8").splitlines()
    assert lines and all(
        json.loads(line)["event"] in
        ("submitted", "cache_hit", "cache_miss") for line in lines
    )


def test_obs_snapshot_and_trajectory_artifacts(tmp_path, capsys):
    """--obs-snapshot / --trajectory write the observatory artifacts and
    the cold-vs-warm diff gate passes, exactly as CI runs it."""
    from repro.obs.report import main as report_main
    from repro.obs.snapshot import load_snapshot
    from repro.obs.trajectory import TrajectoryStore

    cache_dir = str(tmp_path / "cache")
    cold = tmp_path / "obs-cold.json"
    warm = tmp_path / "obs-warm.json"
    history = tmp_path / "trajectory.jsonl"
    assert main([
        "smoke", "--jobs", "2", "--cache-dir", cache_dir,
        "--obs-snapshot", str(cold), "--trajectory", str(history),
    ]) == 0
    assert main([
        "smoke", "--jobs", "2", "--cache-dir", cache_dir,
        "--obs-snapshot", str(warm), "--trajectory", str(history),
    ]) == 0
    capsys.readouterr()

    doc = load_snapshot(cold)
    assert doc["merged_jobs"] > 0
    assert doc["meta"]["grids"] == "smoke"
    names = {c["name"] for c in doc["metrics"]["counters"]}
    assert {"fleet_jobs_submitted", "dispatches_total"} <= names

    # The CI gate: warm replay reports the metrics it computed cold.
    assert report_main(
        ["diff", str(cold), str(warm), "--fail-on-regression"]
    ) == 0
    capsys.readouterr()

    records = TrajectoryStore(history).records()
    assert len(records) == 2
    assert all(r["source"] == "fleet:smoke" for r in records)
    assert all("wall_clock_seconds" in r["metrics"] for r in records)
    # Cold run: 0% cache hits; warm run: 100%.
    rates = [r["metrics"]["fleet_cache_hit_rate"] for r in records]
    assert rates == [0.0, 1.0]


def test_no_cache_recomputes(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    summary = tmp_path / "s.json"
    assert main(["smoke", "--cache-dir", cache_dir]) == 0
    assert main([
        "smoke", "--no-cache", "--cache-dir", cache_dir,
        "--summary-json", str(summary),
    ]) == 0
    capsys.readouterr()
    doc = json.loads(summary.read_text(encoding="utf-8"))
    assert doc["cache_hits"] == 0 and doc["jobs_computed"] > 0


def test_seed_changes_are_cache_misses(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    summary = tmp_path / "s.json"
    assert main(["smoke", "--cache-dir", cache_dir]) == 0
    assert main([
        "smoke", "--seed", "1", "--cache-dir", cache_dir,
        "--summary-json", str(summary),
    ]) == 0
    capsys.readouterr()
    doc = json.loads(summary.read_text(encoding="utf-8"))
    assert doc["cache_hits"] == 0


@pytest.mark.parametrize("name", sorted(experiments_cli.SUPPORTS_JOBS))
def test_experiments_cli_declares_fleet_grids(name):
    assert name in experiments_cli.EXPERIMENTS


class _StubExperiment:
    """Records how the CLI called run(); renders a fixed report."""

    def __init__(self):
        self.calls = []

    def run(self, seed=0, **kwargs):
        self.calls.append({"seed": seed, **kwargs})
        return "result"

    def format_report(self, result):
        return "stub-report"


def test_experiments_cli_passes_jobs_to_fleet_grids(monkeypatch, capsys):
    stub = _StubExperiment()
    monkeypatch.setitem(
        experiments_cli.EXPERIMENTS, "fig8", (stub, "stubbed")
    )
    assert experiments_cli.main(["fig8", "--jobs", "3"]) == 0
    assert stub.calls[-1] == {"seed": 0, "jobs": 3}
    # Default --jobs 1 keeps the historical call shape: no fleet kwargs.
    assert experiments_cli.main(["fig8"]) == 0
    assert stub.calls[-1] == {"seed": 0}
    assert "stub-report" in capsys.readouterr().out


def test_experiments_cli_never_passes_jobs_to_serial_experiments(
    monkeypatch, capsys
):
    stub = _StubExperiment()
    monkeypatch.setitem(
        experiments_cli.EXPERIMENTS, "fig1", (stub, "stubbed")
    )
    assert experiments_cli.main(["fig1", "--jobs", "4"]) == 0
    assert stub.calls[-1] == {"seed": 0}
    capsys.readouterr()
