"""Real-thread stall injection and the stalled-worker watchdog."""

import threading

import numpy as np
import pytest

from repro.amp.presets import dual_speed_platform
from repro.errors import ConfigError, FaultError, WatchdogTimeout
from repro.exec_real.team import ThreadTeam
from repro.faults import FaultPlan, ThrottleEvent, WorkerStallEvent
from repro.obs import Observability
from repro.sched.registry import parse_schedule


def _team(n_threads=2):
    n_big = max(1, n_threads // 2)
    n_small = max(1, n_threads - n_big)
    return ThreadTeam(
        n_threads, dual_speed_platform(n_small, n_big, big_speedup=2.0)
    )


def _coverage_body(ni):
    hits = np.zeros(ni, dtype=int)
    lock = threading.Lock()

    def body(tid, lo, hi):
        with lock:
            hits[lo:hi] += 1

    return hits, body


def test_watchdog_redistributes_a_stalled_workers_chunk():
    ni = 12
    hits, body = _coverage_body(ni)
    obs = Observability()
    stats = _team().parallel_for(
        ni,
        body,
        parse_schedule("aid_static"),
        obs=obs,
        watchdog_timeout=0.05,
        stalls=FaultPlan((WorkerStallEvent(tid=0, t=0.0, seconds=0.4),)),
    )
    assert stats.redistributed, "the watchdog never reclaimed the chunk"
    # Coverage: everything ran at least once; duplicates can only live
    # inside ranges the watchdog handed back.
    assert (hits >= 1).all()
    redistributed = np.zeros(ni, dtype=bool)
    for lo, hi in stats.redistributed:
        redistributed[lo:hi] = True
    assert (hits[~redistributed] == 1).all()
    counters = {
        c["name"] for c in obs.registry.snapshot()["counters"]
    }
    assert "fault_watchdog_redistributes_total" in counters
    assert "fault_stall_seconds_total" in counters
    events = {r["event"] for r in obs.decisions.records}
    assert "stall_injected" in events
    assert "watchdog_redistribute" in events


def test_stall_plan_without_watchdog_just_runs_slow():
    ni = 8
    hits, body = _coverage_body(ni)
    stats = _team().parallel_for(
        ni,
        body,
        parse_schedule("static"),
        stalls=FaultPlan((WorkerStallEvent(tid=0, t=0.0, seconds=0.05),)),
    )
    assert not stats.redistributed
    assert (hits == 1).all()
    assert sum(stats.iterations_per_thread) == ni


def test_empty_stall_plan_is_a_strict_noop():
    ni = 16
    spec = parse_schedule("static")
    runs = []
    for stalls in (None, FaultPlan()):
        hits, body = _coverage_body(ni)
        stats = _team().parallel_for(ni, body, spec, stalls=stalls)
        runs.append((list(stats.iterations_per_thread),
                     sorted(stats.ranges), hits.tolist()))
    assert runs[0] == runs[1]


def test_non_stall_events_are_rejected_on_the_real_executor():
    with pytest.raises(FaultError):
        _team().parallel_for(
            4,
            lambda tid, lo, hi: None,
            parse_schedule("static"),
            stalls=FaultPlan((
                ThrottleEvent(cpu=0, t0=0.0, t1=1.0, factor=0.5),
            )),
        )


def test_watchdog_timeout_must_be_positive():
    with pytest.raises(ConfigError):
        _team().parallel_for(
            4, lambda tid, lo, hi: None, parse_schedule("static"),
            watchdog_timeout=0.0,
        )


def test_watchdog_timeout_is_a_fault_error():
    assert issubclass(WatchdogTimeout, FaultError)
